#!/usr/bin/env bash
# CI entry point: tier-1 test suite plus kernel/serving benchmark smoke runs.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== native extension build (hard fail if a compiler is present but"
echo "   the build breaks; skipped cleanly on compiler-less boxes) =="
if command -v cc >/dev/null 2>&1 || command -v gcc >/dev/null 2>&1; then
    python setup.py build_ext --inplace
else
    echo "no C compiler found; skipping build (pure-Python fallback in play)"
fi

echo "== static analysis (repro lint, hard fail on new findings) =="
python -m repro.cli lint

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== tier-1 tests, extension disabled (REPRO_DISABLE_NATIVE=1; proves"
echo "   the pure-Python fallback keeps the suite green without the .so) =="
REPRO_DISABLE_NATIVE=1 python -m pytest -x -q

echo "== lockwatch serving pass (hard fail on lock-order cycles) =="
REPRO_LOCKWATCH=1 python -m pytest tests/serving -q

echo "== kernel benchmark smoke (warn-only baseline diff) =="
python -m benchmarks.bench_kernels --quick

echo "== encoder benchmark smoke (graph vs plan; asserts zero steady-state"
echo "   kernel-output allocations + arena misses on the ragged serving run;"
echo "   latency baseline diff stays warn-only) =="
python -m benchmarks.bench_encoder --quick

echo "== long-context benchmark smoke (chunked attention; asserts chunked"
echo "   plan == graph bitwise + zero steady-state allocations; latency"
echo "   baseline diff stays warn-only) =="
python -m benchmarks.bench_longseq --quick

echo "== serving smoke (serve CLI round trip) =="
printf '1 2 3 4 5\n1 2 3 4 5\nquit\n' \
    | python -m repro.cli serve --max-batch-size 4 --max-wait-ms 1

echo "== sharded serving smoke (2 worker processes on one shared-memory"
echo "   snapshot) =="
printf '1 2 3 4 5\n6 7 8\nquit\n' \
    | python -m repro.cli serve --workers 2 --max-batch-size 4 --max-wait-ms 1

echo "== daemon smoke (TCP round trip over a real socket; asserts wire"
echo "   responses bitwise identical to solo inference) =="
python -m repro.cli daemon --smoke 6 --max-batch-size 4 --max-wait-ms 1

echo "== chaos smoke (injected crashes/hangs under supervision; hard"
echo "   zero-drop + bitwise assertions, timing warn-only) =="
python -m repro.cli loadtest --chaos --quick --batch-size 4 \
    --deadline-ms 150 --deadline-fraction 0.3 --seed 2

echo "== sharded chaos smoke (SIGKILL/stall/corruption against 2 worker"
echo "   processes; hard zero-drop + bitwise assertions) =="
python -m repro.cli loadtest --chaos --quick --workers 2 --requests 64 \
    --batch-size 4 --max-wait-ms 0.5 --kill-rate 0.15 --stall-rate 0.05 \
    --corrupt-rate 0.05 --seed 2

echo "== serving benchmark smoke (warn-only baseline diff) =="
python -m benchmarks.bench_serving --quick
