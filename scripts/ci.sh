#!/usr/bin/env bash
# CI entry point: tier-1 test suite plus a kernel-benchmark smoke run.
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== kernel benchmark smoke (warn-only baseline diff) =="
python -m benchmarks.bench_kernels --quick
