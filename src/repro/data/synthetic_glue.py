"""Synthetic surrogate tasks for the GLUE benchmark.

The paper evaluates Softermax on eight GLUE tasks (RTE, CoLA, MRPC, QNLI,
QQP, SST-2, STS-B, MNLI).  Real GLUE data is unavailable offline, so each
task is replaced with a *synthetic surrogate* that

* keeps the task *type* (single- vs two-segment, 2/3-way classification or
  regression) and the paper's evaluation metric, and
* requires cross-token interaction to solve, so the attention softmax is on
  the critical path of the accuracy result -- which is the property the
  experiment actually measures.

The default sizes (segment lengths, vocabulary, number of examples) are
chosen so that the tiny Transformer surrogates of
:class:`repro.models.BertConfig` reach well-above-chance dev scores after a
few epochs of NumPy training; the experiment of interest is the *difference*
between the quantized-baseline and Softermax fine-tuning runs, exactly as in
the paper's Table III.

All generators are deterministic given a seed and produce
:class:`~repro.data.tasks.TaskDataset` objects with train/dev splits.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.data.tasks import TaskDataset, TaskSplit
from repro.data.tokenizer import Vocabulary

#: Names of the GLUE surrogate tasks, in the paper's Table III order.
GLUE_TASK_NAMES = ("rte", "cola", "mrpc", "qnli", "qqp", "sst2", "stsb", "mnli")

#: Default split sizes shared by every generator.
DEFAULT_NUM_TRAIN = 1536
DEFAULT_NUM_DEV = 192


# --------------------------------------------------------------------------- #
# low-level helpers
# --------------------------------------------------------------------------- #
def _pack_single_segment(vocab: Vocabulary, segment: List[int], seq_len: int) -> Tuple[List[int], List[int]]:
    """[CLS] segment [SEP] padded to seq_len, plus the attention mask."""
    ids = [vocab.cls_id] + list(segment) + [vocab.sep_id]
    if len(ids) > seq_len:
        raise ValueError(f"segment too long: {len(ids)} > {seq_len}")
    mask = [1] * len(ids) + [0] * (seq_len - len(ids))
    ids = ids + [vocab.pad_id] * (seq_len - len(ids))
    return ids, mask


def _pack_pair(vocab: Vocabulary, seg_a: List[int], seg_b: List[int], seq_len: int) -> Tuple[List[int], List[int]]:
    """[CLS] A [SEP] B [SEP] padded to seq_len, plus the attention mask."""
    ids = [vocab.cls_id] + list(seg_a) + [vocab.sep_id] + list(seg_b) + [vocab.sep_id]
    if len(ids) > seq_len:
        raise ValueError(f"pair too long: {len(ids)} > {seq_len}")
    mask = [1] * len(ids) + [0] * (seq_len - len(ids))
    ids = ids + [vocab.pad_id] * (seq_len - len(ids))
    return ids, mask


def _split(ids: List[List[int]], masks: List[List[int]], labels: List,
           num_train: int, label_dtype) -> Tuple[TaskSplit, TaskSplit]:
    ids_arr = np.asarray(ids, dtype=np.int64)
    mask_arr = np.asarray(masks, dtype=np.int64)
    label_arr = np.asarray(labels, dtype=label_dtype)
    train = TaskSplit(ids_arr[:num_train], mask_arr[:num_train], label_arr[:num_train])
    dev = TaskSplit(ids_arr[num_train:], mask_arr[num_train:], label_arr[num_train:])
    return train, dev


# --------------------------------------------------------------------------- #
# individual task generators
# --------------------------------------------------------------------------- #
def make_sst2(num_train: int = DEFAULT_NUM_TRAIN, num_dev: int = DEFAULT_NUM_DEV,
              seq_len: int = 14, seed: int = 0,
              vocab: Optional[Vocabulary] = None) -> TaskDataset:
    """SST-2 surrogate (sentiment): are there more "positive" than "negative" tokens?

    The content vocabulary is split in half into positive and negative
    sentiment tokens; the label is the majority sentiment of the sequence.
    Solving it requires aggregating evidence across all positions.
    """
    vocab = vocab or Vocabulary()
    rng = np.random.default_rng(seed)
    content = vocab.content_ids
    half = len(content) // 2
    positive, negative = content[:half], content[half:]

    seg_len = seq_len - 2
    ids, masks, labels = [], [], []
    for _ in range(num_train + num_dev):
        label = int(rng.integers(0, 2))
        majority, minority = (positive, negative) if label == 1 else (negative, positive)
        num_major = int(rng.integers(seg_len // 2 + 1, seg_len + 1))
        tokens = list(rng.choice(majority, size=num_major)) + list(
            rng.choice(minority, size=seg_len - num_major)
        )
        rng.shuffle(tokens)
        packed, mask = _pack_single_segment(vocab, tokens, seq_len)
        ids.append(packed)
        masks.append(mask)
        labels.append(label)

    train, dev = _split(ids, masks, labels, num_train, np.int64)
    return TaskDataset("sst2", "classification", 2, "accuracy", train, dev,
                       seq_len, vocab.vocab_size)


def make_cola(num_train: int = DEFAULT_NUM_TRAIN, num_dev: int = DEFAULT_NUM_DEV,
              seq_len: int = 14, seed: int = 1,
              vocab: Optional[Vocabulary] = None) -> TaskDataset:
    """CoLA surrogate (acceptability): does the sequence alternate token groups?

    "Grammatical" sequences strictly alternate between the noun-group and
    verb-group halves of the vocabulary; "ungrammatical" sequences contain
    the same multiset of tokens in a random (non-alternating) order, so the
    evidence of unacceptability is distributed over many adjacent pairs.
    Scored with Matthews correlation like CoLA.
    """
    vocab = vocab or Vocabulary()
    rng = np.random.default_rng(seed)
    content = vocab.content_ids
    half = len(content) // 2
    nouns, verbs = content[:half], content[half:]

    seg_len = seq_len - 2

    def is_alternating(tokens: List[int]) -> bool:
        groups = [0 if token in set(nouns) else 1 for token in tokens]
        return all(groups[i] != groups[i + 1] for i in range(len(groups) - 1))

    ids, masks, labels = [], [], []
    for _ in range(num_train + num_dev):
        label = int(rng.integers(0, 2))
        tokens = []
        for position in range(seg_len):
            group = nouns if position % 2 == 0 else verbs
            tokens.append(int(rng.choice(group)))
        if label == 0:
            # Shuffle the same tokens until the alternation is broken.
            shuffled = list(tokens)
            for _attempt in range(16):
                rng.shuffle(shuffled)
                if not is_alternating(shuffled):
                    break
            else:  # pragma: no cover - vanishingly unlikely
                shuffled[0], shuffled[1] = shuffled[1], shuffled[0]
            tokens = shuffled
            if is_alternating(tokens):
                # Force a violation deterministically.
                tokens[1] = tokens[0]
        packed, mask = _pack_single_segment(vocab, tokens, seq_len)
        ids.append(packed)
        masks.append(mask)
        labels.append(label)

    train, dev = _split(ids, masks, labels, num_train, np.int64)
    return TaskDataset("cola", "classification", 2, "matthews", train, dev,
                       seq_len, vocab.vocab_size)


def _make_paraphrase_task(name: str, metric: str, num_train: int, num_dev: int,
                          seq_len: int, seed: int, seg_len: int,
                          vocab: Optional[Vocabulary]) -> TaskDataset:
    """Shared generator for MRPC/QQP: is segment B a permutation of segment A?

    Non-paraphrases replace half of B's tokens with tokens absent from A, so
    the decision evidence is spread over several positions.
    """
    vocab = vocab or Vocabulary()
    rng = np.random.default_rng(seed)
    content = np.asarray(vocab.content_ids)

    ids, masks, labels = [], [], []
    for _ in range(num_train + num_dev):
        label = int(rng.integers(0, 2))
        seg_a = list(rng.choice(content, size=seg_len, replace=False))
        seg_b = list(seg_a)
        rng.shuffle(seg_b)
        if label == 0:
            outside = np.setdiff1d(content, np.asarray(seg_a))
            num_replace = max(1, seg_len // 2)
            positions = rng.choice(seg_len, size=num_replace, replace=False)
            replacements = rng.choice(outside, size=num_replace, replace=False)
            for pos, rep in zip(positions, replacements):
                seg_b[pos] = int(rep)
        packed, mask = _pack_pair(vocab, seg_a, seg_b, seq_len)
        ids.append(packed)
        masks.append(mask)
        labels.append(label)

    train, dev = _split(ids, masks, labels, num_train, np.int64)
    return TaskDataset(name, "classification", 2, metric, train, dev,
                       seq_len, vocab.vocab_size)


def make_mrpc(num_train: int = DEFAULT_NUM_TRAIN, num_dev: int = DEFAULT_NUM_DEV,
              seq_len: int = 16, seed: int = 2,
              vocab: Optional[Vocabulary] = None) -> TaskDataset:
    """MRPC surrogate (paraphrase detection), scored with F1."""
    return _make_paraphrase_task("mrpc", "f1", num_train, num_dev, seq_len, seed,
                                 seg_len=6, vocab=vocab)


def make_qqp(num_train: int = DEFAULT_NUM_TRAIN, num_dev: int = DEFAULT_NUM_DEV,
             seq_len: int = 14, seed: int = 3,
             vocab: Optional[Vocabulary] = None) -> TaskDataset:
    """QQP surrogate (duplicate-question detection), scored with F1."""
    return _make_paraphrase_task("qqp", "f1", num_train, num_dev, seq_len, seed,
                                 seg_len=5, vocab=vocab)


def make_qnli(num_train: int = DEFAULT_NUM_TRAIN, num_dev: int = DEFAULT_NUM_DEV,
              seq_len: int = 14, seed: int = 4,
              vocab: Optional[Vocabulary] = None) -> TaskDataset:
    """QNLI surrogate: does the "sentence" (B) contain the query token of A?

    The question segment is the query token repeated twice (so the query is
    unambiguous), and the sentence either contains the query token (label 1)
    or does not (label 0).  Answering requires matching the query against
    every sentence position -- content-based addressing through attention.
    """
    vocab = vocab or Vocabulary()
    rng = np.random.default_rng(seed)
    content = np.asarray(vocab.content_ids)

    question_len, sentence_len = 2, 7
    ids, masks, labels = [], [], []
    for _ in range(num_train + num_dev):
        label = int(rng.integers(0, 2))
        query = int(rng.choice(content))
        question = [query] * question_len
        if label == 1:
            sentence = list(rng.choice(content, size=sentence_len))
            sentence[int(rng.integers(0, sentence_len))] = query
        else:
            allowed = np.setdiff1d(content, np.asarray([query]))
            sentence = list(rng.choice(allowed, size=sentence_len))
        packed, mask = _pack_pair(vocab, question, sentence, seq_len)
        ids.append(packed)
        masks.append(mask)
        labels.append(label)

    train, dev = _split(ids, masks, labels, num_train, np.int64)
    return TaskDataset("qnli", "classification", 2, "accuracy", train, dev,
                       seq_len, vocab.vocab_size)


def make_rte(num_train: int = DEFAULT_NUM_TRAIN, num_dev: int = DEFAULT_NUM_DEV,
             seq_len: int = 14, seed: int = 5,
             vocab: Optional[Vocabulary] = None) -> TaskDataset:
    """RTE surrogate (entailment): is every token of the hypothesis in the premise?

    Entailed examples draw the whole hypothesis from the premise; non-entailed
    examples draw the whole hypothesis from outside it, so the evidence is
    spread over every hypothesis token.
    """
    vocab = vocab or Vocabulary()
    rng = np.random.default_rng(seed)
    content = np.asarray(vocab.content_ids)

    premise_len, hypothesis_len = 6, 3
    ids, masks, labels = [], [], []
    for _ in range(num_train + num_dev):
        label = int(rng.integers(0, 2))
        premise = list(rng.choice(content, size=premise_len, replace=False))
        outside = np.setdiff1d(content, np.asarray(premise))
        if label == 1:
            hypothesis = list(rng.choice(np.asarray(premise), size=hypothesis_len, replace=False))
        else:
            hypothesis = list(rng.choice(outside, size=hypothesis_len, replace=False))
        packed, mask = _pack_pair(vocab, premise, hypothesis, seq_len)
        ids.append(packed)
        masks.append(mask)
        labels.append(label)

    train, dev = _split(ids, masks, labels, num_train, np.int64)
    return TaskDataset("rte", "classification", 2, "accuracy", train, dev,
                       seq_len, vocab.vocab_size)


def make_mnli(num_train: int = DEFAULT_NUM_TRAIN + 64, num_dev: int = DEFAULT_NUM_DEV,
              seq_len: int = 14, seed: int = 6,
              vocab: Optional[Vocabulary] = None) -> TaskDataset:
    """MNLI surrogate: 3-way relation between the token sets of A and B.

    entailment (0): B is a subset of A; contradiction (1): B is disjoint
    from A; neutral (2): B partially overlaps A.
    """
    vocab = vocab or Vocabulary()
    rng = np.random.default_rng(seed)
    content = np.asarray(vocab.content_ids)

    premise_len, hypothesis_len = 6, 4
    ids, masks, labels = [], [], []
    for _ in range(num_train + num_dev):
        label = int(rng.integers(0, 3))
        premise = list(rng.choice(content, size=premise_len, replace=False))
        outside = np.setdiff1d(content, np.asarray(premise))
        if label == 0:
            hypothesis = list(rng.choice(np.asarray(premise), size=hypothesis_len, replace=False))
        elif label == 1:
            hypothesis = list(rng.choice(outside, size=hypothesis_len, replace=False))
        else:
            inside = list(rng.choice(np.asarray(premise), size=hypothesis_len // 2, replace=False))
            extra = list(rng.choice(outside, size=hypothesis_len - len(inside), replace=False))
            hypothesis = inside + extra
            rng.shuffle(hypothesis)
        packed, mask = _pack_pair(vocab, premise, hypothesis, seq_len)
        ids.append(packed)
        masks.append(mask)
        labels.append(label)

    train, dev = _split(ids, masks, labels, num_train, np.int64)
    return TaskDataset("mnli", "classification", 3, "accuracy", train, dev,
                       seq_len, vocab.vocab_size)


def make_stsb(num_train: int = DEFAULT_NUM_TRAIN, num_dev: int = DEFAULT_NUM_DEV,
              seq_len: int = 16, seed: int = 7,
              vocab: Optional[Vocabulary] = None) -> TaskDataset:
    """STS-B surrogate (semantic similarity regression on a 0-5 scale).

    The target is five times the Jaccard overlap between the token sets of
    the two segments, mirroring STS-B's 0-5 similarity scale.  Scored with
    the average of Pearson and Spearman correlation, like the paper.
    """
    vocab = vocab or Vocabulary()
    rng = np.random.default_rng(seed)
    content = np.asarray(vocab.content_ids)

    seg_len = 6
    ids, masks, labels = [], [], []
    for _ in range(num_train + num_dev):
        overlap = int(rng.integers(0, seg_len + 1))
        seg_a = list(rng.choice(content, size=seg_len, replace=False))
        shared = list(rng.choice(np.asarray(seg_a), size=overlap, replace=False))
        outside = np.setdiff1d(content, np.asarray(seg_a))
        distinct = list(rng.choice(outside, size=seg_len - overlap, replace=False))
        seg_b = shared + distinct
        rng.shuffle(seg_b)
        union = len(set(seg_a) | set(seg_b))
        score = 5.0 * overlap / union if union else 0.0
        packed, mask = _pack_pair(vocab, seg_a, seg_b, seq_len)
        ids.append(packed)
        masks.append(mask)
        labels.append(score)

    train, dev = _split(ids, masks, labels, num_train, np.float64)
    return TaskDataset("stsb", "regression", 1, "pearson_spearman", train, dev,
                       seq_len, vocab.vocab_size)


# --------------------------------------------------------------------------- #
# the suite
# --------------------------------------------------------------------------- #
_GENERATORS: Dict[str, Callable[..., TaskDataset]] = {
    "rte": make_rte,
    "cola": make_cola,
    "mrpc": make_mrpc,
    "qnli": make_qnli,
    "qqp": make_qqp,
    "sst2": make_sst2,
    "stsb": make_stsb,
    "mnli": make_mnli,
}


def make_glue_task(name: str, **kwargs) -> TaskDataset:
    """Build one GLUE surrogate task by name."""
    try:
        generator = _GENERATORS[name]
    except KeyError:
        raise KeyError(f"unknown GLUE surrogate {name!r}; available: {sorted(_GENERATORS)}") from None
    return generator(**kwargs)


def make_glue_suite(scale: float = 1.0, seed_offset: int = 0) -> Dict[str, TaskDataset]:
    """Build the full eight-task surrogate suite.

    Parameters
    ----------
    scale:
        Multiplier on the default train/dev sizes (use < 1 for fast tests).
    seed_offset:
        Added to each task's default seed, for replicate runs.
    """
    suite = {}
    for index, name in enumerate(GLUE_TASK_NAMES):
        generator = _GENERATORS[name]
        defaults = generator.__defaults__
        num_train = max(32, int(defaults[0] * scale))
        num_dev = max(32, int(defaults[1] * scale))
        suite[name] = generator(num_train=num_train, num_dev=num_dev,
                                seed=index + seed_offset)
    return suite
