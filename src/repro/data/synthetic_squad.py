"""Synthetic surrogate for SQuAD (extractive question answering).

The model sees ``[CLS] query-token [SEP] context ... [SEP]`` and must point
at the span of the context where the query token occurs (a contiguous run
of one to three repetitions).  Predicting the span requires matching the
query against every context position -- precisely the kind of content-based
addressing that self-attention provides -- so, as with the GLUE surrogates,
the attention softmax sits on the task's critical path.

Scored with the usual SQuAD metrics: exact match (EM) and token-overlap F1.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.tasks import TaskDataset, TaskSplit
from repro.data.tokenizer import Vocabulary


def make_squad(num_train: int = 768, num_dev: int = 160, seq_len: int = 20,
               max_span_len: int = 3, seed: int = 8,
               vocab: Optional[Vocabulary] = None) -> TaskDataset:
    """Build the SQuAD surrogate task.

    Labels have shape ``(num_examples, 2)`` holding the inclusive
    ``(start, end)`` indices of the answer span within the packed sequence.
    """
    vocab = vocab or Vocabulary()
    rng = np.random.default_rng(seed)
    content = np.asarray(vocab.content_ids)
    if max_span_len < 1:
        raise ValueError("max_span_len must be >= 1")

    # Layout: [CLS] query [SEP] context... [SEP] (padding to seq_len).
    context_len = seq_len - 4
    if context_len < max_span_len + 2:
        raise ValueError("seq_len too small for the requested span length")
    context_offset = 3  # index of the first context token

    all_ids, all_masks, all_labels = [], [], []
    for _ in range(num_train + num_dev):
        query = int(rng.choice(content))
        other = np.setdiff1d(content, np.asarray([query]))
        context = list(rng.choice(other, size=context_len))

        span_len = int(rng.integers(1, max_span_len + 1))
        start_in_context = int(rng.integers(0, context_len - span_len + 1))
        for offset in range(span_len):
            context[start_in_context + offset] = query

        ids = [vocab.cls_id, query, vocab.sep_id] + context + [vocab.sep_id]
        mask = [1] * len(ids) + [0] * (seq_len - len(ids))
        ids = ids + [vocab.pad_id] * (seq_len - len(ids))

        start = context_offset + start_in_context
        end = start + span_len - 1
        all_ids.append(ids)
        all_masks.append(mask)
        all_labels.append((start, end))

    ids_arr = np.asarray(all_ids, dtype=np.int64)
    mask_arr = np.asarray(all_masks, dtype=np.int64)
    label_arr = np.asarray(all_labels, dtype=np.int64)

    train = TaskSplit(ids_arr[:num_train], mask_arr[:num_train], label_arr[:num_train])
    dev = TaskSplit(ids_arr[num_train:], mask_arr[num_train:], label_arr[num_train:])
    return TaskDataset("squad", "span", seq_len, "squad_f1", train, dev,
                       seq_len, vocab.vocab_size)
