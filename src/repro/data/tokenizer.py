"""A toy vocabulary/tokenizer for the synthetic task suite.

The synthetic tasks generate token-id sequences directly, but they share a
common vocabulary layout with the special tokens BERT-style models expect
(``[PAD]``, ``[CLS]``, ``[SEP]``, ``[MASK]``) followed by "content" tokens.
Keeping this in one place makes the generated data interpretable and lets
examples round-trip ids to readable strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

PAD_TOKEN = "[PAD]"
CLS_TOKEN = "[CLS]"
SEP_TOKEN = "[SEP]"
MASK_TOKEN = "[MASK]"

SPECIAL_TOKENS = (PAD_TOKEN, CLS_TOKEN, SEP_TOKEN, MASK_TOKEN)


@dataclass
class Vocabulary:
    """A fixed vocabulary of special tokens plus generated content tokens.

    The default of 16 content tokens keeps the synthetic relational tasks
    learnable by the tiny Transformer surrogates (the label rules involve
    token-identity matching, whose sample complexity grows quickly with the
    vocabulary size).
    """

    num_content_tokens: int = 16
    tokens: List[str] = field(init=False)
    token_to_id: Dict[str, int] = field(init=False)

    def __post_init__(self) -> None:
        if self.num_content_tokens < 1:
            raise ValueError("num_content_tokens must be >= 1")
        content = [f"tok{i}" for i in range(self.num_content_tokens)]
        self.tokens = list(SPECIAL_TOKENS) + content
        self.token_to_id = {token: idx for idx, token in enumerate(self.tokens)}

    # ------------------------------------------------------------------ #
    # sizes and ids
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.tokens)

    @property
    def vocab_size(self) -> int:
        return len(self.tokens)

    @property
    def pad_id(self) -> int:
        return self.token_to_id[PAD_TOKEN]

    @property
    def cls_id(self) -> int:
        return self.token_to_id[CLS_TOKEN]

    @property
    def sep_id(self) -> int:
        return self.token_to_id[SEP_TOKEN]

    @property
    def mask_id(self) -> int:
        return self.token_to_id[MASK_TOKEN]

    @property
    def content_ids(self) -> List[int]:
        """Ids of the non-special (content) tokens."""
        return list(range(len(SPECIAL_TOKENS), len(self.tokens)))

    # ------------------------------------------------------------------ #
    # conversion
    # ------------------------------------------------------------------ #
    def encode(self, tokens: Sequence[str]) -> List[int]:
        """Convert token strings to ids (raises on unknown tokens)."""
        try:
            return [self.token_to_id[token] for token in tokens]
        except KeyError as exc:
            raise KeyError(f"unknown token {exc.args[0]!r}") from None

    def decode(self, ids: Sequence[int]) -> List[str]:
        """Convert ids back to token strings."""
        result = []
        for idx in ids:
            if not 0 <= int(idx) < len(self.tokens):
                raise IndexError(f"token id {idx} out of range")
            result.append(self.tokens[int(idx)])
        return result
