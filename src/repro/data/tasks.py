"""Task dataset containers shared by the synthetic generators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

import numpy as np


@dataclass
class TaskBatch:
    """One mini-batch of a task."""

    input_ids: np.ndarray
    attention_mask: np.ndarray
    labels: np.ndarray
    #: For span tasks the labels array has shape (batch, 2) = (start, end);
    #: for classification it is (batch,) ints; for regression (batch,) floats.

    def __post_init__(self) -> None:
        if self.input_ids.shape != self.attention_mask.shape:
            raise ValueError("input_ids and attention_mask shapes must match")
        if self.labels.shape[0] != self.input_ids.shape[0]:
            raise ValueError("labels batch size must match input_ids")

    def __len__(self) -> int:
        return self.input_ids.shape[0]


@dataclass
class TaskSplit:
    """A full split (train or dev) of a task."""

    input_ids: np.ndarray
    attention_mask: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return self.input_ids.shape[0]

    def batches(self, batch_size: int, shuffle: bool = False,
                rng: Optional[np.random.Generator] = None) -> Iterator[TaskBatch]:
        """Iterate over mini-batches."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        order = np.arange(len(self))
        if shuffle:
            (rng or np.random.default_rng()).shuffle(order)
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield TaskBatch(
                self.input_ids[idx], self.attention_mask[idx], self.labels[idx]
            )


@dataclass
class TaskDataset:
    """A named task with train/dev splits and its evaluation metric.

    Attributes
    ----------
    name:
        Task name (mirrors the paper's task list, e.g. ``"sst2"``).
    task_type:
        ``"classification"``, ``"regression"`` or ``"span"``.
    num_classes:
        Number of classes for classification tasks (ignored otherwise).
    metric:
        Metric name understood by :mod:`repro.eval.metrics`
        (``"accuracy"``, ``"f1"``, ``"matthews"``, ``"pearson_spearman"``,
        ``"squad_f1"``).
    """

    name: str
    task_type: str
    num_classes: int
    metric: str
    train: TaskSplit
    dev: TaskSplit
    seq_len: int
    vocab_size: int
    extra: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        valid_types = ("classification", "regression", "span")
        if self.task_type not in valid_types:
            raise ValueError(f"task_type must be one of {valid_types}")

    def summary(self) -> str:
        return (
            f"{self.name}: {self.task_type} ({self.num_classes} classes), "
            f"metric={self.metric}, train={len(self.train)}, dev={len(self.dev)}, "
            f"seq_len={self.seq_len}"
        )
