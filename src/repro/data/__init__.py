"""Synthetic surrogate datasets for the paper's accuracy experiments."""

from repro.data.tokenizer import (
    Vocabulary,
    PAD_TOKEN,
    CLS_TOKEN,
    SEP_TOKEN,
    MASK_TOKEN,
    SPECIAL_TOKENS,
)
from repro.data.tasks import TaskBatch, TaskSplit, TaskDataset
from repro.data.synthetic_glue import (
    GLUE_TASK_NAMES,
    make_glue_task,
    make_glue_suite,
    make_rte,
    make_cola,
    make_mrpc,
    make_qnli,
    make_qqp,
    make_sst2,
    make_stsb,
    make_mnli,
)
from repro.data.synthetic_squad import make_squad

__all__ = [
    "Vocabulary",
    "PAD_TOKEN",
    "CLS_TOKEN",
    "SEP_TOKEN",
    "MASK_TOKEN",
    "SPECIAL_TOKENS",
    "TaskBatch",
    "TaskSplit",
    "TaskDataset",
    "GLUE_TASK_NAMES",
    "make_glue_task",
    "make_glue_suite",
    "make_rte",
    "make_cola",
    "make_mrpc",
    "make_qnli",
    "make_qqp",
    "make_sst2",
    "make_stsb",
    "make_mnli",
    "make_squad",
]
