"""Evaluation metrics matching the paper's task suite.

GLUE tasks use accuracy, F1, Matthews correlation or Pearson/Spearman
correlation depending on the task; SQuAD uses exact match and token-overlap
F1.  All metrics are reported on a 0-100 scale (percentages), matching the
way Table III of the paper presents them.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from scipy import stats


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Classification accuracy in percent."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    _check_same_length(predictions, targets)
    return float(np.mean(predictions == targets) * 100.0)


def f1_binary(predictions: np.ndarray, targets: np.ndarray, positive_label: int = 1) -> float:
    """Binary F1 score (percent) treating ``positive_label`` as positive."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    _check_same_length(predictions, targets)
    tp = float(np.sum((predictions == positive_label) & (targets == positive_label)))
    fp = float(np.sum((predictions == positive_label) & (targets != positive_label)))
    fn = float(np.sum((predictions != positive_label) & (targets == positive_label)))
    if tp == 0.0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return float(2.0 * precision * recall / (precision + recall) * 100.0)


def matthews_corrcoef(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Matthews correlation coefficient (percent), the CoLA metric."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    _check_same_length(predictions, targets)
    tp = float(np.sum((predictions == 1) & (targets == 1)))
    tn = float(np.sum((predictions == 0) & (targets == 0)))
    fp = float(np.sum((predictions == 1) & (targets == 0)))
    fn = float(np.sum((predictions == 0) & (targets == 1)))
    denom = np.sqrt((tp + fp) * (tp + fn) * (tn + fp) * (tn + fn))
    if denom == 0.0:
        return 0.0
    return float((tp * tn - fp * fn) / denom * 100.0)


def pearson_corr(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Pearson correlation (percent)."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    _check_same_length(predictions, targets)
    if np.std(predictions) == 0.0 or np.std(targets) == 0.0:
        return 0.0
    return float(np.corrcoef(predictions, targets)[0, 1] * 100.0)


def spearman_corr(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Spearman rank correlation (percent)."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    _check_same_length(predictions, targets)
    if np.std(predictions) == 0.0 or np.std(targets) == 0.0:
        return 0.0
    rho = stats.spearmanr(predictions, targets).correlation
    if np.isnan(rho):
        return 0.0
    return float(rho * 100.0)


def pearson_spearman(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Average of Pearson and Spearman correlation (the STS-B metric)."""
    return (pearson_corr(predictions, targets) + spearman_corr(predictions, targets)) / 2.0


def squad_em_f1(pred_spans: np.ndarray, gold_spans: np.ndarray) -> Tuple[float, float]:
    """SQuAD exact match and token-overlap F1 (both percent).

    Spans are inclusive ``(start, end)`` index pairs.
    """
    pred_spans = np.asarray(pred_spans, dtype=np.int64)
    gold_spans = np.asarray(gold_spans, dtype=np.int64)
    if pred_spans.shape != gold_spans.shape:
        raise ValueError("prediction and gold span arrays must have the same shape")
    if pred_spans.ndim != 2 or pred_spans.shape[1] != 2:
        raise ValueError("spans must have shape (N, 2)")

    exact, f1_total = 0.0, 0.0
    for (ps, pe), (gs, ge) in zip(pred_spans, gold_spans):
        if ps == gs and pe == ge:
            exact += 1.0
        pred_tokens = set(range(int(ps), int(pe) + 1)) if pe >= ps else set()
        gold_tokens = set(range(int(gs), int(ge) + 1))
        overlap = len(pred_tokens & gold_tokens)
        if overlap == 0 or not pred_tokens:
            continue
        precision = overlap / len(pred_tokens)
        recall = overlap / len(gold_tokens)
        f1_total += 2.0 * precision * recall / (precision + recall)

    count = len(gold_spans)
    return float(exact / count * 100.0), float(f1_total / count * 100.0)


def squad_f1(pred_spans: np.ndarray, gold_spans: np.ndarray) -> float:
    """Token-overlap F1 only (the number Table III reports for SQuAD)."""
    return squad_em_f1(pred_spans, gold_spans)[1]


#: Registry used by the evaluation harness: metric name -> callable.
METRIC_FUNCTIONS = {
    "accuracy": accuracy,
    "f1": f1_binary,
    "matthews": matthews_corrcoef,
    "pearson_spearman": pearson_spearman,
    "squad_f1": squad_f1,
}


def compute_metric(name: str, predictions: np.ndarray, targets: np.ndarray) -> float:
    """Dispatch to the metric registered under ``name``."""
    try:
        metric = METRIC_FUNCTIONS[name]
    except KeyError:
        raise KeyError(f"unknown metric {name!r}; available: {sorted(METRIC_FUNCTIONS)}") from None
    return metric(predictions, targets)


def metric_summary(results: Dict[str, float]) -> Dict[str, float]:
    """Average, worst drop and best gain across a {task: score-delta} dict."""
    values = np.asarray(list(results.values()), dtype=np.float64)
    return {
        "mean": float(values.mean()),
        "min": float(values.min()),
        "max": float(values.max()),
    }


def _check_same_length(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape[0] != b.shape[0]:
        raise ValueError(f"length mismatch: {a.shape[0]} vs {b.shape[0]}")
    if a.shape[0] == 0:
        raise ValueError("cannot compute a metric on zero examples")
