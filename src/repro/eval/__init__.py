"""Evaluation harness: metrics, accuracy pipelines and sweep drivers."""

from repro.eval.accuracy import (
    predict,
    evaluate_model,
    evaluate_squad_detailed,
    AccuracyComparison,
    run_accuracy_comparison,
    results_to_rows,
)

# Imported after ``repro.eval.accuracy`` so that the ``accuracy`` *function*
# (and not the submodule of the same name) is what the package exports.
from repro.eval.metrics import (
    accuracy,
    f1_binary,
    matthews_corrcoef,
    pearson_corr,
    spearman_corr,
    pearson_spearman,
    squad_em_f1,
    squad_f1,
    compute_metric,
    metric_summary,
    METRIC_FUNCTIONS,
)
from repro.eval.sweeps import (
    RuntimeFractionSeries,
    runtime_fraction_series,
    EnergySweepSeries,
    energy_sweep_series,
    AccuracySweepPoint,
    softermax_error_sweep,
    KernelTimingPoint,
    kernel_timing_sweep,
)

__all__ = [
    "accuracy",
    "f1_binary",
    "matthews_corrcoef",
    "pearson_corr",
    "spearman_corr",
    "pearson_spearman",
    "squad_em_f1",
    "squad_f1",
    "compute_metric",
    "metric_summary",
    "METRIC_FUNCTIONS",
    "predict",
    "evaluate_model",
    "evaluate_squad_detailed",
    "AccuracyComparison",
    "run_accuracy_comparison",
    "results_to_rows",
    "RuntimeFractionSeries",
    "runtime_fraction_series",
    "EnergySweepSeries",
    "energy_sweep_series",
    "AccuracySweepPoint",
    "softermax_error_sweep",
    "KernelTimingPoint",
    "kernel_timing_sweep",
]
