"""Sweep drivers used by the figure benchmarks and the examples.

These wrap the hardware models with convenient "give me the series the
paper plots" functions: the Figure 1 softmax-runtime-fraction trend and the
Figure 5 energy-vs-sequence-length curves, plus a numerical-accuracy sweep
of the Softermax pipeline across sequence lengths (not a paper figure, but
a useful sanity series referenced by the ablation benchmarks).  The
Softermax sweeps take a ``kernel`` selector (see :mod:`repro.kernels`) so
they can run on the fused fast path or the slice-loop oracle
interchangeably.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core import SoftermaxConfig, base2_softmax, compare_softmax, attention_score_batch
from repro.hardware.energy_model import SweepPoint, sequence_length_sweep
from repro.hardware.runtime_model import RuntimeBreakdown, runtime_breakdown_sweep
from repro.kernels import resolve_kernel, supported_options
from repro.models.bert import BertConfig


@dataclass
class RuntimeFractionSeries:
    """Softmax (and friends) runtime fraction as sequence length grows."""

    seq_lens: List[int]
    fractions: Dict[str, List[float]]

    def series(self, op_class: str) -> List[float]:
        return self.fractions[op_class]


def runtime_fraction_series(
    config: BertConfig | None = None,
    seq_lens: Sequence[int] = (128, 256, 384, 512, 1024, 2048),
) -> RuntimeFractionSeries:
    """Figure 1 series: per-operator runtime fractions vs sequence length."""
    breakdowns: List[RuntimeBreakdown] = runtime_breakdown_sweep(config, seq_lens)
    fractions: Dict[str, List[float]] = {}
    for breakdown in breakdowns:
        for op_class, fraction in breakdown.fractions().items():
            fractions.setdefault(op_class, []).append(fraction)
    return RuntimeFractionSeries(list(seq_lens), fractions)


@dataclass
class EnergySweepSeries:
    """Figure 5 series for one PE width."""

    vector_size: int
    seq_lens: List[int]
    softermax_energy_uj: List[float]
    baseline_energy_uj: List[float]

    def ratios(self) -> List[float]:
        return [s / b for s, b in zip(self.softermax_energy_uj, self.baseline_energy_uj)]


def energy_sweep_series(
    seq_lens: Sequence[int] = (128, 256, 384, 512, 1024, 2048, 4096),
    vector_sizes: Sequence[int] = (16, 32),
) -> List[EnergySweepSeries]:
    """Figure 5 series: PE energy vs sequence length for each PE width."""
    points: List[SweepPoint] = sequence_length_sweep(seq_lens, vector_sizes)
    series: List[EnergySweepSeries] = []
    for vector_size in vector_sizes:
        mine = [p for p in points if p.vector_size == vector_size]
        series.append(EnergySweepSeries(
            vector_size=vector_size,
            seq_lens=[p.seq_len for p in mine],
            softermax_energy_uj=[p.softermax_energy_uj for p in mine],
            baseline_energy_uj=[p.baseline_energy_uj for p in mine],
        ))
    return series


@dataclass
class AccuracySweepPoint:
    """Numerical error of the Softermax pipeline at one sequence length."""

    seq_len: int
    max_abs_error: float
    mean_abs_error: float
    argmax_agreement: float


def softermax_error_sweep(
    seq_lens: Iterable[int] = (64, 128, 384, 1024),
    batch: int = 16,
    config: SoftermaxConfig | None = None,
    seed: int = 0,
    kernel: str = "auto",
    kernel_options: Optional[dict] = None,
) -> List[AccuracySweepPoint]:
    """Numerical error of Softermax vs the float base-2 softmax, per seq len.

    ``kernel`` (plus any engine knobs in ``kernel_options``) picks the
    Softermax implementation from the registry; the bit-accurate family
    yields identical numbers, so this only changes how long the sweep
    takes.
    """
    config = config or SoftermaxConfig.paper_table1()
    kernel_fn = resolve_kernel(kernel, config, **(kernel_options or {}))
    points: List[AccuracySweepPoint] = []
    for seq_len in seq_lens:
        scores = attention_score_batch(batch, seq_len, seed=seed)
        report = compare_softmax(kernel_fn, scores, reference_fn=base2_softmax)
        points.append(AccuracySweepPoint(
            seq_len=seq_len,
            max_abs_error=report.max_abs_error,
            mean_abs_error=report.mean_abs_error,
            argmax_agreement=report.argmax_agreement,
        ))
    return points


@dataclass
class KernelTimingPoint:
    """Wall-clock timing of one kernel on one workload shape.

    ``peak_mem_bytes`` is the tracemalloc high-water mark of one call
    (Python-side allocations, which for these kernels means the NumPy
    arrays; allocations made inside worker processes are not visible).
    """

    kernel: str
    seq_len: int
    batch: int
    best_seconds: float
    calls_per_second: float
    rows_per_second: float
    peak_mem_bytes: Optional[int] = None


def _call_peak_memory(kernel_fn, scores) -> Optional[int]:
    """Peak traced allocation of one kernel call (None if already tracing)."""
    if tracemalloc.is_tracing():
        return None
    tracemalloc.start()
    try:
        kernel_fn(scores)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return int(peak)


def kernel_timing_sweep(
    kernels: Sequence[str] = ("softermax-bit-accurate", "softermax-fused"),
    seq_lens: Sequence[int] = (64, 128, 256, 512, 1024),
    batches: Sequence[int] = (8,),
    config: SoftermaxConfig | None = None,
    repeats: int = 3,
    min_calls: int = 2,
    seed: int = 0,
    kernel_options: Optional[dict] = None,
    measure_memory: bool = True,
) -> List[KernelTimingPoint]:
    """Time registered kernels over batched attention-score rows.

    Used by ``benchmarks/bench_kernels.py`` to record the perf trajectory
    of the kernel engine (best-of-``repeats`` wall-clock per call).
    Kernel names may embed engine knobs (``"softermax-parallel(workers=4)"``)
    and ``kernel_options`` applies extra knobs to every kernel that
    understands them (knobs a kernel's factory does not accept are simply
    not forwarded, so one ``workers=...`` can ride along a mixed kernel
    list).  The memory probe runs outside the timed loop so it never skews
    timings.
    """
    config = config or SoftermaxConfig.paper_table1()
    points: List[KernelTimingPoint] = []
    for name in kernels:
        accepted = supported_options(name)
        options = {key: value for key, value in (kernel_options or {}).items()
                   if key in accepted}
        kernel_fn = resolve_kernel(name, config, **options)
        for seq_len in seq_lens:
            for batch in batches:
                scores = attention_score_batch(batch, seq_len, seed=seed)
                kernel_fn(scores)  # warm caches and tables
                peak = (_call_peak_memory(kernel_fn, scores)
                        if measure_memory else None)
                calls = max(min_calls, int(50_000 / (batch * seq_len)))
                best = float("inf")
                for _ in range(repeats):
                    start = time.perf_counter()
                    for _ in range(calls):
                        kernel_fn(scores)
                    best = min(best, (time.perf_counter() - start) / calls)
                points.append(KernelTimingPoint(
                    kernel=name,
                    seq_len=seq_len,
                    batch=batch,
                    best_seconds=best,
                    calls_per_second=1.0 / best,
                    rows_per_second=batch / best,
                    peak_mem_bytes=peak,
                ))
    return points
