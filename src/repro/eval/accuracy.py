"""Accuracy evaluation pipelines (paper Table III).

:func:`evaluate_model` scores a fine-tuned model on a task's dev split with
the task's own metric.  :func:`run_accuracy_comparison` orchestrates the
full Table III experiment: for each task and model size, pre-train once,
then fine-tune the 8-bit quantized baseline (standard softmax) and
Softermax from the same starting weights and report both scores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.data.tasks import TaskDataset
from repro.eval.metrics import compute_metric, squad_em_f1
from repro.models.bert import BertConfig, TaskModel
from repro.models.finetune import FinetuneConfig, FinetuneResult, finetune, pretrain_task_model


def predict(model: TaskModel, task: TaskDataset, split: str = "dev",
            batch_size: int = 64) -> np.ndarray:
    """Run inference over a split and return task-appropriate predictions.

    Classification: argmax class ids.  Regression: raw scores.  Span: an
    ``(N, 2)`` array of predicted (start, end) indices, where the end index
    is constrained to lie at or after the start index.
    """
    data = task.dev if split == "dev" else task.train
    model.eval()
    outputs: List[np.ndarray] = []
    for batch in data.batches(batch_size):
        if task.task_type == "span":
            start_logits, end_logits = model(batch.input_ids, batch.attention_mask)
            starts = np.argmax(start_logits.data, axis=-1)
            ends = np.empty_like(starts)
            for i, start in enumerate(starts):
                # The end must not precede the start; argmax over the suffix.
                suffix = end_logits.data[i, start:]
                ends[i] = start + int(np.argmax(suffix))
            outputs.append(np.stack([starts, ends], axis=1))
        else:
            logits = model(batch.input_ids, batch.attention_mask)
            if task.task_type == "classification":
                outputs.append(np.argmax(logits.data, axis=-1))
            else:
                outputs.append(logits.data)
    return np.concatenate(outputs, axis=0)


def evaluate_model(model: TaskModel, task: TaskDataset, split: str = "dev") -> float:
    """Score a model on a task split using the task's registered metric."""
    predictions = predict(model, task, split=split)
    data = task.dev if split == "dev" else task.train
    return compute_metric(task.metric, predictions, data.labels)


def evaluate_squad_detailed(model: TaskModel, task: TaskDataset,
                            split: str = "dev") -> Dict[str, float]:
    """Exact-match and F1 for the span task (for richer reporting)."""
    if task.task_type != "span":
        raise ValueError("evaluate_squad_detailed requires a span task")
    predictions = predict(model, task, split=split)
    data = task.dev if split == "dev" else task.train
    em, f1 = squad_em_f1(predictions, data.labels)
    return {"exact_match": em, "f1": f1}


@dataclass
class AccuracyComparison:
    """Results of the Table III experiment for one model size."""

    model_name: str
    baseline: Dict[str, float] = field(default_factory=dict)
    softermax: Dict[str, float] = field(default_factory=dict)

    @property
    def tasks(self) -> List[str]:
        return list(self.baseline.keys())

    def delta(self) -> Dict[str, float]:
        """Softermax score minus baseline score, per task."""
        return {name: self.softermax[name] - self.baseline[name] for name in self.baseline}

    def average_delta(self) -> float:
        deltas = list(self.delta().values())
        return float(np.mean(deltas)) if deltas else 0.0

    def worst_drop(self) -> float:
        """Most negative delta (0 if Softermax never loses)."""
        deltas = list(self.delta().values())
        return float(min(min(deltas), 0.0)) if deltas else 0.0


def run_accuracy_comparison(
    tasks: Iterable[TaskDataset],
    model_config: BertConfig,
    finetune_config: Optional[FinetuneConfig] = None,
    baseline_variant: str = "reference",
    proposed_variant: str = "softermax",
) -> AccuracyComparison:
    """Fine-tune baseline and Softermax on every task from shared weights.

    This is the Table III harness for a single model size: the baseline is
    the 8-bit quantization-aware fine-tuned model with the standard softmax,
    the proposed run swaps in Softermax (bit-accurate forward, STE backward).
    """
    finetune_config = finetune_config or FinetuneConfig()
    comparison = AccuracyComparison(model_name=model_config.name)
    for task in tasks:
        pretrained = pretrain_task_model(task, model_config, finetune_config)
        state = pretrained.state_dict()
        baseline_result = finetune(task, model_config, baseline_variant,
                                   finetune_config, pretrained_state=state)
        softermax_result = finetune(task, model_config, proposed_variant,
                                    finetune_config, pretrained_state=state)
        comparison.baseline[task.name] = baseline_result.score
        comparison.softermax[task.name] = softermax_result.score
    return comparison


def results_to_rows(comparison: AccuracyComparison) -> List[Dict[str, object]]:
    """Flatten an :class:`AccuracyComparison` into printable row dicts."""
    rows: List[Dict[str, object]] = []
    for variant_name, scores in (("Baseline", comparison.baseline),
                                 ("Softermax", comparison.softermax)):
        row: Dict[str, object] = {"model": comparison.model_name, "variant": variant_name}
        row.update({task: round(score, 2) for task, score in scores.items()})
        rows.append(row)
    return rows
