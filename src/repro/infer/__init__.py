"""Graph-free inference engine (the serving fast path).

The kernel layer made the Softermax softmax fast and the serving layer
batches requests; this subpackage removes the remaining per-request cost:
the autograd machinery of the encoder forward itself.

* :mod:`repro.infer.plan` -- :class:`InferencePlan`: compile a trained
  module tree into a flat list of plain-NumPy ops (weights snapshotted,
  frozen fake-quantizers pre-applied, optionally a fused Q/K/V projection
  GEMM) and execute it with zero Tensor/backward-closure overhead.  The
  default plan is **bit-transparent**: it replays the exact float64 op
  sequence of the Tensor path.
* :mod:`repro.infer.arena` -- :class:`WorkspaceArena`: shape-keyed,
  reusable scratch buffers threaded through the ``*_infer`` functional
  variants via ``out=``, so steady-state serving does no per-request
  large intermediate allocations.

Select the engine per call (``BertEncoderModel.encode(...,
engine="plan")``) or per service (:class:`repro.serving.ServiceConfig`
defaults to the plan engine).
"""

from repro.infer.arena import WorkspaceArena
from repro.infer.plan import (
    INPUT_HIDDEN,
    INPUT_IDS,
    ExecutionContext,
    InferencePlan,
    PlanBuilder,
    PlanOp,
)

__all__ = [
    "WorkspaceArena",
    "ExecutionContext",
    "InferencePlan",
    "PlanBuilder",
    "PlanOp",
    "INPUT_IDS",
    "INPUT_HIDDEN",
]
