"""Shape-keyed workspace arena for the graph-free inference engine.

The graph path allocates fresh float64 temporaries for every op of every
layer of every call; at serving rates that allocation traffic -- not the
arithmetic -- dominates the encoder forward.  :class:`WorkspaceArena` is
the antidote: a pool of preallocated scratch buffers keyed by shape (and
dtype), so the plan executor's ``acquire``/``release`` cycle reuses the
same handful of arrays across layers *and* across calls.  Steady-state
serving (same request shapes arriving repeatedly) performs no per-request
large intermediate allocations.

Buffers default to float64 (the plan's register file), but the pools are
dtype-aware: the kernel boundary's scratch workspaces
(:class:`repro.kernels.workspace.KernelWorkspace`) draw their narrow
integer buffers (int16 gather indices, uint16 unnormalized codes, ...)
from the same arena, so one byte budget and one set of hit/miss counters
covers the whole inference working set.

Two release flavors:

* :meth:`release` -- the buffer is dead now; it goes straight back to the
  free pool and the next ``acquire`` of that shape reuses it.
* :meth:`release_deferred` -- the buffer is the *result* the caller is
  about to read (e.g. :meth:`~repro.infer.plan.InferencePlan.run_ragged`
  output, copied out immediately by ``encode_ragged``).  It is parked and
  only returned to the pool by :meth:`begin_call` at the start of the
  next execution, so the caller's read window is safe.  Parked buffers are
  exempt from the byte-budget eviction until they re-enter the pool.

The arena is not thread-safe by itself; :class:`~repro.infer.plan.
InferencePlan` serializes executions with a lock.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

Shape = Tuple[int, ...]
#: Pool key: (shape, dtype).  Keys hold the interned ``np.dtype`` object --
#: hashing it is cheap, while ``dtype.name`` is a computed property that
#: showed up in the serving profile; names are only rendered in ``stats``.
PoolKey = Tuple[Shape, np.dtype]


#: Default cap on pooled (free) bytes.  Steady-state serving of one shape
#: family stays far below this; the cap only bites when a long-lived
#: service sees many distinct (batch, padded-length) shapes, in which case
#: the least-recently-used shapes' buffers are dropped instead of growing
#: the pool without bound.
DEFAULT_MAX_FREE_BYTES = 64 * 1024 * 1024


class WorkspaceArena:
    """A free-list of scratch buffers keyed by exact (shape, dtype).

    The free pool is bounded by ``max_free_bytes``: releases beyond the
    budget evict buffers from the least-recently-used *shape* (freshly
    used shapes -- the serving steady state -- are kept hot).  A budget of
    zero disables pooling entirely: every release drops its buffer on the
    spot (counted as an eviction) without touching the recency bookkeeping.
    """

    def __init__(self, max_free_bytes: int = DEFAULT_MAX_FREE_BYTES) -> None:
        if max_free_bytes < 0:
            raise ValueError("max_free_bytes must be >= 0")
        self.max_free_bytes = max_free_bytes
        self._free: Dict[PoolKey, List[np.ndarray]] = {}
        self._free_bytes = 0
        self._deferred: List[np.ndarray] = []
        self._tick = 0
        self._last_used: Dict[PoolKey, int] = {}
        #: Number of ``acquire`` calls served from the pool.
        self.hits = 0
        #: Number of ``acquire`` calls that had to allocate.
        self.misses = 0
        #: Number of pooled buffers dropped by the byte-budget eviction.
        self.evictions = 0
        #: Total bytes ever allocated by this arena.
        self.allocated_bytes = 0

    @staticmethod
    def _key_of(buffer: np.ndarray) -> PoolKey:
        return (buffer.shape, buffer.dtype)

    # ------------------------------------------------------------------ #
    # the acquire/release cycle
    # ------------------------------------------------------------------ #
    def acquire(self, shape, dtype=np.float64) -> np.ndarray:
        """Hand out a C-contiguous buffer of exactly ``shape`` / ``dtype``.

        Contents are unspecified (pooled buffers carry stale values); every
        plan op fully overwrites its output, and the few that need zeros
        (the exact-mask attention context) fill them explicitly.
        """
        if type(shape) is not tuple:
            shape = tuple(shape)
        dtype = np.dtype(dtype)
        key = (shape, dtype)
        self._touch(key)
        pool = self._free.get(key)
        if pool:
            self.hits += 1
            buffer = pool.pop()
            self._free_bytes -= buffer.nbytes
            if not pool:
                del self._free[key]
                self._last_used.pop(key, None)
            return buffer
        self.misses += 1
        buffer = np.empty(shape, dtype=dtype)
        self.allocated_bytes += buffer.nbytes
        return buffer

    def release(self, buffer: np.ndarray) -> None:
        """Return a previously acquired buffer to the free pool."""
        if self.max_free_bytes == 0:
            # No pool to park it in: drop on the spot, touching neither
            # the byte count nor the recency map (a zero-budget arena must
            # never accumulate bookkeeping for buffers it cannot keep).
            self.evictions += 1
            return
        key = self._key_of(buffer)
        self._touch(key)
        self._free.setdefault(key, []).append(buffer)
        self._free_bytes += buffer.nbytes
        self._evict()

    def _touch(self, key: PoolKey) -> None:
        self._tick += 1
        self._last_used[key] = self._tick

    def _evict(self) -> None:
        """Drop LRU shapes' buffers until the pool fits the byte budget."""
        while self._free_bytes > self.max_free_bytes and self._free:
            key = min(self._free, key=lambda k: self._last_used.get(k, 0))
            pool = self._free[key]
            dropped = pool.pop()
            self._free_bytes -= dropped.nbytes
            self.evictions += 1
            if not pool:
                del self._free[key]
                self._last_used.pop(key, None)

    def release_deferred(self, buffer: np.ndarray) -> None:
        """Return ``buffer`` to the pool at the *next* :meth:`begin_call`.

        Used for execution outputs the caller still reads (and copies)
        after the executor returns but before the next execution starts.
        Parked buffers are not part of the free pool, so the byte-budget
        eviction cannot reclaim them early.
        """
        self._deferred.append(buffer)

    def begin_call(self) -> None:
        """Start a new execution: reclaim buffers parked by the last one."""
        for buffer in self._deferred:
            self.release(buffer)
        self._deferred.clear()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Pool occupancy and hit/miss counters (for tests and benchmarks)."""
        pooled = sum(len(pool) for pool in self._free.values())
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "free_buffers": pooled,
            "free_bytes": self._free_bytes,
            "max_free_bytes": self.max_free_bytes,
            "deferred_buffers": len(self._deferred),
            "allocated_bytes": self.allocated_bytes,
            "shapes": sorted((shape, dtype.name) for shape, dtype
                             in self._free),
        }

    def __repr__(self) -> str:
        stats = self.stats()
        return (f"WorkspaceArena(free={stats['free_buffers']}, "
                f"hits={stats['hits']}, misses={stats['misses']}, "
                f"allocated={stats['allocated_bytes']} B)")
