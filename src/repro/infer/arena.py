"""Shape-keyed workspace arena for the graph-free inference engine.

The graph path allocates fresh float64 temporaries for every op of every
layer of every call; at serving rates that allocation traffic -- not the
arithmetic -- dominates the encoder forward.  :class:`WorkspaceArena` is
the antidote: a pool of preallocated scratch buffers keyed by shape, so
the plan executor's ``acquire``/``release`` cycle reuses the same handful
of arrays across layers *and* across calls.  Steady-state serving (same
request shapes arriving repeatedly) performs no per-request large
intermediate allocations.

Two release flavors:

* :meth:`release` -- the buffer is dead now; it goes straight back to the
  free pool and the next ``acquire`` of that shape reuses it.
* :meth:`release_deferred` -- the buffer is the *result* the caller is
  about to read (e.g. :meth:`~repro.infer.plan.InferencePlan.run_ragged`
  output, copied out immediately by ``encode_ragged``).  It is parked and
  only returned to the pool by :meth:`begin_call` at the start of the
  next execution, so the caller's read window is safe.

The arena is not thread-safe by itself; :class:`~repro.infer.plan.
InferencePlan` serializes executions with a lock.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

Shape = Tuple[int, ...]


#: Default cap on pooled (free) bytes.  Steady-state serving of one shape
#: family stays far below this; the cap only bites when a long-lived
#: service sees many distinct (batch, padded-length) shapes, in which case
#: the least-recently-used shapes' buffers are dropped instead of growing
#: the pool without bound.
DEFAULT_MAX_FREE_BYTES = 64 * 1024 * 1024


class WorkspaceArena:
    """A free-list of float64 scratch buffers keyed by exact shape.

    The free pool is bounded by ``max_free_bytes``: releases beyond the
    budget evict buffers from the least-recently-used *shape* (freshly
    used shapes -- the serving steady state -- are kept hot).
    """

    def __init__(self, max_free_bytes: int = DEFAULT_MAX_FREE_BYTES) -> None:
        if max_free_bytes < 0:
            raise ValueError("max_free_bytes must be >= 0")
        self.max_free_bytes = max_free_bytes
        self._free: Dict[Shape, List[np.ndarray]] = {}
        self._free_bytes = 0
        self._deferred: List[np.ndarray] = []
        self._tick = 0
        self._last_used: Dict[Shape, int] = {}
        #: Number of ``acquire`` calls served from the pool.
        self.hits = 0
        #: Number of ``acquire`` calls that had to allocate.
        self.misses = 0
        #: Number of pooled buffers dropped by the byte-budget eviction.
        self.evictions = 0
        #: Total bytes ever allocated by this arena.
        self.allocated_bytes = 0

    # ------------------------------------------------------------------ #
    # the acquire/release cycle
    # ------------------------------------------------------------------ #
    def acquire(self, shape) -> np.ndarray:
        """Hand out a C-contiguous float64 buffer of exactly ``shape``.

        Contents are unspecified (pooled buffers carry stale values); every
        plan op fully overwrites its output, and the few that need zeros
        (the exact-mask attention context) fill them explicitly.
        """
        shape = tuple(int(dim) for dim in shape)
        self._touch(shape)
        pool = self._free.get(shape)
        if pool:
            self.hits += 1
            buffer = pool.pop()
            self._free_bytes -= buffer.nbytes
            if not pool:
                del self._free[shape]
            return buffer
        self.misses += 1
        buffer = np.empty(shape, dtype=np.float64)
        self.allocated_bytes += buffer.nbytes
        return buffer

    def release(self, buffer: np.ndarray) -> None:
        """Return a previously acquired buffer to the free pool."""
        self._touch(buffer.shape)
        self._free.setdefault(buffer.shape, []).append(buffer)
        self._free_bytes += buffer.nbytes
        self._evict()

    def _touch(self, shape: Shape) -> None:
        self._tick += 1
        self._last_used[shape] = self._tick

    def _evict(self) -> None:
        """Drop LRU shapes' buffers until the pool fits the byte budget."""
        while self._free_bytes > self.max_free_bytes and self._free:
            shape = min(self._free, key=lambda s: self._last_used.get(s, 0))
            pool = self._free[shape]
            dropped = pool.pop()
            self._free_bytes -= dropped.nbytes
            self.evictions += 1
            if not pool:
                del self._free[shape]

    def release_deferred(self, buffer: np.ndarray) -> None:
        """Return ``buffer`` to the pool at the *next* :meth:`begin_call`.

        Used for execution outputs the caller still reads (and copies)
        after the executor returns but before the next execution starts.
        """
        self._deferred.append(buffer)

    def begin_call(self) -> None:
        """Start a new execution: reclaim buffers parked by the last one."""
        for buffer in self._deferred:
            self.release(buffer)
        self._deferred.clear()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Pool occupancy and hit/miss counters (for tests and benchmarks)."""
        pooled = sum(len(pool) for pool in self._free.values())
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "free_buffers": pooled,
            "free_bytes": self._free_bytes,
            "max_free_bytes": self.max_free_bytes,
            "deferred_buffers": len(self._deferred),
            "allocated_bytes": self.allocated_bytes,
            "shapes": sorted(self._free),
        }

    def __repr__(self) -> str:
        stats = self.stats()
        return (f"WorkspaceArena(free={stats['free_buffers']}, "
                f"hits={stats['hits']}, misses={stats['misses']}, "
                f"allocated={stats['allocated_bytes']} B)")
