"""Graph-free inference plans: compile a Module tree to a flat op list.

The autograd substrate makes every eval-mode forward pay for training
machinery it never uses: each ``Linear``/``LayerNorm``/GELU/residual wraps
arrays in :class:`~repro.nn.tensor.Tensor`, records backward closures
(parameters require grad even in eval mode, so the whole graph is built),
and allocates fresh float64 temporaries per op, per layer, per call.
:class:`InferencePlan` removes all of it:

* **Compile once** -- :meth:`InferencePlan.from_model` walks the module
  tree through its ``export_plan`` hooks, snapshots every weight (with
  frozen fake-quantizers pre-applied, and Q/K/V optionally concatenated
  for a fused projection GEMM), and emits an ordered list of
  :class:`PlanOp` closures over a flat register file.
* **Execute with arena buffers** -- ops acquire their outputs from a
  :class:`~repro.infer.arena.WorkspaceArena` and release dead registers
  immediately, so steady-state serving reuses the same scratch buffers
  across layers and across calls.
* **Bit-transparent by construction** -- the default plan replays the
  exact float64 NumPy call sequence of the Tensor path (see the
  ``*_infer`` variants in :mod:`repro.nn.functional`), so plan outputs are
  bitwise identical to the graph engine and every golden/serving bitwise
  test pins the plan automatically.  The opt-in ``fuse_qkv`` projection
  trades that guarantee for one GEMM instead of three (mathematically
  identical, tolerance-tested).

Snapshot semantics: a plan is frozen at compile time.  Later
``load_state_dict`` / ``set_softmax_variant`` / quantizer changes do NOT
flow into an existing plan -- recompile (``BertEncoderModel`` invalidates
its cached plans on both mutations).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.infer.arena import WorkspaceArena
from repro.kernels.workspace import KernelWorkspace
from repro.nn import functional as F

#: Reserved register names for runtime inputs.
INPUT_IDS = "input_ids"
INPUT_HIDDEN = "hidden_in"


@dataclass(frozen=True)
class PlanOp:
    """One step of a compiled plan: a named closure over the context."""

    name: str
    fn: Callable[["ExecutionContext"], None]


class ExecutionContext:
    """Mutable state of one plan execution: registers + buffer ownership.

    ``regs`` maps register names to arrays.  ``owned`` marks registers
    whose buffers were acquired from the arena (runtime inputs and views
    are not owned and are never released to the pool).  ``mask`` and
    ``lengths`` carry the per-call attention mask; a non-``None``
    ``lengths`` switches attention cores to the exact-mask path.
    ``scratch`` is the plan's kernel workspace
    (:class:`~repro.kernels.workspace.KernelWorkspace`): attention ops
    pass it to the softmax kernels so their internal temporaries ride the
    same arena as the register file.
    """

    __slots__ = ("regs", "arena", "owned", "mask", "lengths", "scratch")

    def __init__(self, arena: WorkspaceArena,
                 scratch: Optional[KernelWorkspace] = None) -> None:
        self.regs: Dict[str, np.ndarray] = {}
        self.arena = arena
        self.owned: Set[str] = set()
        self.mask: Optional[np.ndarray] = None
        self.lengths: Optional[np.ndarray] = None
        self.scratch = scratch

    def acquire(self, shape) -> np.ndarray:
        """Arena buffer for an op output (mark owned via :meth:`put`)."""
        return self.arena.acquire(shape)

    def put(self, reg: str, buffer: np.ndarray, owned: bool = True) -> None:
        """Bind ``reg`` to ``buffer``; owned buffers return to the arena."""
        self.regs[reg] = buffer
        if owned:
            self.owned.add(reg)

    def pop_release(self, reg: str) -> None:
        """Drop a register; its buffer goes back to the pool if owned."""
        buffer = self.regs.pop(reg)
        if reg in self.owned:
            self.owned.discard(reg)
            self.arena.release(buffer)

    def transfer(self, src: str, dst: str) -> None:
        """Rebind ``src``'s buffer (and ownership) under the name ``dst``."""
        buffer = self.regs.pop(src)
        self.regs[dst] = buffer
        if src in self.owned:
            self.owned.discard(src)
            self.owned.add(dst)


class PlanBuilder:
    """Accumulates :class:`PlanOp` items while ``export_plan`` hooks run."""

    def __init__(self) -> None:
        self.ops: List[PlanOp] = []
        self.meta: Dict[str, object] = {}
        self._counter = 0

    def reg(self, hint: str) -> str:
        """A fresh, globally unique register name."""
        self._counter += 1
        return f"%{self._counter}:{hint}"

    def emit(self, name: str, fn: Callable[[ExecutionContext], None]) -> None:
        self.ops.append(PlanOp(name, fn))

    def emit_release(self, name: str, *regs: str) -> None:
        """Emit an op that returns the given registers' buffers to the pool."""

        def release_op(ctx: ExecutionContext) -> None:
            for reg in regs:
                ctx.pop_release(reg)

        self.ops.append(PlanOp(name, release_op))


class InferencePlan:
    """A compiled, executable snapshot of a model's eval-mode forward.

    Build with :meth:`from_model` (any module exposing ``export_plan`` and
    ``plan_input_kind`` -- :class:`~repro.models.bert.BertEncoderModel`
    takes token ids, :class:`~repro.nn.transformer.TransformerEncoder`
    takes pre-embedded hidden states).  Executions are serialized by an
    internal lock; the arena is private to the plan.
    """

    def __init__(self, ops: List[PlanOp], output_reg: str, input_kind: str,
                 meta: Optional[dict] = None, fuse_qkv: bool = False,
                 block_kv: Optional[int] = None, source: str = "") -> None:
        if input_kind not in ("ids", "hidden"):
            raise ValueError(f"unknown plan input kind {input_kind!r}")
        self.ops = list(ops)
        self.output_reg = output_reg
        self.input_kind = input_kind
        self.meta = dict(meta or {})
        self.fuse_qkv = fuse_qkv
        self.block_kv = block_kv
        self.source = source
        self.arena = WorkspaceArena()
        # Kernel scratch rides the same arena, so one byte budget and one
        # set of counters covers registers and kernel temporaries alike.
        self.scratch = KernelWorkspace(arena=self.arena)
        self.calls = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # compilation
    # ------------------------------------------------------------------ #
    @classmethod
    def from_model(cls, model, fuse_qkv: bool = False,
                   block_kv: Optional[int] = None) -> "InferencePlan":
        """Compile ``model`` into a plan (weights snapshotted now).

        ``block_kv`` compiles attention cores to the chunked O(block)
        exact-mask path (see :func:`repro.nn.functional.
        chunked_masked_attention`); such plans reject additive masks in
        :meth:`run` -- use :meth:`run_ragged` with a prefix mask, or no
        mask.

        Tolerance: defaults (fuse_qkv=False, block_kv=None) are bitwise
        vs the autograd graph path; fuse_qkv trades bitwise equality for
        one wide QKV GEMM (BLAS blocking order, pinned by
        tests/infer/test_plan.py), block_kv inherits
        chunked_masked_attention's merge contract.
        """
        input_kind = getattr(model, "plan_input_kind", None)
        if input_kind is None or not hasattr(model, "export_plan"):
            raise TypeError(
                f"{type(model).__name__} does not support plan export; "
                "expected a module with export_plan/plan_input_kind "
                "(BertEncoderModel or TransformerEncoder)")
        builder = PlanBuilder()
        input_reg = INPUT_IDS if input_kind == "ids" else INPUT_HIDDEN
        export_kwargs = {"fuse_qkv": fuse_qkv}
        if block_kv is not None:
            # Only threaded when set, so exporters predating the knob
            # (custom test modules) keep compiling unchanged.
            export_kwargs["block_kv"] = block_kv
        output_reg = model.export_plan(builder, input_reg, **export_kwargs)
        return cls(builder.ops, output_reg, input_kind,
                   meta=builder.meta, fuse_qkv=fuse_qkv, block_kv=block_kv,
                   source=type(model).__name__)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run(self, inputs, attention_mask=None) -> np.ndarray:
        """Eval-mode forward (optional additive masking).

        Bitwise identical to the graph engine's
        ``model.eval(); model.forward(inputs, attention_mask).data``.
        Returns a caller-owned ``(batch, seq, hidden)`` float64 array.
        """
        regs, batch_seq = self._prepare_inputs(inputs)
        if attention_mask is not None and self.block_kv is not None:
            raise ValueError(
                "this plan was compiled with block_kv (chunked exact-mask "
                "attention) and cannot honor an additive mask; use "
                "run_ragged with a right-padded prefix mask, or no mask")
        mask = (None if attention_mask is None
                else self._validate_mask(attention_mask, batch_seq))
        return self._execute(regs, mask=mask, lengths=None,
                             detach_output=True)

    def run_ragged(self, inputs, attention_mask, extract=None):
        """Eval-mode forward with *exact* masking (right-padded batches).

        Padded keys get exactly zero attention probability, so each
        sequence's rows are bitwise identical to running it alone.

        ``extract`` is the safe way to consume the result: it is called on
        the output buffer *inside* the execution lock (copy out what you
        keep -- :meth:`~repro.models.bert.BertEncoderModel.encode_ragged`
        slices per-sequence copies) and its return value is returned;
        the buffer then goes straight back to the arena.  Without
        ``extract`` the raw arena buffer is returned and stays valid only
        until the next execution -- safe for a single-threaded caller,
        racy if the plan is shared across threads.
        """
        regs, batch_seq = self._prepare_inputs(inputs)
        mask = self._validate_mask(attention_mask, batch_seq)
        lengths = F.prefix_mask_lengths(mask)
        return self._execute(regs, mask=mask, lengths=lengths,
                             detach_output=False, extract=extract)

    def _prepare_inputs(self, inputs) -> Tuple[Dict[str, np.ndarray], tuple]:
        if self.input_kind == "ids":
            ids = np.asarray(inputs, dtype=np.int64)
            if ids.ndim != 2:
                raise ValueError(
                    f"expected (batch, seq) token ids, got shape {ids.shape}")
            max_seq_len = self.meta.get("max_seq_len")
            if max_seq_len is not None and ids.shape[1] > max_seq_len:
                raise ValueError(
                    f"sequence length {ids.shape[1]} exceeds max_seq_len "
                    f"{max_seq_len}")
            vocab_size = self.meta.get("vocab_size")
            if vocab_size is not None and (
                    ids.min(initial=0) < 0
                    or ids.max(initial=0) >= vocab_size):
                raise IndexError("embedding id out of range")
            return {INPUT_IDS: ids}, ids.shape
        hidden = np.asarray(inputs, dtype=np.float64)
        if hidden.ndim != 3:
            raise ValueError(
                f"expected (batch, seq, hidden) states, got {hidden.shape}")
        return {INPUT_HIDDEN: hidden}, hidden.shape[:2]

    @staticmethod
    def _validate_mask(attention_mask, batch_seq: tuple) -> np.ndarray:
        mask = np.asarray(attention_mask, dtype=np.float64)
        if mask.shape != tuple(batch_seq):
            raise ValueError(
                f"attention_mask shape {mask.shape} does not match "
                f"(batch, seq)={tuple(batch_seq)}")
        return mask

    def _execute(self, regs: Dict[str, np.ndarray],
                 mask: Optional[np.ndarray],
                 lengths: Optional[np.ndarray],
                 detach_output: bool, extract=None) -> np.ndarray:
        with self._lock:
            self.arena.begin_call()
            ctx = ExecutionContext(self.arena, scratch=self.scratch)
            ctx.regs.update(regs)
            ctx.mask = mask
            ctx.lengths = lengths
            for op in self.ops:
                op.fn(ctx)
            output = ctx.regs.pop(self.output_reg)
            output_owned = self.output_reg in ctx.owned
            ctx.owned.discard(self.output_reg)
            # Balanced plans leave nothing behind; sweep defensively so a
            # hook that forgot a release cannot grow the working set.
            for reg in list(ctx.regs):
                ctx.pop_release(reg)
            self.calls += 1
            if extract is not None:
                # Consume the output while still holding the lock (the
                # caller's copies happen here), then recycle it at once.
                result = extract(output)
                if output_owned:
                    self.arena.release(output)
                return result
            if output_owned and not detach_output:
                # Caller reads (and copies) before the next execution.
                self.arena.release_deferred(output)
            return output

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def num_ops(self) -> int:
        return len(self.ops)

    def op_names(self) -> List[str]:
        return [op.name for op in self.ops]

    def describe(self) -> str:
        """Human-readable plan listing (op order and arena state)."""
        header = (f"InferencePlan({self.source or 'module'}, "
                  f"input={self.input_kind}, ops={self.num_ops}, "
                  f"fuse_qkv={self.fuse_qkv}, block_kv={self.block_kv}, "
                  f"calls={self.calls})")
        lines = [header] + [f"  {i:3d}. {name}"
                            for i, name in enumerate(self.op_names())]
        return "\n".join(lines)

    def stats(self) -> dict:
        """Execution counters plus arena and kernel-scratch statistics."""
        return {"calls": self.calls, "ops": self.num_ops,
                "fuse_qkv": self.fuse_qkv, "block_kv": self.block_kv,
                "arena": self.arena.stats(),
                "kernel_scratch": self.scratch.stats()}

    def __repr__(self) -> str:
        return (f"InferencePlan(source={self.source!r}, "
                f"input_kind={self.input_kind!r}, ops={self.num_ops}, "
                f"fuse_qkv={self.fuse_qkv})")


# --------------------------------------------------------------------------- #
# snapshot export/import (sharded serving)
# --------------------------------------------------------------------------- #
def snapshot_arrays(model) -> Dict[str, np.ndarray]:
    """Export the model's parameter arrays for snapshot publication.

    Returns live references keyed by dotted parameter name -- the
    publisher (:meth:`repro.serving.snapshot.SnapshotBundle.publish`)
    copies them into shared memory, so no intermediate copy is taken
    here.  Pairs with :func:`bind_snapshot_arrays` on the worker side.
    """
    return {name: param.data for name, param in model.named_parameters()}


def bind_snapshot_arrays(model, arrays: Dict[str, np.ndarray]) -> None:
    """Bind ``model``'s parameters to snapshot ``arrays`` **zero-copy**.

    The worker-side import: parameters are rebound directly to the
    (read-only, shared-memory) views, unlike
    :meth:`~repro.nn.layers.Module.load_state_dict` which copies.  Plan
    compilation then keeps read-only weights as-is
    (:func:`repro.nn.layers.frozen_array_snapshot`), so every worker
    process serves from the one published copy.  Fires
    ``_on_state_loaded`` on every module so cached plans compiled from
    the old weights are invalidated.
    """
    own = {name: param for name, param in model.named_parameters()}
    missing = set(own) - set(arrays)
    unexpected = set(arrays) - set(own)
    if missing or unexpected:
        raise KeyError(
            f"snapshot mismatch; missing={sorted(missing)}, "
            f"unexpected={sorted(unexpected)}")
    for name, array in arrays.items():
        if own[name].shape != array.shape:
            raise ValueError(
                f"shape mismatch for {name}: {own[name].shape} vs "
                f"{array.shape}")
        if array.dtype != np.float64:
            raise ValueError(
                f"snapshot array {name} has dtype {array.dtype}; "
                "parameters are float64")
        own[name].data = array
    for module in model.modules():
        module._on_state_loaded()
