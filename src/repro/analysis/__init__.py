"""Static analysis of the repo's own contracts, plus a dynamic lock watcher.

Entry points:

* ``repro lint`` (see :mod:`repro.cli`) -- run :data:`DEFAULT_RULES`
  over ``src/repro`` against the committed ``lint-baseline.json``.
* :mod:`repro.analysis.lockwatch` -- opt-in lock-order recording for
  the serving test suite (``REPRO_LOCKWATCH=1``).
"""

from repro.analysis.baseline import (
    BASELINE_VERSION,
    finding_fingerprints,
    load_baseline,
    partition_findings,
    save_baseline,
)
from repro.analysis.engine import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Finding,
    LintEngine,
    LintReport,
    ModuleSource,
    Rule,
)
from repro.analysis.locks import LockDisciplineRule
from repro.analysis.lockwatch import LockOrderWatcher, WatchedLock, install
from repro.analysis.rules import (
    DeterminismRule,
    HotPathAllocationRule,
    KernelContractRule,
    NativeBackendGuardRule,
    SharedMemoryLifecycleRule,
    ToleranceContractRule,
)


def default_rules():
    """Fresh instances of the full rule set, R1 through R7."""
    return [
        HotPathAllocationRule(),
        KernelContractRule(),
        ToleranceContractRule(),
        DeterminismRule(),
        LockDisciplineRule(),
        SharedMemoryLifecycleRule(),
        NativeBackendGuardRule(),
    ]


#: Shared instances for one-shot use; prefer :func:`default_rules` when
#: running more than one engine (R5 carries prepare() state).
DEFAULT_RULES = default_rules()

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_RULES",
    "DeterminismRule",
    "Finding",
    "HotPathAllocationRule",
    "KernelContractRule",
    "LintEngine",
    "LintReport",
    "LockDisciplineRule",
    "NativeBackendGuardRule",
    "SharedMemoryLifecycleRule",
    "LockOrderWatcher",
    "ModuleSource",
    "Rule",
    "SEVERITY_ERROR",
    "SEVERITY_WARNING",
    "ToleranceContractRule",
    "WatchedLock",
    "default_rules",
    "finding_fingerprints",
    "install",
    "load_baseline",
    "partition_findings",
    "save_baseline",
]
