"""R5 -- static lock discipline over the serving layer.

The serving stack is the one place the repo runs real concurrency:
worker threads, the micro-batcher, the supervisor's heartbeat monitor,
and the asyncio daemon all share state behind small ``threading.Lock``
regions.  Two classes of bug there are cheap to write and expensive to
debug:

* **blocking while holding a lock** -- a model forward, ``queue.get``,
  socket/file IO, or a sleep inside a ``with self._lock:`` region turns
  a micro-critical-section into a convoy (and, with the supervisor's
  heartbeat, into a false hang detection);
* **mutating shared state outside the lock** -- a field that is guarded
  by ``_lock`` in one method and mutated bare in another is a data race
  whose window only opens under production load.

This rule builds a per-function lock-scope model from ``with
self._lock:`` regions, then checks both directions.  The protected
attribute set is *seeded from the code itself* in :meth:`prepare`: any
``self.X`` assigned or mutated inside a lock region anywhere in
``serving/`` is considered lock-protected everywhere in ``serving/``.

Conventions the checker understands:

* methods named ``*_locked`` are caller-holds-the-lock helpers; bare
  mutations inside them are in-scope by contract and not flagged;
* ``__init__``/``__post_init__`` construct before the object is shared
  and are exempt from the mutation check;
* ``Condition.wait`` is not a blocking call for this purpose (it
  releases the lock while waiting).

The dynamic complement -- lock-order cycle detection across the live
test suite -- is :mod:`repro.analysis.lockwatch`.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, ModuleSource, Rule

#: Attribute/variable names that denote a lock object.
_LOCK_NAME_RE = re.compile(r"(?i)lock|mutex")

#: Methods that mutate their receiver in place (list/deque/dict/set).
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "pop",
    "popleft", "popitem", "remove", "discard", "clear", "add", "update",
    "setdefault", "sort", "reverse",
})

#: Method names suffix-matching "sleep" (``time.sleep``, ``self._sleep``).
_SLEEP_RE = re.compile(r"^_*sleep$")

#: Model-forward shapes: ``self.model(...)``, ``self._model(...)``,
#: ``x.forward(...)``.
_FORWARD_RE = re.compile(r"^_*(model|forward)$")

#: Socket/file IO methods flagged unconditionally under a lock.
_IO_METHODS = frozenset({"recv", "recv_into", "sendall", "accept",
                         "connect", "readline", "readlines"})

#: ``read``/``write``/``send`` only when the receiver smells like IO.
_IO_AMBIGUOUS = frozenset({"read", "write", "send", "flush"})
_IO_RECEIVER_RE = re.compile(r"(?i)sock|conn|file|stream|pipe|fh|fp|writer|reader")

#: Setup scopes exempt from the outside-lock mutation check.
_SETUP_FUNCTIONS = frozenset({"__init__", "__post_init__"})


def _attr_chain_tail(node: ast.AST) -> Optional[str]:
    """Trailing identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_lock_expr(node: ast.AST) -> Optional[str]:
    """Lock name when ``node`` is a lock-shaped with-item expression."""
    tail = _attr_chain_tail(node)
    if tail is not None and _LOCK_NAME_RE.search(tail):
        return tail
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """Attribute name when ``node`` is ``self.X``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None


class LockDisciplineRule(Rule):
    """R5: no blocking under a lock, no bare mutation of guarded state."""

    rule_id = "R5"
    title = "serving lock discipline"

    def __init__(self) -> None:
        #: ``self.X`` names observed assigned/mutated under a lock
        #: anywhere in scope -- the shared-state set the mutation check
        #: enforces.  Seeded in :meth:`prepare`.
        self.protected_attrs: Set[str] = set()

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("serving/")

    # ------------------------------------------------------------------ #
    # lock-scope model
    # ------------------------------------------------------------------ #
    def _lock_withs(self, module: ModuleSource) -> List[Tuple[ast.With, str]]:
        """Every ``with <lock>:`` node in the module, with its lock name."""
        found = []
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                name = _is_lock_expr(item.context_expr)
                if name:
                    found.append((node, name))
                    break
        return found

    def _held_lock(self, module: ModuleSource,
                   node: ast.AST) -> Optional[str]:
        """Name of the innermost lock held at ``node``, if any."""
        for parent in module.parents(node):
            if isinstance(parent, (ast.With, ast.AsyncWith)):
                for item in parent.items:
                    name = _is_lock_expr(item.context_expr)
                    if name:
                        return name
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None  # lock scopes do not cross function boundaries
        return None

    # ------------------------------------------------------------------ #
    # prepare: seed the protected-attribute set from lock regions
    # ------------------------------------------------------------------ #
    def _mutated_self_attrs(self, body_node: ast.AST) -> Iterator[str]:
        for sub in ast.walk(body_node):
            if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (sub.targets if isinstance(sub, ast.Assign)
                           else [sub.target])
                for target in targets:
                    attr = _self_attr(target)
                    if attr:
                        yield attr
                    elif isinstance(target, ast.Subscript):
                        attr = _self_attr(target.value)
                        if attr:
                            yield attr
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in MUTATOR_METHODS):
                    attr = _self_attr(func.value)
                    if attr:
                        yield attr

    def prepare(self, modules: Sequence[ModuleSource]) -> None:
        self.protected_attrs = set()
        for module in modules:
            for with_node, _ in self._lock_withs(module):
                for attr in self._mutated_self_attrs(with_node):
                    if not _LOCK_NAME_RE.search(attr):
                        self.protected_attrs.add(attr)

    # ------------------------------------------------------------------ #
    # check 1: blocking calls while a lock is held
    # ------------------------------------------------------------------ #
    def _blocking_reason(self, node: ast.Call) -> Optional[str]:
        func = node.func
        tail = _attr_chain_tail(func)
        if tail is None:
            return None
        if _SLEEP_RE.match(tail):
            return f"{tail}() sleeps"
        if _FORWARD_RE.match(tail):
            return f"{tail}() runs a model forward"
        if isinstance(func, ast.Attribute):
            receiver = _attr_chain_tail(func.value) or ""
            if tail in ("get", "put"):
                queue_ish = bool(re.search(r"(?i)queue|_q$|^q$", receiver))
                has_timeout = any(kw.arg in ("timeout", "block")
                                  for kw in node.keywords)
                bare_get = (tail == "get" and not node.args
                            and not node.keywords)
                if queue_ish or has_timeout or bare_get:
                    return f"{receiver or '<expr>'}.{tail}() can block"
            if tail in _IO_METHODS:
                return f".{tail}() does socket/file IO"
            if tail in _IO_AMBIGUOUS and _IO_RECEIVER_RE.search(receiver):
                return f"{receiver}.{tail}() does socket/file IO"
        elif isinstance(func, ast.Name) and func.id == "open":
            return "open() does file IO"
        return None

    def _check_blocking(self, module: ModuleSource) -> Iterable[Finding]:
        for with_node, lock_name in self._lock_withs(module):
            for sub in ast.walk(with_node):
                if sub is with_node or not isinstance(sub, ast.Call):
                    continue
                reason = self._blocking_reason(sub)
                if reason is None:
                    continue
                yield self.finding(
                    module, sub,
                    f"blocking call while holding {lock_name!r}: {reason}; "
                    "move it outside the critical section (stage under the "
                    "lock, act after release)")

    # ------------------------------------------------------------------ #
    # check 2: guarded state mutated outside any lock scope
    # ------------------------------------------------------------------ #
    def _check_mutations(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            attr: Optional[str] = None
            verb = "assigned"
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    attr = _self_attr(target) or (
                        _self_attr(target.value)
                        if isinstance(target, ast.Subscript) else None)
                    if attr:
                        break
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Attribute)
                        and func.attr in MUTATOR_METHODS):
                    attr = _self_attr(func.value)
                    verb = f"mutated via .{func.attr}()"
            if not attr or attr not in self.protected_attrs:
                continue
            functions = module.enclosing_functions(node)
            if not functions:
                continue
            fn_name = functions[0].name
            if fn_name in _SETUP_FUNCTIONS or fn_name.endswith("_locked"):
                continue
            if self._held_lock(module, node) is not None:
                continue
            yield self.finding(
                module, node,
                f"self.{attr} is lock-protected (mutated under a lock "
                f"elsewhere in serving/) but {verb} here with no lock held; "
                "take the lock or rename the helper *_locked if the caller "
                "holds it")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        yield from self._check_blocking(module)
        yield from self._check_mutations(module)
