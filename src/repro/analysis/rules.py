"""The first-class rule set: the repo's own contracts, encoded (R1-R4, R6-R7).

Each rule statically enforces an invariant earlier PRs established
dynamically (benchmark assertions, equivalence suites, chaos tests):

* **R1** -- hot-path allocation discipline (PR 5's zero-allocation
  kernel boundary).
* **R2** -- workspace-aware kernel-contract conformance and oracle
  pinning for bit-accurate kernels (PRs 1-2, 5).
* **R3** -- machine-readable ``Tolerance:`` docstring tags on anything
  that trades away bitwise transparency (PRs 4, 6).
* **R4** -- seeded determinism: no draws from unseeded or global RNG
  state in the numeric core or the fault injector (PR 7).
* **R6** -- shared-memory lifecycle: every ``SharedMemory(create=True)``
  is paired with an ``unlink()`` error path, so crashes cannot leak
  ``/dev/shm`` segments (PR 9's snapshot tier).
* **R7** -- native-backend degradation: compiled/private backend imports
  in ``kernels/`` are guarded with an ``ImportError`` fallback binding,
  and native ``KernelSpec``\\ s declare ``runner_factory`` (PR 10's C
  extension tier).

R5 (lock discipline) lives in :mod:`repro.analysis.locks`.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, List, Optional, Set

from repro.analysis.engine import Finding, ModuleSource, Rule

# --------------------------------------------------------------------------- #
# R1 -- hot-path allocation discipline
# --------------------------------------------------------------------------- #

#: ``np.X(...)`` constructors that allocate a fresh array.
NUMPY_ALLOCATORS = frozenset({
    "empty", "zeros", "ones", "full",
    "empty_like", "zeros_like", "ones_like", "full_like",
    "concatenate", "stack", "vstack", "hstack", "tile",
})

#: ndarray methods that allocate a fresh array per call.
METHOD_ALLOCATORS = frozenset({"copy", "astype"})

#: One-time construction scopes: allocation here is setup, not hot path.
_SETUP_FUNCTIONS = frozenset({"__init__", "__post_init__", "__init_subclass__"})

#: The allocator implementations themselves (they ARE the sanctioned
#: allocation points the hot path draws from).
_ALLOCATOR_CLASSES = frozenset({"KernelWorkspace", "WorkspaceArena"})

#: Files where only attention-shaped scopes are hot paths.
_ATTENTION_FILES = frozenset({"nn/functional.py", "nn/attention.py"})
_ATTENTION_SCOPE_RE = re.compile(r"(?i)attention|attend|chunk|merge|stream")


def _is_none_check(test: ast.AST) -> bool:
    """True for ``X is None`` / ``X is not None`` (optionally or-ed)."""
    if isinstance(test, ast.BoolOp):
        return any(_is_none_check(value) for value in test.values)
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _is_none_check(test.operand)
    return (isinstance(test, ast.Compare)
            and all(isinstance(op, (ast.Is, ast.IsNot)) for op in test.ops)
            and any(isinstance(c, ast.Constant) and c.value is None
                    for c in test.comparators))


class HotPathAllocationRule(Rule):
    """R1: no per-call array allocation on the kernel/plan hot paths.

    Scope: ``kernels/`` (except the workspace/arena allocators),
    ``infer/plan.py``, and attention-shaped scopes of ``nn/functional.py``
    / ``nn/attention.py``.  Flags ``np.empty/zeros/...`` constructors and
    ``.copy()``/``.astype()`` method calls.

    Sanctioned patterns are exempt statically:

    * module-level and ``__init__``/``__post_init__``/``_build*`` scopes
      (one-time construction, not per-call cost);
    * allocations under an ``is None`` guard -- the documented fallback
      "allocate only when the caller provided no ``out=``/``scratch=``
      buffer" (PR 5's compat path; the steady-state hot path always
      passes buffers, which the encoder benchmark asserts dynamically).

    Anything else is either a real per-call allocation to fix, or a
    deliberate one to annotate with ``# repro: allow(R1)`` plus a
    justification.
    """

    rule_id = "R1"
    title = "hot-path allocation discipline"

    def applies_to(self, relpath: str) -> bool:
        if relpath.startswith("kernels/"):
            return relpath != "kernels/workspace.py"
        return relpath in {"infer/plan.py"} | _ATTENTION_FILES

    # ------------------------------------------------------------------ #
    def _allocation_kind(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if (func.attr in NUMPY_ALLOCATORS
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")):
            return f"np.{func.attr}()"
        if func.attr in METHOD_ALLOCATORS:
            return f".{func.attr}()"
        return None

    def _exempt(self, module: ModuleSource, node: ast.Call,
                relpath: str) -> bool:
        functions = module.enclosing_functions(node)
        if not functions:
            return True  # module-level: one-time setup
        for fn in functions:
            if fn.name in _SETUP_FUNCTIONS or fn.name.startswith("_build"):
                return True
        for cls in module.enclosing_classes(node):
            if cls.name in _ALLOCATOR_CLASSES:
                return True
        for parent in module.parents(node):
            if isinstance(parent, ast.If) and _is_none_check(parent.test):
                return True
        if relpath in _ATTENTION_FILES:
            names = [fn.name for fn in functions]
            names.extend(cls.name for cls in module.enclosing_classes(node))
            if not any(_ATTENTION_SCOPE_RE.search(name) for name in names):
                return True  # not an attention hot path in these files
        return False

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = self._allocation_kind(node)
            if kind is None or self._exempt(module, node, module.relpath):
                continue
            yield self.finding(
                module, node,
                f"hot-path allocation: {kind} allocates a fresh array per "
                "call; stage it on the KernelWorkspace/arena, write into a "
                "caller buffer, or annotate the deliberate exception")


# --------------------------------------------------------------------------- #
# R2 -- kernel-contract conformance
# --------------------------------------------------------------------------- #

#: The workspace-aware kernel contract's trailing parameters and defaults.
_CONTRACT_PARAMS = ("axis", "out", "scratch")


def _default_value(node: Optional[ast.AST]):
    """Literal default of a parameter (``-1``/``None``), else a sentinel."""
    if isinstance(node, ast.Constant):
        return node.value
    if (isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub)
            and isinstance(node.operand, ast.Constant)):
        return -node.operand.value
    return _default_value  # unmatchable sentinel


def _param_defaults(args: ast.arguments) -> dict:
    """Map parameter name -> literal default (missing params absent)."""
    table = {}
    positional = list(args.posonlyargs) + list(args.args)
    defaults = list(args.defaults)
    for arg, default in zip(positional[len(positional) - len(defaults):],
                            defaults):
        table[arg.arg] = _default_value(default)
    for arg in positional[:len(positional) - len(defaults)]:
        table.setdefault(arg.arg, _param_defaults)  # present, no default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        table[arg.arg] = (_default_value(default) if default is not None
                          else _param_defaults)
    return table


class KernelContractRule(Rule):
    """R2: registered kernels obey the workspace-aware call contract.

    Two statically checkable halves of the registry contract:

    * every kernel-shaped ``__call__`` in ``kernels/`` (second parameter
      named ``x``) must carry ``axis=-1, out=None, scratch=None`` -- the
      surface :func:`repro.kernels.registry.resolve_kernel` promises for
      every resolved kernel;
    * every ``KernelSpec(...)`` declaring ``bit_accurate=True`` must also
      declare ``runner_factory=`` so ``tests/kernels/test_equivalence.py``
      auto-pins the kernel to the slice-loop oracle (a bit-accurate
      kernel that the equivalence suite cannot see is an unverified
      claim).
    """

    rule_id = "R2"
    title = "workspace-aware kernel-contract conformance"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("kernels/")

    def _check_call_signature(self, module: ModuleSource,
                              cls: ast.ClassDef) -> Iterable[Finding]:
        for item in cls.body:
            if (isinstance(item, ast.FunctionDef) and item.name == "__call__"):
                params = [a.arg for a in item.args.args]
                if len(params) < 2 or params[1] != "x":
                    return  # not kernel-shaped (helper callable)
                defaults = _param_defaults(item.args)
                expected = {"axis": -1, "out": None, "scratch": None}
                for name in _CONTRACT_PARAMS:
                    if name not in defaults:
                        yield self.finding(
                            module, item,
                            f"kernel {module.qualname(cls)!r}.__call__ is "
                            f"missing the contract parameter "
                            f"{name}={expected[name]!r} "
                            "(fn(x, axis=-1, out=None, scratch=None))")
                    elif defaults[name] != expected[name]:
                        yield self.finding(
                            module, item,
                            f"kernel {module.qualname(cls)!r}.__call__ "
                            f"parameter {name!r} must default to "
                            f"{expected[name]!r} per the workspace-aware "
                            "contract")
                return

    def _check_spec(self, module: ModuleSource,
                    node: ast.Call) -> Iterable[Finding]:
        keywords = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        bit_accurate = keywords.get("bit_accurate")
        declared_accurate = (isinstance(bit_accurate, ast.Constant)
                            and bit_accurate.value is True)
        if declared_accurate and "runner_factory" not in keywords:
            name = keywords.get("name")
            label = (name.value if isinstance(name, ast.Constant)
                     else "<unnamed>")
            yield self.finding(
                module, node,
                f"KernelSpec {label!r} declares bit_accurate=True without a "
                "runner_factory; the equivalence suite cannot auto-pin it "
                "to the slice-loop oracle")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_call_signature(module, node)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "KernelSpec"):
                yield from self._check_spec(module, node)


# --------------------------------------------------------------------------- #
# R3 -- tolerance-contract lint
# --------------------------------------------------------------------------- #

#: Parameters that opt a call path out of bitwise transparency.
TOLERANCE_PARAMS = frozenset({"fuse_qkv", "block_kv"})

_TOLERANCE_TAG_RE = re.compile(r"\bTolerance:")


class ToleranceContractRule(Rule):
    """R3: bitwise-transparency opt-ins carry a ``Tolerance:`` docstring tag.

    Anything that trades away bitwise equality with the oracle path
    (fusion, chunked merges, lower precision) is opt-in *with a
    documented tolerance* -- the convention ``fuse_qkv`` and ``block_kv``
    established.  This rule finds every function whose signature carries
    one of those opt-in parameters and actually *implements* the traded
    path (uses the parameter beyond forwarding it onward), then requires
    a machine-readable ``Tolerance:`` tag in its docstring.

    Pure plumbing is exempt: passing the parameter through as a same-name
    keyword argument or dict entry, storing it on ``self``, or gating on
    ``is None`` / ``is not None`` does not implement the contract, it
    routes to it.
    """

    rule_id = "R3"
    title = "tolerance-contract documentation"

    def _is_forwarding_use(self, module: ModuleSource, use: ast.Name) -> bool:
        parent = next(module.parents(use), None)
        name = use.id
        if isinstance(parent, ast.keyword) and parent.arg == name:
            return True  # f(..., fuse_qkv=fuse_qkv)
        if isinstance(parent, ast.Dict):
            for key, value in zip(parent.keys, parent.values):
                if value is use:
                    return (isinstance(key, ast.Constant)
                            and key.value == name)
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = (parent.targets if isinstance(parent, ast.Assign)
                       else [parent.target])
            def _same_name_store(t):
                if isinstance(t, ast.Attribute) and t.attr == name:
                    return True  # self.fuse_qkv = fuse_qkv
                return (isinstance(t, ast.Subscript)
                        and isinstance(t.slice, ast.Constant)
                        and t.slice.value == name)  # kw["fuse_qkv"] = fuse_qkv
            if all(_same_name_store(t) for t in targets):
                return True
        if isinstance(parent, ast.Compare) and _is_none_check(parent):
            return True  # if block_kv is not None: ... (routing, not use)
        return False

    def _implementing_params(self, module: ModuleSource,
                             fn: ast.AST) -> List[str]:
        arg_names = {a.arg for a in (list(fn.args.posonlyargs)
                                     + list(fn.args.args)
                                     + list(fn.args.kwonlyargs))}
        params = sorted(arg_names & TOLERANCE_PARAMS)
        if not params:
            return []
        nested = {n for inner in ast.walk(fn)
                  if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
                  and inner is not fn
                  for n in ast.walk(inner)}
        implementing = []
        for param in params:
            for node in ast.walk(fn):
                if node in nested:
                    continue  # nested defs shadow/close over; skip
                if (isinstance(node, ast.Name) and node.id == param
                        and isinstance(node.ctx, ast.Load)
                        and not self._is_forwarding_use(module, node)):
                    implementing.append(param)
                    break
        return implementing

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params = self._implementing_params(module, node)
            if not params:
                continue
            doc = ast.get_docstring(node)
            if doc and _TOLERANCE_TAG_RE.search(doc):
                continue
            yield self.finding(
                module, node,
                f"{module.qualname(node)!r} implements the bitwise-"
                f"transparency opt-in(s) {', '.join(params)} but its "
                "docstring has no machine-readable 'Tolerance:' tag "
                "documenting the traded accuracy")


# --------------------------------------------------------------------------- #
# R4 -- determinism lint
# --------------------------------------------------------------------------- #

#: Seeded RNG constructors (fine *with* an explicit seed argument).
_NP_SEEDED_CTORS = frozenset({"default_rng", "RandomState", "SeedSequence",
                              "Generator", "PCG64", "Philox"})
_PY_SEEDED_CTORS = frozenset({"Random", "SystemRandom"})

#: Module-level draw functions of :mod:`random` (the unseeded global RNG).
_PY_DRAWS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "expovariate", "triangular", "getrandbits", "vonmisesvariate",
})

#: Wall-clock sources that make a seed run-dependent.
_TIME_ATTRS = frozenset({"time", "time_ns", "monotonic", "monotonic_ns",
                         "perf_counter", "perf_counter_ns"})


def _contains_time_call(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        func = sub.func
        if (isinstance(func, ast.Attribute) and func.attr in _TIME_ATTRS
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"):
            return True
        if (isinstance(func, ast.Attribute) and func.attr in ("now", "utcnow")
                and isinstance(func.value, ast.Name)
                and func.value.id in ("datetime", "date")):
            return True
    return False


class DeterminismRule(Rule):
    """R4: no unseeded or time-dependent randomness in deterministic zones.

    Scope: ``core/``, ``kernels/``, ``infer/`` (bitwise reproducibility
    is the product) and ``serving/faults.py`` (chaos schedules must
    replay from their recorded seed alone).  Flags draws from the global
    ``np.random``/``random`` state, unseeded generator construction
    (``default_rng()`` / ``Random()`` with no arguments), global seeding
    (``np.random.seed``), and seeds derived from the wall clock.
    """

    rule_id = "R4"
    title = "seeded determinism"

    _SCOPE_PREFIXES = ("core/", "kernels/", "infer/")
    _SCOPE_FILES = ("serving/faults.py",)

    def applies_to(self, relpath: str) -> bool:
        return (relpath.startswith(self._SCOPE_PREFIXES)
                or relpath in self._SCOPE_FILES)

    def _check_ctor(self, module: ModuleSource, node: ast.Call,
                    label: str) -> Iterable[Finding]:
        if not node.args and not node.keywords:
            yield self.finding(
                module, node,
                f"{label}() constructed without a seed draws entropy from "
                "the OS; pass an explicit seed so runs replay")
        elif any(_contains_time_call(arg) for arg in
                 list(node.args) + [kw.value for kw in node.keywords]):
            yield self.finding(
                module, node,
                f"{label}(...) is seeded from the wall clock; a seed must "
                "be a recorded, replayable input")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            value = func.value
            # np.random.X(...)
            if (isinstance(value, ast.Attribute) and value.attr == "random"
                    and isinstance(value.value, ast.Name)
                    and value.value.id in ("np", "numpy")):
                if func.attr in _NP_SEEDED_CTORS:
                    yield from self._check_ctor(
                        module, node, f"np.random.{func.attr}")
                elif func.attr == "seed":
                    yield self.finding(
                        module, node,
                        "np.random.seed mutates process-global RNG state; "
                        "use a local seeded np.random.default_rng(seed)")
                else:
                    yield self.finding(
                        module, node,
                        f"np.random.{func.attr} draws from the global "
                        "unseeded generator; use a seeded "
                        "np.random.default_rng(seed)")
            # random.X(...)
            elif isinstance(value, ast.Name) and value.id == "random":
                if func.attr in _PY_SEEDED_CTORS:
                    yield from self._check_ctor(
                        module, node, f"random.{func.attr}")
                elif func.attr == "seed":
                    yield self.finding(
                        module, node,
                        "random.seed mutates process-global RNG state; use "
                        "a local seeded random.Random(seed)")
                elif func.attr in _PY_DRAWS:
                    yield self.finding(
                        module, node,
                        f"random.{func.attr} draws from the global unseeded "
                        "generator; use a seeded random.Random(seed)")


# --------------------------------------------------------------------------- #
# R6 -- shared-memory lifecycle discipline
# --------------------------------------------------------------------------- #

def _contains_unlink_call(nodes) -> bool:
    """True when any node in ``nodes`` (recursively) calls ``*.unlink()``."""
    for root in nodes:
        for node in ast.walk(root):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "unlink"):
                return True
    return False


def _is_shm_create(node: ast.Call) -> bool:
    """``SharedMemory(create=True, ...)`` under any import alias."""
    func = node.func
    name = (func.id if isinstance(func, ast.Name)
            else func.attr if isinstance(func, ast.Attribute) else None)
    if name != "SharedMemory":
        return False
    return any(kw.arg == "create"
               and isinstance(kw.value, ast.Constant)
               and kw.value.value is True
               for kw in node.keywords)


class SharedMemoryLifecycleRule(Rule):
    """R6: every created shared-memory segment has an unlink error path.

    ``SharedMemory(create=True)`` allocates a segment that outlives the
    process unless something calls ``unlink()`` -- an exception between
    create and the happy-path cleanup leaks ``/dev/shm`` until reboot.
    The rule accepts a creation site when either

    * the enclosing function guards it: some ``try`` in the same function
      calls ``*.unlink()`` from a ``finally`` or ``except`` handler, or
    * ownership is transferred to an object: the segment is stored on
      (or passed to) ``self``/a class instance whose class defines a
      method that calls ``*.unlink()`` (e.g. ``close()``) -- the
      :class:`~repro.serving.snapshot.SnapshotBundle` pattern.

    Attach-side handles (``SharedMemory(name=...)`` without ``create``)
    are out of scope: non-owners must *not* unlink.
    """

    rule_id = "R6"
    title = "shared-memory lifecycle"

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call) and _is_shm_create(node)):
                continue
            if self._function_has_unlink_path(module, node):
                continue
            if self._owning_class_unlinks(module, node):
                continue
            yield self.finding(
                module, node,
                "SharedMemory(create=True) has no unlink() on any error "
                "path here; wrap it in try/finally (or except: unlink and "
                "re-raise), or hand the segment to an owner class whose "
                "close() unlinks, so a crash cannot leak /dev/shm")

    # ------------------------------------------------------------------ #
    def _function_has_unlink_path(self, module: ModuleSource,
                                  node: ast.Call) -> bool:
        functions = module.enclosing_functions(node)
        scope = functions[0] if functions else module.tree
        for candidate in ast.walk(scope):
            if not isinstance(candidate, ast.Try):
                continue
            if _contains_unlink_call(candidate.finalbody):
                return True
            if _contains_unlink_call(candidate.handlers):
                return True
        return False

    def _owning_class_unlinks(self, module: ModuleSource,
                              node: ast.Call) -> bool:
        classes = module.enclosing_classes(node)
        if not classes:
            return False
        for method in ast.walk(classes[0]):
            if (isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and _contains_unlink_call(method.body)):
                return True
        return False


# --------------------------------------------------------------------------- #
# R7 -- native-backend degradation discipline
# --------------------------------------------------------------------------- #

#: Exception types that qualify as guarding an optional import.
_IMPORT_GUARD_EXCEPTIONS = frozenset({
    "ImportError", "ModuleNotFoundError", "Exception", "BaseException",
})

#: ``KernelSpec(name=...)`` values that imply a compiled (``.so``) backend.
_NATIVE_SPEC_NAME_RE = re.compile(r"(?i)native|compiled")


def _is_private_component(name: str) -> bool:
    """True for a ``_native``-style path component (dunders are public API)."""
    return name.startswith("_") and not name.startswith("__")


def _import_label(node) -> Optional[str]:
    """Dotted path being imported, if it crosses a private component.

    Matches the compiled-backend layout: ``repro.kernels._native``,
    ``numpy._core.umath``, or a relative ``from . import _softermax``.
    Returns ``None`` for ordinary public imports.
    """
    if isinstance(node, ast.Import):
        for alias in node.names:
            if any(_is_private_component(p) for p in alias.name.split(".")):
                return alias.name
        return None
    module = node.module or ""
    if any(_is_private_component(p) for p in module.split(".") if p):
        return module
    if node.level:  # relative import: aliases may be private submodules
        for alias in node.names:
            if _is_private_component(alias.name):
                return "." * node.level + module + "." + alias.name
    return None


def _bound_names(node) -> Set[str]:
    """Names an import statement binds in the enclosing scope."""
    names = set()
    for alias in node.names:
        if alias.asname:
            names.add(alias.asname)
        elif alias.name != "*":
            names.add(alias.name.split(".")[0] if isinstance(node, ast.Import)
                      else alias.name)
    return names


def _catches_import_error(type_node: Optional[ast.AST]) -> bool:
    if type_node is None:
        return True  # bare except
    if isinstance(type_node, ast.Tuple):
        return any(_catches_import_error(elt) for elt in type_node.elts)
    name = (type_node.id if isinstance(type_node, ast.Name)
            else type_node.attr if isinstance(type_node, ast.Attribute)
            else None)
    return name in _IMPORT_GUARD_EXCEPTIONS


def _handler_bound_names(handler: ast.ExceptHandler) -> Set[str]:
    bound = set()
    for stmt in handler.body:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
                bound.add(sub.id)
            elif isinstance(sub, (ast.Import, ast.ImportFrom)):
                bound |= _bound_names(sub)
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                bound.add(sub.name)
    return bound


class NativeBackendGuardRule(Rule):
    """R7: compiled backends degrade, never crash, when the ``.so`` is absent.

    The compiled Softermax extension is optional by design: a box without
    a C compiler (or with ``REPRO_DISABLE_NATIVE=1``) must fall back to
    the pure-Python engines at import time.  Two statically checkable
    halves of that contract, scoped to ``kernels/``:

    * **Guarded import sites.** Any import whose dotted path crosses a
      private component (``repro.kernels._native``, ``_softermax``,
      ``numpy._core.umath`` -- compiled modules and private layouts that
      a stock install may not provide) must sit inside ``try`` with an
      ``except ImportError`` handler that rebinds *every* imported name
      to a pure-Python fallback (``lib = None``, ``_clip = np.clip``),
      so callers can test availability instead of crashing.
    * **Dispatchable native specs.** Every ``KernelSpec(...)`` whose
      ``name`` implies a compiled backend must declare
      ``runner_factory=`` -- a ``.so``-backed kernel that the
      equivalence suite cannot auto-pin to the slice-loop oracle is an
      unverifiable fast path (R2 covers ``bit_accurate=True`` specs;
      this closes the gap for native specs that forget to declare even
      that).
    """

    rule_id = "R7"
    title = "native-backend degradation discipline"

    def applies_to(self, relpath: str) -> bool:
        return relpath.startswith("kernels/")

    # ------------------------------------------------------------------ #
    def _guarding_try(self, module: ModuleSource,
                      node: ast.AST) -> Optional[ast.Try]:
        """Innermost ``try`` whose *body* (not handlers) contains ``node``."""
        child = node
        for parent in module.parents(node):
            if isinstance(parent, ast.Try):
                for stmt in parent.body:
                    if child is stmt:
                        return parent
            child = parent
        return None

    def _check_import(self, module: ModuleSource,
                      node: ast.AST) -> Iterable[Finding]:
        label = _import_label(node)
        if label is None:
            return
        guard = self._guarding_try(module, node)
        if guard is None:
            yield self.finding(
                module, node,
                f"import of compiled/private backend {label!r} is "
                "unguarded; wrap it in try/except ImportError and bind a "
                "pure-Python fallback so a missing extension degrades "
                "instead of crashing at import")
            return
        names = _bound_names(node)
        for handler in guard.handlers:
            if (_catches_import_error(handler.type)
                    and names <= _handler_bound_names(handler)):
                return
        yield self.finding(
            module, node,
            f"guard around compiled/private backend import {label!r} has "
            "no except-ImportError handler binding a fallback for "
            f"{', '.join(sorted(names)) or 'its names'}; callers must see "
            "a pure-Python substitute (e.g. lib = None), not a NameError")

    def _check_spec(self, module: ModuleSource,
                    node: ast.Call) -> Iterable[Finding]:
        keywords = {kw.arg: kw.value for kw in node.keywords if kw.arg}
        name = keywords.get("name")
        if not (isinstance(name, ast.Constant) and isinstance(name.value, str)
                and _NATIVE_SPEC_NAME_RE.search(name.value)):
            return
        if "runner_factory" not in keywords:
            yield self.finding(
                module, node,
                f"native KernelSpec {name.value!r} declares no "
                "runner_factory; a .so-backed kernel the equivalence suite "
                "cannot auto-pin to the slice-loop oracle is an unverified "
                "fast path")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(module, node)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "KernelSpec"):
                yield from self._check_spec(module, node)
