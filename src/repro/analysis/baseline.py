"""Committed lint baselines: accepted findings that must not block CI.

A baseline is a JSON file of finding *fingerprints*.  A fingerprint is
``rule|path|<stripped source line>|<occurrence index>`` -- anchored to the
text of the offending line rather than its line number, so unrelated
edits above a baselined finding do not invalidate it, while editing the
offending line itself (the thing the rule actually looks at) does.  The
occurrence index disambiguates identical lines flagged by the same rule
in the same file.

Workflow:

* ``repro lint`` compares the current findings against the baseline:
  findings in the baseline are reported as accepted, new ones fail the
  run, baseline entries that no longer match anything are reported as
  stale (warn-only -- prune them with ``--update-baseline``).
* ``repro lint --update-baseline`` rewrites the file from the current
  findings.  The diff of the baseline file *is* the review surface for
  newly accepted deviations.

Prefer inline ``# repro: allow(<rule>)`` comments (with a one-line
justification) for deviations that are local and deliberate; the baseline
is for pre-existing long tails where annotating every site would drown
the code in comments.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis.engine import Finding

#: Baseline file-format version (bumped on incompatible changes).
BASELINE_VERSION = 1


def finding_fingerprints(findings: Sequence[Finding]) -> List[str]:
    """Stable fingerprints for ``findings``, in finding order.

    Occurrence indices are assigned per ``(rule, path, source)`` group in
    (path, line) order, so two identical offending lines in one file get
    distinct fingerprints and the mapping is deterministic.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    seen: Dict[Tuple[str, str, str], int] = {}
    by_finding: Dict[int, str] = {}
    for f in ordered:
        group = (f.rule, f.path, f.source)
        index = seen.get(group, 0)
        seen[group] = index + 1
        by_finding[id(f)] = f"{f.rule}|{f.path}|{f.source}|{index}"
    return [by_finding[id(f)] for f in findings]


def load_baseline(path: Path) -> Set[str]:
    """Fingerprint set from a baseline file; empty when the file is absent."""
    path = Path(path)
    if not path.exists():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} in "
            f"{path} (expected {BASELINE_VERSION})")
    return set(payload.get("fingerprints", []))


def save_baseline(path: Path, findings: Sequence[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    path = Path(path)
    fingerprints = sorted(set(finding_fingerprints(findings)))
    payload = {
        "version": BASELINE_VERSION,
        "comment": "Accepted `repro lint` findings; regenerate with "
                   "`python -m repro.cli lint --update-baseline`.",
        "fingerprints": fingerprints,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(fingerprints)


def partition_findings(
    findings: Sequence[Finding], baseline: Iterable[str],
) -> Tuple[List[Finding], List[Finding], List[str]]:
    """Split findings into (new, accepted) and list stale baseline entries."""
    baseline = set(baseline)
    new: List[Finding] = []
    accepted: List[Finding] = []
    matched: Set[str] = set()
    for f, fingerprint in zip(findings, finding_fingerprints(findings)):
        if fingerprint in baseline:
            accepted.append(f)
            matched.add(fingerprint)
        else:
            new.append(f)
    stale = sorted(baseline - matched)
    return new, accepted, stale
