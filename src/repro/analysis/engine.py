"""AST-based invariant lint engine.

The repo's load-bearing contracts -- the workspace-aware kernel surface
``fn(x, axis=-1, out=None, scratch=None)``, the zero-allocation hot path,
opt-in-with-documented-tolerance for anything non-bitwise, seeded
determinism, and lock discipline in the serving layer -- used to exist
only as ROADMAP prose plus dynamic checks that fire *after* a violation
ships.  This engine makes them machine-checked at commit time:

* :class:`LintEngine` walks a package tree, parses every module once into
  a :class:`ModuleSource` (AST with parent links, source lines, and
  suppression comments), and runs a list of pluggable :class:`Rule`
  visitors over it.
* Rules emit structured :class:`Finding` records (rule id, file:line,
  severity, message, the offending source line) instead of free text, so
  the CLI can render them, JSON-serialize them, and diff them against a
  committed baseline (:mod:`repro.analysis.baseline`).
* Intentional deviations are annotated in place: a ``# repro:
  allow(R1)`` comment on the offending line (or the line above it)
  suppresses that rule there; placed on a ``def`` line (or directly above
  one) it suppresses the rule for the whole function body.  ``allow(*)``
  suppresses every rule.  Suppressions are the reviewed, justified
  escape hatch; the baseline file is for the pre-existing long tail.

The rule set itself lives in :mod:`repro.analysis.rules` (R1-R4) and
:mod:`repro.analysis.locks` (R5); ``repro lint`` (the CLI) wires the
pieces together and is the commit-time entry point.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Finding severities.  ``error`` findings fail the lint run (unless
#: baselined or suppressed); ``warning`` findings are reported but never
#: fail it.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: ``# repro: allow(R1)`` / ``# repro: allow(R1, R5)`` / ``# repro: allow(*)``.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")

#: Attribute stashed on AST nodes to link each node to its parent.
_PARENT = "_repro_parent"


@dataclass(frozen=True)
class Finding:
    """One structured lint finding.

    ``source`` is the stripped text of the offending line; it anchors the
    baseline fingerprint so findings survive unrelated line-number drift.
    """

    rule: str
    path: str
    line: int
    message: str
    severity: str = SEVERITY_ERROR
    source: str = ""

    def format(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.severity}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "severity": self.severity,
            "message": self.message,
            "source": self.source,
        }


class ModuleSource:
    """One parsed module: AST with parent links, lines, suppressions."""

    def __init__(self, path: Path, relpath: str, text: str) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=str(path))
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                setattr(child, _PARENT, node)
        #: line -> rule ids allowed on that line ("*" allows everything).
        self._allow: Dict[int, Set[str]] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _ALLOW_RE.search(line)
            if match:
                rules = {item.strip() for item in match.group(1).split(",")
                         if item.strip()}
                self._allow[lineno] = rules or {"*"}
        #: (first_line, last_line, rules) ranges from def-level allows.
        self._allow_ranges: List[Tuple[int, int, Set[str]]] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            rules = (self._allow.get(node.lineno, set())
                     | self._allow.get(node.lineno - 1, set()))
            if rules:
                self._allow_ranges.append(
                    (node.lineno, node.end_lineno or node.lineno, rules))

    # ------------------------------------------------------------------ #
    def source_line(self, lineno: int) -> str:
        """Stripped source text of ``lineno`` (1-based; empty if out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def suppressed(self, rule: str, lineno: int) -> bool:
        """True when ``rule`` is allowed at ``lineno`` (inline or def-level)."""
        for probe in (lineno, lineno - 1):
            rules = self._allow.get(probe)
            if rules and ("*" in rules or rule in rules):
                return True
        for lo, hi, rules in self._allow_ranges:
            if lo <= lineno <= hi and ("*" in rules or rule in rules):
                return True
        return False

    # ------------------------------------------------------------------ #
    def parents(self, node: ast.AST) -> Iterator[ast.AST]:
        """Ancestors of ``node``, innermost first."""
        current = getattr(node, _PARENT, None)
        while current is not None:
            yield current
            current = getattr(current, _PARENT, None)

    def enclosing_functions(self, node: ast.AST) -> List[ast.AST]:
        """Enclosing function defs, innermost first."""
        return [p for p in self.parents(node)
                if isinstance(p, (ast.FunctionDef, ast.AsyncFunctionDef))]

    def enclosing_classes(self, node: ast.AST) -> List[ast.ClassDef]:
        """Enclosing class defs, innermost first."""
        return [p for p in self.parents(node) if isinstance(p, ast.ClassDef)]

    def qualname(self, node: ast.AST) -> str:
        """Dotted name of a def/class: enclosing scopes joined with '.'."""
        parts = [getattr(node, "name", type(node).__name__)]
        for parent in self.parents(node):
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                parts.append(parent.name)
        return ".".join(reversed(parts))


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id``/``title`` and implement :meth:`check`;
    :meth:`applies_to` scopes the rule to a path subset, and
    :meth:`prepare` (optional) sees every in-scope module before the
    per-module checks run -- rules that need cross-module state (the lock
    checker's protected-attribute seeding) build it there.
    """

    rule_id = "R?"
    title = ""

    def applies_to(self, relpath: str) -> bool:
        return True

    def prepare(self, modules: Sequence[ModuleSource]) -> None:
        pass

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    def finding(self, module: ModuleSource, node: ast.AST, message: str,
                severity: str = SEVERITY_ERROR) -> Finding:
        """Build a :class:`Finding` anchored at ``node``'s line."""
        lineno = getattr(node, "lineno", 0)
        return Finding(rule=self.rule_id, path=module.relpath, line=lineno,
                       message=message, severity=severity,
                       source=module.source_line(lineno))


@dataclass
class LintReport:
    """Everything one engine run produced."""

    findings: List[Finding] = field(default_factory=list)
    modules_scanned: int = 0
    suppressed: int = 0


class LintEngine:
    """Walk a package tree and run every rule over every module."""

    def __init__(self, root: Path, rules: Sequence[Rule]) -> None:
        self.root = Path(root)
        self.rules = list(rules)

    def _load_modules(self) -> Tuple[List[ModuleSource], List[Finding]]:
        modules: List[ModuleSource] = []
        errors: List[Finding] = []
        for path in sorted(self.root.rglob("*.py")):
            relpath = path.relative_to(self.root).as_posix()
            try:
                text = path.read_text(encoding="utf-8")
                modules.append(ModuleSource(path, relpath, text))
            except (SyntaxError, UnicodeDecodeError, OSError) as exc:
                errors.append(Finding(
                    rule="parse", path=relpath,
                    line=getattr(exc, "lineno", 0) or 0,
                    message=f"could not parse module: {exc}"))
        return modules, errors

    def run(self) -> LintReport:
        report = LintReport()
        modules, errors = self._load_modules()
        report.findings.extend(errors)
        report.modules_scanned = len(modules)
        for rule in self.rules:
            in_scope = [m for m in modules if rule.applies_to(m.relpath)]
            rule.prepare(in_scope)
            for module in in_scope:
                for finding in rule.check(module):
                    if module.suppressed(finding.rule, finding.line):
                        report.suppressed += 1
                        continue
                    report.findings.append(finding)
        report.findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
        return report
