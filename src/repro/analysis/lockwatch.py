"""Dynamic lock-order watcher: the runtime complement to R5.

Static analysis sees lock *scopes*; it cannot see lock *order* across
threads.  A lock-order inversion -- thread A takes L1 then L2 while
thread B takes L2 then L1 -- deadlocks only under the right interleaving
and passes every unit test until it doesn't.  This module records the
actual acquisition order across a live run and fails on cycles:

* :func:`install` monkeypatches ``threading.Lock``/``threading.RLock``
  with factories returning :class:`WatchedLock` wrappers.  Each wrapper
  is named after its creation site (``Lock@service.py:87``) and reports
  acquisitions/releases to a :class:`LockOrderWatcher`.
* The watcher keeps a per-thread stack of held locks and an edge set
  ``held -> acquired``.  A cycle in that graph is a potential deadlock
  even if no run ever deadlocked.
* ``tests/serving/conftest.py`` installs this for the whole serving
  suite when ``REPRO_LOCKWATCH=1``, and fails the session on cycles;
  ``scripts/ci.sh`` runs that configuration as a hard-fail stage.

The watcher's own mutex is a raw ``_thread`` lock allocated before any
patching, so installing the watcher can never recurse into itself.
Wrapped locks deliberately do not implement ``_release_save`` /
``_acquire_restore``, which makes ``threading.Condition`` fall back to
its generic acquire/release path -- wait-loops work unchanged.
"""

from __future__ import annotations

import _thread
import sys
import threading
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple


class LockOrderWatcher:
    """Records lock-acquisition order and detects order cycles."""

    def __init__(self) -> None:
        self._mutex = _thread.allocate_lock()
        #: thread ident -> stack of held lock names (acquisition order).
        self._held: Dict[int, List[str]] = {}
        #: lock name -> set of lock names acquired while it was held.
        self._edges: Dict[str, Set[str]] = {}
        #: (held, acquired) -> thread name that first created the edge.
        self._edge_witness: Dict[Tuple[str, str], str] = {}
        self.acquisitions = 0

    # ------------------------------------------------------------------ #
    def notify_acquired(self, name: str) -> None:
        ident = _thread.get_ident()
        with self._mutex:
            self.acquisitions += 1
            stack = self._held.setdefault(ident, [])
            for held in stack:
                if held != name:  # RLock reentrance is not an ordering edge
                    if name not in self._edges.setdefault(held, set()):
                        self._edges[held].add(name)
                        self._edge_witness[(held, name)] = (
                            threading.current_thread().name)
            stack.append(name)

    def notify_released(self, name: str) -> None:
        ident = _thread.get_ident()
        with self._mutex:
            stack = self._held.get(ident, [])
            # Remove the most recent acquisition of this lock; out-of-order
            # releases (legal, if unusual) still keep the stack consistent.
            for i in range(len(stack) - 1, -1, -1):
                if stack[i] == name:
                    del stack[i]
                    break

    # ------------------------------------------------------------------ #
    def edges(self) -> Dict[str, Set[str]]:
        with self._mutex:
            return {src: set(dst) for src, dst in self._edges.items()}

    def cycles(self) -> List[List[str]]:
        """Every elementary order cycle found by DFS, as name paths.

        A returned ``[A, B]`` means A was held while acquiring B *and* B
        was held while acquiring A somewhere in the run -- a potential
        deadlock regardless of whether this run interleaved into one.
        """
        graph = self.edges()
        cycles: List[List[str]] = []
        seen_cycles: Set[Tuple[str, ...]] = set()
        visiting: List[str] = []
        on_path: Set[str] = set()
        done: Set[str] = set()

        def visit(node: str) -> None:
            visiting.append(node)
            on_path.add(node)
            for succ in sorted(graph.get(node, ())):
                if succ in on_path:
                    cycle = visiting[visiting.index(succ):]
                    # Canonicalize rotation so each cycle reports once.
                    pivot = cycle.index(min(cycle))
                    key = tuple(cycle[pivot:] + cycle[:pivot])
                    if key not in seen_cycles:
                        seen_cycles.add(key)
                        cycles.append(list(key))
                elif succ not in done:
                    visit(succ)
            on_path.discard(node)
            visiting.pop()
            done.add(node)

        for node in sorted(graph):
            if node not in done:
                visit(node)
        return cycles

    def report(self) -> str:
        """Human-readable summary of edges and any cycles."""
        graph = self.edges()
        lines = [f"lockwatch: {self.acquisitions} acquisitions, "
                 f"{sum(len(v) for v in graph.values())} order edge(s)"]
        for src in sorted(graph):
            for dst in sorted(graph[src]):
                witness = self._edge_witness.get((src, dst), "?")
                lines.append(f"  {src} -> {dst}  [first seen on {witness}]")
        found = self.cycles()
        if found:
            lines.append(f"  LOCK-ORDER CYCLE(S): {len(found)}")
            for cycle in found:
                lines.append("    " + " -> ".join(cycle + [cycle[0]]))
        else:
            lines.append("  no lock-order cycles")
        return "\n".join(lines)


class WatchedLock:
    """A lock wrapper that reports acquisition order to a watcher."""

    def __init__(self, inner, name: str, watcher: LockOrderWatcher) -> None:
        self._inner = inner
        self._name = name
        self._watcher = watcher

    @property
    def name(self) -> str:
        return self._name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._watcher.notify_acquired(self._name)
        return acquired

    def release(self) -> None:
        self._watcher.notify_released(self._name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __getattr__(self, attr):
        # Stdlib internals poke at lock extras (`_at_fork_reinit`, ...);
        # anything we don't wrap passes straight through.  Acquisitions
        # via such bypasses are simply not recorded.
        return getattr(self._inner, attr)

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<WatchedLock {self._name} wrapping {self._inner!r}>"


#: The process-wide watcher :func:`install` defaults to.
default_watcher = LockOrderWatcher()

_installed = False


def _creation_site(depth: int) -> str:
    frame = sys._getframe(depth)
    return f"{Path(frame.f_code.co_filename).name}:{frame.f_lineno}"


def install(watcher: Optional[LockOrderWatcher] = None) -> Callable[[], None]:
    """Patch ``threading.Lock``/``RLock`` to produce watched locks.

    Returns an ``uninstall()`` closure restoring the real factories.
    Locks created *before* install (or after uninstall) are simply not
    watched; already-created watched locks keep reporting to their
    watcher, which is harmless.  Install is refused while another
    install is active -- nested patching would double-wrap.
    """
    global _installed
    if _installed:
        raise RuntimeError("lockwatch is already installed")
    target = watcher if watcher is not None else default_watcher
    real_lock = threading.Lock
    real_rlock = threading.RLock

    def make_lock():
        return WatchedLock(real_lock(), f"Lock@{_creation_site(2)}", target)

    def make_rlock():
        return WatchedLock(real_rlock(), f"RLock@{_creation_site(2)}", target)

    threading.Lock = make_lock  # type: ignore[assignment]
    threading.RLock = make_rlock  # type: ignore[assignment]
    _installed = True

    def uninstall() -> None:
        global _installed
        threading.Lock = real_lock  # type: ignore[assignment]
        threading.RLock = real_rlock  # type: ignore[assignment]
        _installed = False

    return uninstall
