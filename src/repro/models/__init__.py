"""BERT-style models, task heads and the Softermax-aware fine-tuning loop."""

from repro.models.bert import (
    BertConfig,
    BertEncoderModel,
    ClassificationHead,
    RegressionHead,
    SpanHead,
    TaskModel,
)
from repro.models.finetune import (
    FinetuneConfig,
    FinetuneResult,
    finetune,
    pretrain_task_model,
)

__all__ = [
    "BertConfig",
    "BertEncoderModel",
    "ClassificationHead",
    "RegressionHead",
    "SpanHead",
    "TaskModel",
    "FinetuneConfig",
    "FinetuneResult",
    "finetune",
    "pretrain_task_model",
]
