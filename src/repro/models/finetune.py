"""Softermax-aware fine-tuning (paper section III, "Software setup" in V).

The paper's training recipe is:

1. Start from a model pre-trained with the standard full-precision softmax.
2. Attach 8-bit fake quantization to weights and activations, calibrate the
   scales with a 99.999th-percentile calibrator.
3. Fine-tune for the downstream task with the chosen softmax in the forward
   pass (standard quantized softmax for the baseline, bit-accurate
   Softermax for the proposed scheme) and straight-through gradients.

Since no pre-trained checkpoints exist offline, step 1 is replaced by a
short "pre-training" phase on the task's training split with the reference
softmax and no quantization; both the baseline and Softermax runs start
from the *same* pre-trained weights, which is exactly the controlled
comparison Table III makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.data.tasks import TaskBatch, TaskDataset
from repro.models.bert import BertConfig, TaskModel
from repro.nn import Adam, LinearWarmupSchedule, clip_grad_norm
from repro.nn.functional import SoftmaxVariant
from repro.nn.losses import cross_entropy, mse_loss, span_cross_entropy
from repro.quant import attach_quantizers, begin_calibration, freeze_quantizers


@dataclass
class FinetuneConfig:
    """Hyper-parameters of one fine-tuning run."""

    pretrain_epochs: int = 10
    finetune_epochs: int = 4
    batch_size: int = 32
    pretrain_lr: float = 3e-3
    finetune_lr: float = 1e-3
    warmup_fraction: float = 0.1
    max_grad_norm: float = 1.0
    weight_decay: float = 0.0
    quant_bits: int = 8
    calibration_percentile: float = 99.999
    calibration_batches: int = 4
    quantize_model: bool = True
    seed: int = 0


@dataclass
class FinetuneResult:
    """Outcome of one fine-tuning run."""

    task_name: str
    model_name: str
    softmax_variant: str
    metric_name: str
    score: float
    loss_history: List[float] = field(default_factory=list)
    extra: Dict[str, float] = field(default_factory=dict)


def _compute_loss(model: TaskModel, batch: TaskBatch):
    """Forward pass + task-appropriate loss for one batch."""
    if model.task_type == "span":
        start_logits, end_logits = model(batch.input_ids, batch.attention_mask)
        return span_cross_entropy(start_logits, end_logits,
                                  batch.labels[:, 0], batch.labels[:, 1])
    outputs = model(batch.input_ids, batch.attention_mask)
    if model.task_type == "classification":
        return cross_entropy(outputs, batch.labels)
    return mse_loss(outputs, batch.labels)


def _train_epochs(model: TaskModel, task: TaskDataset, epochs: int, lr: float,
                  config: FinetuneConfig, rng: np.random.Generator) -> List[float]:
    """Run ``epochs`` of Adam training; returns the per-step loss history."""
    if epochs <= 0:
        return []
    optimizer = Adam(model.parameters(), lr=lr, weight_decay=config.weight_decay)
    steps_per_epoch = max(1, (len(task.train) + config.batch_size - 1) // config.batch_size)
    total_steps = epochs * steps_per_epoch
    schedule = LinearWarmupSchedule(
        optimizer,
        warmup_steps=int(config.warmup_fraction * total_steps),
        total_steps=total_steps,
    )
    history: List[float] = []
    model.train()
    for _ in range(epochs):
        for batch in task.train.batches(config.batch_size, shuffle=True, rng=rng):
            schedule.step()
            loss = _compute_loss(model, batch)
            model.zero_grad()
            loss.backward()
            clip_grad_norm(model.parameters(), config.max_grad_norm)
            optimizer.step()
            history.append(loss.item())
    return history


def _calibrate(model: TaskModel, task: TaskDataset, quantizers, config: FinetuneConfig,
               rng: np.random.Generator) -> None:
    """Collect activation statistics and freeze the quantization scales."""
    begin_calibration(quantizers)
    model.eval()
    batches_seen = 0
    for batch in task.train.batches(config.batch_size, shuffle=True, rng=rng):
        if model.task_type == "span":
            model(batch.input_ids, batch.attention_mask)
        else:
            model(batch.input_ids, batch.attention_mask)
        batches_seen += 1
        if batches_seen >= config.calibration_batches:
            break
    freeze_quantizers(quantizers)
    model.train()


def pretrain_task_model(task: TaskDataset, model_config: BertConfig,
                        config: Optional[FinetuneConfig] = None) -> TaskModel:
    """Phase 1: train a full-precision model with the reference softmax.

    The returned model stands in for the "pre-trained with standard softmax"
    starting point of the paper's recipe.
    """
    config = config or FinetuneConfig()
    rng = np.random.default_rng(config.seed)
    model = TaskModel(model_config, task, softmax_variant="reference", seed=config.seed)
    _train_epochs(model, task, config.pretrain_epochs, config.pretrain_lr, config, rng)
    return model


def finetune(task: TaskDataset, model_config: BertConfig,
             softmax_variant: str | SoftmaxVariant,
             config: Optional[FinetuneConfig] = None,
             pretrained_state: Optional[Dict[str, np.ndarray]] = None) -> FinetuneResult:
    """Run the full quantization-aware, softmax-aware fine-tuning recipe.

    Parameters
    ----------
    task:
        The downstream task (train + dev splits).
    model_config:
        Architecture of the encoder.
    softmax_variant:
        ``"reference"`` reproduces the paper's 8-bit quantized baseline,
        ``"softermax"`` the proposed scheme; any registered variant works.
    config:
        Training hyper-parameters.
    pretrained_state:
        Optional ``state_dict`` of a model produced by
        :func:`pretrain_task_model`; passing the same state to several calls
        guarantees all variants start from identical weights.

    Returns
    -------
    FinetuneResult
        Dev-set score (on the task's own metric) plus the loss history.
    """
    from repro.eval.accuracy import evaluate_model  # local import to avoid a cycle

    config = config or FinetuneConfig()
    rng = np.random.default_rng(config.seed + 1)

    model = TaskModel(model_config, task, softmax_variant="reference", seed=config.seed)
    if pretrained_state is not None:
        model.load_state_dict(pretrained_state)
    else:
        pretrain_rng = np.random.default_rng(config.seed)
        _train_epochs(model, task, config.pretrain_epochs, config.pretrain_lr,
                      config, pretrain_rng)

    # Quantization-aware phase: attach and calibrate 8-bit fake quantizers.
    if config.quantize_model:
        quantizers = attach_quantizers(
            model, num_bits=config.quant_bits,
            percentile=config.calibration_percentile,
        )
        _calibrate(model, task, quantizers, config, rng)

    # Switch the attention softmax to the requested variant and fine-tune.
    model.set_softmax_variant(softmax_variant)
    history = _train_epochs(model, task, config.finetune_epochs, config.finetune_lr,
                            config, rng)

    model.eval()
    score = evaluate_model(model, task)
    variant_name = softmax_variant if isinstance(softmax_variant, str) else softmax_variant.name
    return FinetuneResult(
        task_name=task.name,
        model_name=model_config.name,
        softmax_variant=variant_name,
        metric_name=task.metric,
        score=score,
        loss_history=history,
    )
