"""BERT-style encoder models and task heads.

Two uses:

* **Trainable surrogates** (``tiny_base`` / ``tiny_large``): small enough to
  fine-tune on the synthetic task suite with the NumPy substrate, while
  keeping the architectural knobs (relative depth/width, heads, dropout)
  that distinguish BERT-Base from BERT-Large.
* **Geometry descriptors** (``bert_base`` / ``bert_large``): the real
  published geometries, used by the hardware runtime/energy models to count
  operations for Figure 1 and Figure 5 (they are never instantiated as
  trainable models -- 340M parameters is not a NumPy-friendly size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.tasks import TaskDataset
from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Tensor,
    TransformerEncoder,
)
from repro.nn.functional import SoftmaxVariant


@dataclass(frozen=True)
class BertConfig:
    """Architecture hyper-parameters of a BERT-style encoder."""

    vocab_size: int
    hidden_dim: int
    num_layers: int
    num_heads: int
    intermediate_dim: int
    max_seq_len: int
    dropout: float = 0.1
    name: str = "bert"

    def __post_init__(self) -> None:
        if self.hidden_dim % self.num_heads != 0:
            raise ValueError("hidden_dim must be divisible by num_heads")

    @property
    def head_dim(self) -> int:
        return self.hidden_dim // self.num_heads

    # ------------------------------------------------------------------ #
    # published geometries (for the hardware cost models)
    # ------------------------------------------------------------------ #
    @classmethod
    def bert_base(cls, max_seq_len: int = 512, vocab_size: int = 30522) -> "BertConfig":
        return cls(vocab_size, 768, 12, 12, 3072, max_seq_len, name="bert-base")

    @classmethod
    def bert_large(cls, max_seq_len: int = 512, vocab_size: int = 30522) -> "BertConfig":
        return cls(vocab_size, 1024, 24, 16, 4096, max_seq_len, name="bert-large")

    # ------------------------------------------------------------------ #
    # trainable surrogates (for the accuracy experiments)
    # ------------------------------------------------------------------ #
    @classmethod
    def tiny_base(cls, vocab_size: int = 32, max_seq_len: int = 32) -> "BertConfig":
        """Surrogate for BERT-Base: 2 layers x 32 wide, 4 heads."""
        return cls(vocab_size, 32, 2, 4, 64, max_seq_len, dropout=0.05, name="tiny-base")

    @classmethod
    def tiny_large(cls, vocab_size: int = 32, max_seq_len: int = 32) -> "BertConfig":
        """Surrogate for BERT-Large: deeper and wider than ``tiny_base``."""
        return cls(vocab_size, 48, 3, 4, 96, max_seq_len, dropout=0.05, name="tiny-large")

    @classmethod
    def tiny_long(cls, vocab_size: int = 32,
                  max_seq_len: int = 32768) -> "BertConfig":
        """Long-context surrogate: ``tiny_base`` widths with one layer and a
        32k position table, sized for the chunked-attention benchmarks
        (dense attention at this length would need a 34 GB score matrix)."""
        return cls(vocab_size, 32, 1, 4, 64, max_seq_len, dropout=0.0,
                   name="tiny-long")

    def parameter_count_estimate(self) -> int:
        """Closed-form parameter count (embeddings + encoder), for reporting."""
        embed = (self.vocab_size + self.max_seq_len) * self.hidden_dim
        per_layer = (
            4 * self.hidden_dim * self.hidden_dim  # Q, K, V, output projections
            + 2 * self.hidden_dim * self.intermediate_dim  # FFN
            + 9 * self.hidden_dim  # biases + layer norms
            + self.intermediate_dim
        )
        return int(embed + self.num_layers * per_layer)


class BertEncoderModel(Module):
    """Token + position embeddings followed by a Transformer encoder stack."""

    #: Inference plans compiled from this model take token ids as input.
    plan_input_kind = "ids"

    def __init__(self, config: BertConfig,
                 softmax_variant: str | SoftmaxVariant = "reference",
                 kernel: str = "auto",
                 kernel_options: Optional[dict] = None,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.hidden_dim, rng=rng)
        self.position_embedding = Embedding(config.max_seq_len, config.hidden_dim, rng=rng)
        self.embedding_norm = LayerNorm(config.hidden_dim)
        self.embedding_dropout = Dropout(config.dropout, seed=seed)
        self.encoder = TransformerEncoder(
            num_layers=config.num_layers,
            hidden_dim=config.hidden_dim,
            num_heads=config.num_heads,
            intermediate_dim=config.intermediate_dim,
            dropout=config.dropout,
            softmax_variant=softmax_variant,
            kernel=kernel,
            kernel_options=kernel_options,
            seed=seed,
        )
        #: Compiled inference plans, keyed by ``(fuse_qkv, block_kv)``.
        #: Plans snapshot weights at compile time; both mutation entry
        #: points (``load_state_dict``, ``set_softmax_variant``) clear
        #: this cache so the next plan-engine call recompiles.
        self._plans: dict = {}

    def forward(self, input_ids: np.ndarray,
                attention_mask: Optional[np.ndarray] = None,
                exact_mask: bool = False,
                block_kv: Optional[int] = None) -> Tensor:
        input_ids = np.asarray(input_ids, dtype=np.int64)
        batch, seq_len = input_ids.shape
        if seq_len > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {seq_len} exceeds max_seq_len {self.config.max_seq_len}"
            )
        positions = np.broadcast_to(np.arange(seq_len), (batch, seq_len))
        hidden = self.token_embedding(input_ids) + self.position_embedding(positions)
        hidden = self.embedding_dropout(self.embedding_norm(hidden))
        return self.encoder(hidden, attention_mask, exact_mask=exact_mask,
                            block_kv=block_kv)

    # ------------------------------------------------------------------ #
    # inference engines (graph vs compiled plan)
    # ------------------------------------------------------------------ #
    def export_plan(self, builder, ids_reg: str = "input_ids",
                    fuse_qkv: bool = False,
                    block_kv: Optional[int] = None) -> str:
        """Emit embeddings + encoder onto a plan builder (see
        :class:`repro.infer.InferencePlan`)."""
        from repro.nn.functional import embedding_infer

        token_weight = self.token_embedding.plan_weight()
        position_weight = self.position_embedding.plan_weight()
        hidden_dim = self.config.hidden_dim
        builder.meta.update(vocab_size=self.config.vocab_size,
                            max_seq_len=self.config.max_seq_len,
                            hidden_dim=hidden_dim)
        embed_reg = builder.reg("embeddings")

        def embed_op(ctx) -> None:
            ids = ctx.regs[ids_reg]
            batch, seq_len = ids.shape
            tokens = ctx.acquire((batch, seq_len, hidden_dim))
            embedding_infer(token_weight, ids, out=tokens)
            positions = ctx.acquire((batch, seq_len, hidden_dim))
            position_ids = np.broadcast_to(np.arange(seq_len),
                                           (batch, seq_len))
            embedding_infer(position_weight, position_ids, out=positions)
            np.add(tokens, positions, out=tokens)
            ctx.arena.release(positions)
            ctx.put(embed_reg, tokens)

        builder.emit("embeddings", embed_op)
        normed_reg = self.embedding_norm.export_plan(builder, embed_reg,
                                                     "embedding_norm")
        builder.emit_release("embeddings.free", embed_reg)
        # embedding_dropout is the identity in eval mode (plan semantics).
        return self.encoder.export_plan(builder, normed_reg,
                                        prefix="encoder", fuse_qkv=fuse_qkv,
                                        block_kv=block_kv)

    def inference_plan(self, fuse_qkv: bool = False,
                       block_kv: Optional[int] = None,
                       refresh: bool = False):
        """The cached compiled plan for this model (compile on first use).

        Plans snapshot weights, quantizer scales and the softmax variant
        at compile time and are keyed by their compile options
        (``fuse_qkv``, ``block_kv``); ``load_state_dict`` and
        ``set_softmax_variant`` invalidate the cache, other mutations
        (e.g. attaching quantizers) need ``refresh=True``.

        Tolerance: the default plan (fuse_qkv=False, block_kv=None) is
        bitwise vs the graph forward; either opt-in inherits the
        corresponding contract in
        :meth:`~repro.infer.plan.InferencePlan.from_model`.
        """
        from repro.infer import InferencePlan

        if refresh:
            # A mutation invalidates every snapshot, not just the one the
            # caller happens to ask for first.
            self._plans.clear()
        key = (bool(fuse_qkv), block_kv)
        plan = self._plans.get(key)
        if plan is None:
            plan = InferencePlan.from_model(self, fuse_qkv=fuse_qkv,
                                            block_kv=block_kv)
            self._plans[key] = plan
        return plan

    def encode(self, input_ids: np.ndarray,
               attention_mask: Optional[np.ndarray] = None,
               engine: str = "graph", fuse_qkv: bool = False,
               block_kv: Optional[int] = None) -> np.ndarray:
        """Eval-mode forward returning a raw hidden-state array.

        ``engine="graph"`` runs the autograd Tensor path;
        ``engine="plan"`` runs the compiled graph-free plan, which is
        bitwise identical (``fuse_qkv=True`` swaps in the fused Q/K/V
        projection -- mathematically equal, not bit-guaranteed).

        ``block_kv`` opts into chunked O(block)-memory attention (see
        :func:`repro.nn.functional.chunked_masked_attention` for the
        tolerance contract).  It switches masking to the *exact* scheme: a
        provided ``attention_mask`` must then be a right-padded 0/1 prefix
        mask, and with no mask the full sequence is attended.  Graph and
        plan engines stay bitwise identical to each other under
        ``block_kv``.
        """
        if engine == "graph":
            if block_kv is None:
                return self.forward(input_ids, attention_mask).data
            return self.forward(input_ids, attention_mask,
                                exact_mask=attention_mask is not None,
                                block_kv=block_kv).data
        if engine == "plan":
            if self.training:
                raise RuntimeError(
                    "the plan engine replays eval-mode semantics; call "
                    "eval() first")
            plan = self.inference_plan(fuse_qkv=fuse_qkv, block_kv=block_kv)
            if block_kv is not None and attention_mask is not None:
                # Chunked plans reject additive masks; a prefix mask rides
                # the exact-mask ragged entry point instead (np.array
                # detaches the arena buffer under the plan lock).
                return plan.run_ragged(input_ids, attention_mask,
                                       extract=np.array)
            return plan.run(input_ids, attention_mask)
        raise ValueError(
            f"unknown inference engine {engine!r}; choose 'graph' or 'plan'")

    def encode_ragged(self, sequences, pad_id: int = 0,
                      engine: str = "graph", fuse_qkv: bool = False,
                      block_kv: Optional[int] = None) -> list:
        """Encode a batch of variable-length token sequences in one pass.

        The serving entry point: sequences are padded to the longest length
        in the batch, run through the encoder as a single batched forward
        with *exact* attention masking (padded keys carry exactly zero
        probability, each sequence's softmax runs over only its valid
        prefix), and the per-sequence hidden states are sliced back out.

        Because every per-token operation is row-independent and the exact
        mask excludes padding from the attention reduction, the returned
        hidden states are **bitwise identical** to encoding each sequence
        alone -- coalescing requests into a batch is a pure throughput
        optimization.  Requires eval mode (the autograd-free masked
        attention path).

        ``engine`` selects the forward implementation: ``"graph"`` (the
        autograd Tensor path) or ``"plan"`` (the compiled graph-free fast
        path, bitwise identical; the serving layer defaults to it).

        ``block_kv`` opts into chunked O(block)-memory attention for long
        sequences.  Chunked length groups follow the documented tolerance
        contract of :func:`repro.nn.functional.chunked_masked_attention`
        instead of being bitwise-equal to the dense path -- but chunking
        depends only on a sequence's own length group, so batching remains
        bit-transparent (solo vs coalesced results stay identical).

        Returns a list of ``(length_i, hidden_dim)`` float64 arrays, one per
        input sequence.
        """
        if self.training:
            raise RuntimeError(
                "encode_ragged is an inference entry point; call eval() first")
        if engine not in ("graph", "plan"):
            raise ValueError(
                f"unknown inference engine {engine!r}; choose 'graph' or "
                "'plan'")
        if len(sequences) == 0:
            return []
        lengths = [len(seq) for seq in sequences]
        if min(lengths) < 1:
            raise ValueError("every sequence must contain at least one token")
        if max(lengths) > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {max(lengths)} exceeds max_seq_len "
                f"{self.config.max_seq_len}")
        # Pad width floor of 2: a width-1 batch would route the per-token
        # GEMMs through BLAS's single-row (gemv) path, whose accumulation
        # differs from the gemm path used at any other width -- which would
        # break bitwise transparency between a solo length-1 request and the
        # same request inside a wider batch.
        max_len = max(2, *lengths)
        batch = len(sequences)
        input_ids = np.full((batch, max_len), pad_id, dtype=np.int64)
        mask = np.zeros((batch, max_len), dtype=np.float64)
        for i, seq in enumerate(sequences):
            input_ids[i, :lengths[i]] = np.asarray(seq, dtype=np.int64)
            mask[i, :lengths[i]] = 1.0
        def slices(hidden: np.ndarray) -> list:
            return [np.array(hidden[i, :length]) for i, length in
                    enumerate(lengths)]

        if engine == "plan":
            # run_ragged applies ``slices`` to the arena output buffer
            # while still holding the plan's execution lock, so the copies
            # can never race a concurrent execution recycling the buffer.
            return self.inference_plan(
                fuse_qkv=fuse_qkv, block_kv=block_kv).run_ragged(
                input_ids, mask, extract=slices)
        return slices(self.forward(input_ids, mask, exact_mask=True,
                                   block_kv=block_kv).data)

    def _on_state_loaded(self) -> None:
        """Invalidate compiled plans after any state-dict load (fires even
        when the load happens on a wrapper module, e.g. ``TaskModel``)."""
        self._plans.clear()

    def set_softmax_variant(self, variant: str | SoftmaxVariant,
                            kernel: str = "auto",
                            kernel_options: Optional[dict] = None) -> None:
        """Switch the attention softmax of every encoder layer."""
        self.encoder.set_softmax_variant(variant, kernel=kernel,
                                        kernel_options=kernel_options)
        self._plans.clear()


class ClassificationHead(Module):
    """[CLS] pooling followed by a linear classifier."""

    def __init__(self, hidden_dim: int, num_classes: int, dropout: float = 0.1,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.dropout = Dropout(dropout, seed=seed)
        self.pooler = Linear(hidden_dim, hidden_dim, rng=rng)
        self.classifier = Linear(hidden_dim, num_classes, rng=rng)

    def forward(self, hidden: Tensor) -> Tensor:
        cls = hidden[:, 0, :]
        pooled = self.pooler(cls).tanh()
        return self.classifier(self.dropout(pooled))


class RegressionHead(Module):
    """[CLS] pooling followed by a single-output regressor (STS-B style)."""

    def __init__(self, hidden_dim: int, dropout: float = 0.1,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.dropout = Dropout(dropout, seed=seed)
        self.pooler = Linear(hidden_dim, hidden_dim, rng=rng)
        self.regressor = Linear(hidden_dim, 1, rng=rng)

    def forward(self, hidden: Tensor) -> Tensor:
        cls = hidden[:, 0, :]
        pooled = self.pooler(cls).tanh()
        out = self.regressor(self.dropout(pooled))
        return out.reshape(out.shape[0])


class SpanHead(Module):
    """Per-position start/end logits for extractive QA (SQuAD style)."""

    def __init__(self, hidden_dim: int, seed: Optional[int] = None) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.span_logits = Linear(hidden_dim, 2, rng=rng)

    def forward(self, hidden: Tensor,
                attention_mask: Optional[np.ndarray] = None) -> tuple:
        logits = self.span_logits(hidden)  # (batch, seq, 2)
        start_logits = logits[:, :, 0]
        end_logits = logits[:, :, 1]
        if attention_mask is not None:
            penalty = Tensor((1.0 - np.asarray(attention_mask, dtype=np.float64)) * (-30.0))
            start_logits = start_logits + penalty
            end_logits = end_logits + penalty
        return start_logits, end_logits


class TaskModel(Module):
    """Encoder plus the head appropriate to a task (classification/regression/span)."""

    def __init__(self, config: BertConfig, task: TaskDataset,
                 softmax_variant: str | SoftmaxVariant = "reference",
                 kernel: str = "auto",
                 kernel_options: Optional[dict] = None,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        self.config = config
        self.task_type = task.task_type
        self.encoder_model = BertEncoderModel(config, softmax_variant,
                                              kernel=kernel,
                                              kernel_options=kernel_options,
                                              seed=seed)
        if task.task_type == "classification":
            self.head = ClassificationHead(config.hidden_dim, task.num_classes,
                                           dropout=config.dropout, seed=seed)
        elif task.task_type == "regression":
            self.head = RegressionHead(config.hidden_dim, dropout=config.dropout, seed=seed)
        elif task.task_type == "span":
            self.head = SpanHead(config.hidden_dim, seed=seed)
        else:
            raise ValueError(f"unsupported task type {task.task_type!r}")

    def forward(self, input_ids: np.ndarray, attention_mask: Optional[np.ndarray] = None):
        hidden = self.encoder_model(input_ids, attention_mask)
        if self.task_type == "span":
            return self.head(hidden, attention_mask)
        return self.head(hidden)

    def set_softmax_variant(self, variant: str | SoftmaxVariant,
                            kernel: str = "auto",
                            kernel_options: Optional[dict] = None) -> None:
        self.encoder_model.set_softmax_variant(variant, kernel=kernel,
                                               kernel_options=kernel_options)
