"""BERT-style encoder models and task heads.

Two uses:

* **Trainable surrogates** (``tiny_base`` / ``tiny_large``): small enough to
  fine-tune on the synthetic task suite with the NumPy substrate, while
  keeping the architectural knobs (relative depth/width, heads, dropout)
  that distinguish BERT-Base from BERT-Large.
* **Geometry descriptors** (``bert_base`` / ``bert_large``): the real
  published geometries, used by the hardware runtime/energy models to count
  operations for Figure 1 and Figure 5 (they are never instantiated as
  trainable models -- 340M parameters is not a NumPy-friendly size).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.tasks import TaskDataset
from repro.nn import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Tensor,
    TransformerEncoder,
)
from repro.nn.functional import SoftmaxVariant


@dataclass(frozen=True)
class BertConfig:
    """Architecture hyper-parameters of a BERT-style encoder."""

    vocab_size: int
    hidden_dim: int
    num_layers: int
    num_heads: int
    intermediate_dim: int
    max_seq_len: int
    dropout: float = 0.1
    name: str = "bert"

    def __post_init__(self) -> None:
        if self.hidden_dim % self.num_heads != 0:
            raise ValueError("hidden_dim must be divisible by num_heads")

    @property
    def head_dim(self) -> int:
        return self.hidden_dim // self.num_heads

    # ------------------------------------------------------------------ #
    # published geometries (for the hardware cost models)
    # ------------------------------------------------------------------ #
    @classmethod
    def bert_base(cls, max_seq_len: int = 512, vocab_size: int = 30522) -> "BertConfig":
        return cls(vocab_size, 768, 12, 12, 3072, max_seq_len, name="bert-base")

    @classmethod
    def bert_large(cls, max_seq_len: int = 512, vocab_size: int = 30522) -> "BertConfig":
        return cls(vocab_size, 1024, 24, 16, 4096, max_seq_len, name="bert-large")

    # ------------------------------------------------------------------ #
    # trainable surrogates (for the accuracy experiments)
    # ------------------------------------------------------------------ #
    @classmethod
    def tiny_base(cls, vocab_size: int = 32, max_seq_len: int = 32) -> "BertConfig":
        """Surrogate for BERT-Base: 2 layers x 32 wide, 4 heads."""
        return cls(vocab_size, 32, 2, 4, 64, max_seq_len, dropout=0.05, name="tiny-base")

    @classmethod
    def tiny_large(cls, vocab_size: int = 32, max_seq_len: int = 32) -> "BertConfig":
        """Surrogate for BERT-Large: deeper and wider than ``tiny_base``."""
        return cls(vocab_size, 48, 3, 4, 96, max_seq_len, dropout=0.05, name="tiny-large")

    def parameter_count_estimate(self) -> int:
        """Closed-form parameter count (embeddings + encoder), for reporting."""
        embed = (self.vocab_size + self.max_seq_len) * self.hidden_dim
        per_layer = (
            4 * self.hidden_dim * self.hidden_dim  # Q, K, V, output projections
            + 2 * self.hidden_dim * self.intermediate_dim  # FFN
            + 9 * self.hidden_dim  # biases + layer norms
            + self.intermediate_dim
        )
        return int(embed + self.num_layers * per_layer)


class BertEncoderModel(Module):
    """Token + position embeddings followed by a Transformer encoder stack."""

    def __init__(self, config: BertConfig,
                 softmax_variant: str | SoftmaxVariant = "reference",
                 kernel: str = "auto",
                 kernel_options: Optional[dict] = None,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.hidden_dim, rng=rng)
        self.position_embedding = Embedding(config.max_seq_len, config.hidden_dim, rng=rng)
        self.embedding_norm = LayerNorm(config.hidden_dim)
        self.embedding_dropout = Dropout(config.dropout, seed=seed)
        self.encoder = TransformerEncoder(
            num_layers=config.num_layers,
            hidden_dim=config.hidden_dim,
            num_heads=config.num_heads,
            intermediate_dim=config.intermediate_dim,
            dropout=config.dropout,
            softmax_variant=softmax_variant,
            kernel=kernel,
            kernel_options=kernel_options,
            seed=seed,
        )

    def forward(self, input_ids: np.ndarray,
                attention_mask: Optional[np.ndarray] = None,
                exact_mask: bool = False) -> Tensor:
        input_ids = np.asarray(input_ids, dtype=np.int64)
        batch, seq_len = input_ids.shape
        if seq_len > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {seq_len} exceeds max_seq_len {self.config.max_seq_len}"
            )
        positions = np.broadcast_to(np.arange(seq_len), (batch, seq_len))
        hidden = self.token_embedding(input_ids) + self.position_embedding(positions)
        hidden = self.embedding_dropout(self.embedding_norm(hidden))
        return self.encoder(hidden, attention_mask, exact_mask=exact_mask)

    def encode_ragged(self, sequences, pad_id: int = 0) -> list:
        """Encode a batch of variable-length token sequences in one pass.

        The serving entry point: sequences are padded to the longest length
        in the batch, run through the encoder as a single batched forward
        with *exact* attention masking (padded keys carry exactly zero
        probability, each sequence's softmax runs over only its valid
        prefix), and the per-sequence hidden states are sliced back out.

        Because every per-token operation is row-independent and the exact
        mask excludes padding from the attention reduction, the returned
        hidden states are **bitwise identical** to encoding each sequence
        alone -- coalescing requests into a batch is a pure throughput
        optimization.  Requires eval mode (the autograd-free masked
        attention path).

        Returns a list of ``(length_i, hidden_dim)`` float64 arrays, one per
        input sequence.
        """
        if self.training:
            raise RuntimeError(
                "encode_ragged is an inference entry point; call eval() first")
        if len(sequences) == 0:
            return []
        lengths = [len(seq) for seq in sequences]
        if min(lengths) < 1:
            raise ValueError("every sequence must contain at least one token")
        if max(lengths) > self.config.max_seq_len:
            raise ValueError(
                f"sequence length {max(lengths)} exceeds max_seq_len "
                f"{self.config.max_seq_len}")
        # Pad width floor of 2: a width-1 batch would route the per-token
        # GEMMs through BLAS's single-row (gemv) path, whose accumulation
        # differs from the gemm path used at any other width -- which would
        # break bitwise transparency between a solo length-1 request and the
        # same request inside a wider batch.
        max_len = max(2, *lengths)
        batch = len(sequences)
        input_ids = np.full((batch, max_len), pad_id, dtype=np.int64)
        mask = np.zeros((batch, max_len), dtype=np.float64)
        for i, seq in enumerate(sequences):
            input_ids[i, :lengths[i]] = np.asarray(seq, dtype=np.int64)
            mask[i, :lengths[i]] = 1.0
        hidden = self.forward(input_ids, mask, exact_mask=True).data
        return [np.array(hidden[i, :length]) for i, length in
                enumerate(lengths)]

    def set_softmax_variant(self, variant: str | SoftmaxVariant,
                            kernel: str = "auto",
                            kernel_options: Optional[dict] = None) -> None:
        """Switch the attention softmax of every encoder layer."""
        self.encoder.set_softmax_variant(variant, kernel=kernel,
                                        kernel_options=kernel_options)


class ClassificationHead(Module):
    """[CLS] pooling followed by a linear classifier."""

    def __init__(self, hidden_dim: int, num_classes: int, dropout: float = 0.1,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.dropout = Dropout(dropout, seed=seed)
        self.pooler = Linear(hidden_dim, hidden_dim, rng=rng)
        self.classifier = Linear(hidden_dim, num_classes, rng=rng)

    def forward(self, hidden: Tensor) -> Tensor:
        cls = hidden[:, 0, :]
        pooled = self.pooler(cls).tanh()
        return self.classifier(self.dropout(pooled))


class RegressionHead(Module):
    """[CLS] pooling followed by a single-output regressor (STS-B style)."""

    def __init__(self, hidden_dim: int, dropout: float = 0.1,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.dropout = Dropout(dropout, seed=seed)
        self.pooler = Linear(hidden_dim, hidden_dim, rng=rng)
        self.regressor = Linear(hidden_dim, 1, rng=rng)

    def forward(self, hidden: Tensor) -> Tensor:
        cls = hidden[:, 0, :]
        pooled = self.pooler(cls).tanh()
        out = self.regressor(self.dropout(pooled))
        return out.reshape(out.shape[0])


class SpanHead(Module):
    """Per-position start/end logits for extractive QA (SQuAD style)."""

    def __init__(self, hidden_dim: int, seed: Optional[int] = None) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.span_logits = Linear(hidden_dim, 2, rng=rng)

    def forward(self, hidden: Tensor,
                attention_mask: Optional[np.ndarray] = None) -> tuple:
        logits = self.span_logits(hidden)  # (batch, seq, 2)
        start_logits = logits[:, :, 0]
        end_logits = logits[:, :, 1]
        if attention_mask is not None:
            penalty = Tensor((1.0 - np.asarray(attention_mask, dtype=np.float64)) * (-30.0))
            start_logits = start_logits + penalty
            end_logits = end_logits + penalty
        return start_logits, end_logits


class TaskModel(Module):
    """Encoder plus the head appropriate to a task (classification/regression/span)."""

    def __init__(self, config: BertConfig, task: TaskDataset,
                 softmax_variant: str | SoftmaxVariant = "reference",
                 kernel: str = "auto",
                 kernel_options: Optional[dict] = None,
                 seed: Optional[int] = None) -> None:
        super().__init__()
        self.config = config
        self.task_type = task.task_type
        self.encoder_model = BertEncoderModel(config, softmax_variant,
                                              kernel=kernel,
                                              kernel_options=kernel_options,
                                              seed=seed)
        if task.task_type == "classification":
            self.head = ClassificationHead(config.hidden_dim, task.num_classes,
                                           dropout=config.dropout, seed=seed)
        elif task.task_type == "regression":
            self.head = RegressionHead(config.hidden_dim, dropout=config.dropout, seed=seed)
        elif task.task_type == "span":
            self.head = SpanHead(config.hidden_dim, seed=seed)
        else:
            raise ValueError(f"unsupported task type {task.task_type!r}")

    def forward(self, input_ids: np.ndarray, attention_mask: Optional[np.ndarray] = None):
        hidden = self.encoder_model(input_ids, attention_mask)
        if self.task_type == "span":
            return self.head(hidden, attention_mask)
        return self.head(hidden)

    def set_softmax_variant(self, variant: str | SoftmaxVariant,
                            kernel: str = "auto",
                            kernel_options: Optional[dict] = None) -> None:
        self.encoder_model.set_softmax_variant(variant, kernel=kernel,
                                               kernel_options=kernel_options)
