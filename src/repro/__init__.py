"""Softermax reproduction library.

This package reproduces *Softermax: Hardware/Software Co-Design of an
Efficient Softmax for Transformers* (DAC 2021).  It provides:

* ``repro.core`` -- the Softermax algorithm family (base-2 softmax, online
  normalization, fixed-point linear-piecewise power-of-two and reciprocal
  units) together with reference softmax implementations.
* ``repro.kernels`` -- the softmax kernel engine: a fused whole-tensor
  Softermax bitwise-identical to the slice-loop pipeline, and a named
  registry with ``"auto"`` selection used across the stack.
* ``repro.fixedpoint`` -- a Q-format fixed-point arithmetic substrate.
* ``repro.quant`` -- 8-bit integer quantization and quantization-aware
  training utilities (percentile calibration, straight-through estimator).
* ``repro.nn`` -- a NumPy reverse-mode autograd substrate with Transformer
  layers and a pluggable attention softmax.
* ``repro.infer`` -- the graph-free inference engine: compiled op-list
  plans with workspace-arena buffer reuse, bitwise identical to the
  autograd forward (the serving fast path).
* ``repro.serving`` -- the dynamic-batching inference service (micro
  batcher, LRU response cache, latency stats, loadtest harness).
* ``repro.models`` -- BERT-style encoder models, task heads and the
  Softermax-aware fine-tuning loop.
* ``repro.data`` -- synthetic surrogate tasks standing in for SQuAD/GLUE.
* ``repro.hardware`` -- analytic area/energy/runtime cost models for the
  Softermax hardware units, a DesignWare-style FP16 baseline and a
  MAGNet-style processing element.
* ``repro.eval`` -- metrics, accuracy pipelines and sweep drivers.
* ``repro.reporting`` -- paper-style tables and figure series.

Quickstart::

    import numpy as np
    from repro.core import softermax, SoftermaxConfig

    scores = np.random.randn(4, 128).astype(np.float64)
    probs = softermax(scores, axis=-1)
    assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-2)
"""

from repro.core import (
    SoftermaxConfig,
    softermax,
    softmax_reference,
    base2_softmax,
    online_softmax,
)
from repro.kernels import fused_softermax, resolve_kernel, available_kernels

__version__ = "1.1.0"

__all__ = [
    "SoftermaxConfig",
    "softermax",
    "softmax_reference",
    "base2_softmax",
    "online_softmax",
    "fused_softermax",
    "resolve_kernel",
    "available_kernels",
    "__version__",
]
