"""8-bit integer quantization and quantization-aware training utilities."""

from repro.quant.calibrator import (
    Calibrator,
    MaxCalibrator,
    PercentileCalibrator,
    calibrate_tensors,
)
from repro.quant.quantizer import (
    QuantParams,
    compute_scale,
    quantize_array,
    dequantize_array,
    fake_quantize_array,
    quantization_error,
)
from repro.quant.qat import (
    FakeQuantizer,
    attach_quantizers,
    begin_calibration,
    freeze_quantizers,
    detach_quantizers,
)

__all__ = [
    "Calibrator",
    "MaxCalibrator",
    "PercentileCalibrator",
    "calibrate_tensors",
    "QuantParams",
    "compute_scale",
    "quantize_array",
    "dequantize_array",
    "fake_quantize_array",
    "quantization_error",
    "FakeQuantizer",
    "attach_quantizers",
    "begin_calibration",
    "freeze_quantizers",
    "detach_quantizers",
]
