"""Calibration of quantization scale factors.

The paper's software setup uses a 99.999th-percentile calibrator to derive
the scale factors for 8-bit quantization-aware fine-tuning (its reference
[22], NVIDIA's integer-quantization recipe).  This module provides that
calibrator plus a simple max calibrator, both operating on streaming batches
so they can be driven by a few forward passes over the task data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np


class Calibrator:
    """Base class: observe batches of values, then produce an ``amax``."""

    def observe(self, values: np.ndarray) -> None:
        raise NotImplementedError

    def compute_amax(self) -> float:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


@dataclass
class MaxCalibrator(Calibrator):
    """Tracks the running absolute maximum of everything observed."""

    amax: float = 0.0
    observed: bool = False

    def observe(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        self.amax = max(self.amax, float(np.abs(values).max()))
        self.observed = True

    def compute_amax(self) -> float:
        if not self.observed:
            raise RuntimeError("MaxCalibrator.compute_amax() called before any observation")
        return self.amax

    def reset(self) -> None:
        self.amax = 0.0
        self.observed = False


@dataclass
class PercentileCalibrator(Calibrator):
    """Percentile calibrator (99.999 % by default, as in the paper).

    A histogram of absolute values is accumulated across batches; the scale
    is the histogram value below which ``percentile`` per cent of the
    observations fall.  A histogram (rather than storing samples) keeps the
    memory bounded no matter how much data is observed.
    """

    percentile: float = 99.999
    num_bins: int = 2048
    _histogram: np.ndarray = field(default=None, repr=False)
    _bin_width: float = 0.0
    _observed: bool = False

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile <= 100.0:
            raise ValueError("percentile must be in (0, 100]")
        if self.num_bins < 2:
            raise ValueError("num_bins must be >= 2")
        self.reset()

    def reset(self) -> None:
        self._histogram = np.zeros(self.num_bins, dtype=np.float64)
        self._bin_width = 0.0
        self._observed = False

    def observe(self, values: np.ndarray) -> None:
        values = np.abs(np.asarray(values, dtype=np.float64)).reshape(-1)
        if values.size == 0:
            return
        batch_max = float(values.max())
        if batch_max == 0.0:
            self._observed = True
            return

        current_max = self._bin_width * self.num_bins
        if batch_max > current_max:
            self._rescale(batch_max)
        indices = np.minimum(
            (values / self._bin_width).astype(np.int64), self.num_bins - 1
        )
        np.add.at(self._histogram, indices, 1.0)
        self._observed = True

    def _rescale(self, new_max: float) -> None:
        """Grow the histogram range to cover ``new_max``, preserving counts."""
        new_bin_width = new_max / self.num_bins
        if self._bin_width == 0.0:
            self._bin_width = new_bin_width
            return
        old_centers = (np.arange(self.num_bins) + 0.5) * self._bin_width
        new_indices = np.minimum(
            (old_centers / new_bin_width).astype(np.int64), self.num_bins - 1
        )
        new_hist = np.zeros(self.num_bins, dtype=np.float64)
        np.add.at(new_hist, new_indices, self._histogram)
        self._histogram = new_hist
        self._bin_width = new_bin_width

    def compute_amax(self) -> float:
        if not self._observed:
            raise RuntimeError(
                "PercentileCalibrator.compute_amax() called before any observation"
            )
        total = self._histogram.sum()
        if total == 0.0:
            return 0.0
        cumulative = np.cumsum(self._histogram) / total
        target = self.percentile / 100.0
        bin_index = int(np.searchsorted(cumulative, target))
        bin_index = min(bin_index, self.num_bins - 1)
        return float((bin_index + 1) * self._bin_width)


def calibrate_tensors(tensors: List[np.ndarray], percentile: float = 99.999) -> float:
    """Convenience: run a percentile calibrator over a list of arrays."""
    calibrator = PercentileCalibrator(percentile=percentile)
    for tensor in tensors:
        calibrator.observe(tensor)
    return calibrator.compute_amax()
