"""Integer (affine/symmetric) quantization of NumPy arrays.

These are the plain (non-autograd) quantization primitives: map a float
array to ``num_bits`` integers with a scale (and optionally a zero point),
and back.  They are used directly by tests and the hardware energy model,
and wrapped with a straight-through estimator for training in
:mod:`repro.quant.qat`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantParams:
    """Scale/zero-point pair describing an integer quantization."""

    scale: float
    zero_point: int = 0
    num_bits: int = 8
    symmetric: bool = True

    @property
    def qmin(self) -> int:
        if self.symmetric:
            return -(2 ** (self.num_bits - 1)) + 1
        return 0

    @property
    def qmax(self) -> int:
        if self.symmetric:
            return 2 ** (self.num_bits - 1) - 1
        return 2**self.num_bits - 1


def compute_scale(amax: float, num_bits: int = 8, symmetric: bool = True) -> QuantParams:
    """Derive quantization parameters from an absolute-maximum value."""
    if amax < 0:
        raise ValueError("amax must be non-negative")
    if num_bits < 2:
        raise ValueError("num_bits must be >= 2")
    if amax == 0.0:
        return QuantParams(scale=1.0, num_bits=num_bits, symmetric=symmetric)
    if symmetric:
        qmax = 2 ** (num_bits - 1) - 1
        return QuantParams(scale=amax / qmax, num_bits=num_bits, symmetric=True)
    qmax = 2**num_bits - 1
    return QuantParams(scale=amax / qmax, num_bits=num_bits, symmetric=False)


def quantize_array(values: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantize to integer codes (int64) with saturation."""
    values = np.asarray(values, dtype=np.float64)
    codes = np.round(values / params.scale) + params.zero_point
    return np.clip(codes, params.qmin, params.qmax).astype(np.int64)


def dequantize_array(codes: np.ndarray, params: QuantParams) -> np.ndarray:
    """Map integer codes back to real values."""
    codes = np.asarray(codes, dtype=np.float64)
    return (codes - params.zero_point) * params.scale


def fake_quantize_array(values: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantize-then-dequantize (the forward of quantization-aware training)."""
    return dequantize_array(quantize_array(values, params), params)


def quantization_error(values: np.ndarray, params: QuantParams) -> float:
    """RMS error introduced by fake-quantizing ``values``."""
    values = np.asarray(values, dtype=np.float64)
    fq = fake_quantize_array(values, params)
    return float(np.sqrt(np.mean((values - fq) ** 2)))
