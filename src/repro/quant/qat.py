"""Quantization-aware training (QAT) with straight-through estimators.

The paper's accuracy baseline is an 8-bit quantized BERT: weights and
activations are fake-quantized during fine-tuning, with scale factors from a
99.999th-percentile calibrator and STE gradients.  :class:`FakeQuantizer`
implements that recipe on top of the autograd :class:`~repro.nn.Tensor`, and
:func:`attach_quantizers` wires quantizers into every ``Linear`` layer of a
model.  Softermax's own fixed-point formats are handled separately inside
:mod:`repro.core`; this module covers the *rest* of the network so that the
baseline and Softermax runs differ only in their attention softmax.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.layers import Linear, Module
from repro.nn.tensor import Tensor
from repro.quant.calibrator import Calibrator, MaxCalibrator, PercentileCalibrator
from repro.quant.quantizer import QuantParams, compute_scale, fake_quantize_array


class FakeQuantizer:
    """Stateful fake-quantization node with calibration and STE gradients.

    Lifecycle::

        q = FakeQuantizer(num_bits=8)
        q.enable_calibration()
        ... run forward passes; q.observe() collects statistics ...
        q.freeze()            # compute the scale from the calibrator
        ... further forward passes fake-quantize with STE gradients ...

    The quantizer is callable on either a plain array or an autograd
    :class:`Tensor`; in the latter case the backward pass uses the
    straight-through estimator (gradients pass through unchanged inside the
    clipping range and are zeroed outside it).
    """

    def __init__(self, num_bits: int = 8, symmetric: bool = True,
                 percentile: Optional[float] = 99.999,
                 name: str = "") -> None:
        self.num_bits = num_bits
        self.symmetric = symmetric
        self.name = name
        if percentile is None:
            self.calibrator: Calibrator = MaxCalibrator()
        else:
            self.calibrator = PercentileCalibrator(percentile=percentile)
        self.params: Optional[QuantParams] = None
        self.calibrating = False
        self.enabled = True

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def enable_calibration(self) -> None:
        """Start collecting statistics; quantization is bypassed meanwhile."""
        self.calibrating = True
        self.calibrator.reset()

    def freeze(self) -> QuantParams:
        """Stop calibrating and derive the quantization parameters."""
        amax = self.calibrator.compute_amax()
        self.params = compute_scale(amax, self.num_bits, self.symmetric)
        self.calibrating = False
        return self.params

    def set_amax(self, amax: float) -> QuantParams:
        """Set the scale directly (bypassing calibration), e.g. in tests."""
        self.params = compute_scale(amax, self.num_bits, self.symmetric)
        self.calibrating = False
        return self.params

    # ------------------------------------------------------------------ #
    # application
    # ------------------------------------------------------------------ #
    def __call__(self, value):
        if isinstance(value, Tensor):
            return self._apply_tensor(value)
        return self._apply_array(np.asarray(value, dtype=np.float64))

    def _apply_array(self, values: np.ndarray) -> np.ndarray:
        if not self.enabled:
            return values
        if self.calibrating:
            self.calibrator.observe(values)
            return values
        if self.params is None:
            return values
        return fake_quantize_array(values, self.params)

    def _apply_tensor(self, tensor: Tensor) -> Tensor:
        if not self.enabled:
            return tensor
        if self.calibrating:
            self.calibrator.observe(tensor.data)
            return tensor
        if self.params is None:
            return tensor

        params = self.params
        clip_lo = (params.qmin - params.zero_point) * params.scale
        clip_hi = (params.qmax - params.zero_point) * params.scale

        def forward_fn(data: np.ndarray) -> np.ndarray:
            return fake_quantize_array(data, params)

        def backward_fn(grad_out: np.ndarray, input_data: np.ndarray,
                        output_data: np.ndarray) -> np.ndarray:
            # Straight-through estimator: pass gradients inside the
            # representable range, zero them where the value saturated.
            inside = (input_data >= clip_lo) & (input_data <= clip_hi)
            return grad_out * inside

        return tensor.apply(forward_fn, backward_fn)

    def __repr__(self) -> str:
        state = "calibrating" if self.calibrating else (
            "frozen" if self.params is not None else "unconfigured"
        )
        return f"FakeQuantizer(bits={self.num_bits}, {state}, name={self.name!r})"


def attach_quantizers(model: Module, num_bits: int = 8,
                      percentile: Optional[float] = 99.999,
                      quantize_weights: bool = True,
                      quantize_activations: bool = True) -> Dict[str, FakeQuantizer]:
    """Attach fake quantizers to every :class:`Linear` layer of ``model``.

    Returns a dict of all created quantizers keyed by
    ``"<module path>.weight"`` / ``"<module path>.input"`` so callers can
    drive the calibrate/freeze lifecycle.
    """
    quantizers: Dict[str, FakeQuantizer] = {}
    for path, module in model.named_modules():
        if not isinstance(module, Linear):
            continue
        if quantize_weights:
            wq = FakeQuantizer(num_bits, percentile=None, name=f"{path}.weight")
            # Weight ranges are static, so a max calibrator is exact; the
            # percentile calibrator is reserved for activations.
            module.weight_quantizer = wq
            quantizers[f"{path}.weight"] = wq
        if quantize_activations:
            aq = FakeQuantizer(num_bits, percentile=percentile, name=f"{path}.input")
            module.input_quantizer = aq
            quantizers[f"{path}.input"] = aq
    return quantizers


def begin_calibration(quantizers: Iterable[FakeQuantizer] | Dict[str, FakeQuantizer]) -> None:
    """Switch every quantizer into calibration mode."""
    for quantizer in _values(quantizers):
        quantizer.enable_calibration()


def freeze_quantizers(quantizers: Iterable[FakeQuantizer] | Dict[str, FakeQuantizer]) -> None:
    """Freeze every quantizer (compute scales from collected statistics)."""
    for quantizer in _values(quantizers):
        quantizer.freeze()


def detach_quantizers(model: Module) -> None:
    """Remove all quantizers from the model's Linear layers."""
    for _, module in model.named_modules():
        if isinstance(module, Linear):
            module.weight_quantizer = None
            module.input_quantizer = None


def _values(quantizers) -> List[FakeQuantizer]:
    if isinstance(quantizers, dict):
        return list(quantizers.values())
    return list(quantizers)
