"""The Power-of-Two unit (paper section IV-A).

The hardware decomposes a fixed-point input ``x`` into an integer part and a
fractional part.  The fractional power ``2**frac(x)`` (which lies in
``[1, 2)``) is evaluated with a 4-segment linear-piecewise (LPW) table, and
the result is then shifted by the integer part -- a barrel shift, since
multiplying by ``2**int(x)`` is exact in binary.

In Softermax the input to this unit is always ``x - IntMax(x) <= 0``, so the
shift is a right shift and the output lies in ``(0, 1]``, which is why the
paper can afford the unsigned ``Q(1,15)`` output format.

The paper formulates the LPW on the *fractional* input directly::

    xscaled = frac(x) << 2                      # 4 segments => scale by 4
    lpw     = mlut[int(xscaled)] * frac(xscaled) + clut[int(xscaled)]

and notes that when the input has two or fewer fractional bits (the Q(6,2)
input of Table I), ``frac(xscaled)`` is always zero and only the ``c`` LUT is
used.  Both paths are modelled here bit-accurately.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.config import SoftermaxConfig, DEFAULT_CONFIG
from repro.core.lpw import LPWTable, fit_lpw
from repro.fixedpoint import QFormat, RoundingMode, quantize


def _pow2_frac(x: np.ndarray) -> np.ndarray:
    """Exact ``2**x`` for ``x`` in [0, 1) (reference for the LPW fit)."""
    return np.power(2.0, np.asarray(x, dtype=np.float64))


@lru_cache(maxsize=None)
def _cached_pow2_table(num_segments: int, coeff_fmt: QFormat | None,
                       method: str) -> LPWTable:
    table = fit_lpw(_pow2_frac, 0.0, 1.0, num_segments, method=method)
    if coeff_fmt is not None:
        table = table.quantized(coeff_fmt)
    return table


def build_pow2_table(
    num_segments: int = 4,
    coeff_fmt: QFormat | None = QFormat(2, 15, signed=False),
    method: str = "endpoint",
    cache: bool = True,
) -> LPWTable:
    """Build the LPW table for ``2**f`` with ``f`` in [0, 1).

    Parameters
    ----------
    num_segments:
        Number of LPW segments (4 in the paper, versus the 64-128 entries a
        general-purpose exponential LUT typically needs).
    coeff_fmt:
        Format the slope/intercept LUT entries are stored in.  ``None``
        keeps the coefficients in full precision (used for error analysis).
    method:
        ``"endpoint"`` or ``"lstsq"`` (see :func:`repro.core.lpw.fit_lpw`).
    cache:
        Memoize the construction: equal parameters return the *same*
        :class:`LPWTable` instance (tables are frozen and never mutated).
        Pass ``False`` to force a fresh fit, e.g. for ablations that poke
        at the table arrays.
    """
    if cache:
        return _cached_pow2_table(num_segments, coeff_fmt, method)
    return _cached_pow2_table.__wrapped__(num_segments, coeff_fmt, method)


@dataclass
class PowerOfTwoUnit:
    """Bit-accurate model of the hardware power-of-two unit.

    Parameters
    ----------
    config:
        Softermax operating point; supplies the input/output formats and the
        segment count.
    lpw_method:
        Table construction method, exposed for ablations.
    cache_tables:
        Share memoized LPW tables between units with equal parameters
        (default).  Disable to force a private table instance.

    Examples
    --------
    >>> unit = PowerOfTwoUnit()
    >>> float(unit(np.asarray([-1.0])))
    0.5
    """

    config: SoftermaxConfig = None
    lpw_method: str = "endpoint"
    cache_tables: bool = True

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = DEFAULT_CONFIG
        self.table = build_pow2_table(
            self.config.pow2_segments,
            coeff_fmt=QFormat(2, self.config.unnormed_fmt.frac_bits, signed=False),
            method=self.lpw_method,
            cache=self.cache_tables,
        )

    @property
    def out_fmt(self) -> QFormat:
        return self.config.unnormed_fmt

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Compute ``2**x`` for fixed-point ``x`` (expected ``x <= 0``).

        The result is quantized into the ``unnormed`` format of the
        configuration (``Q(1,15)`` at the paper's operating point).
        """
        x = np.asarray(x, dtype=np.float64)
        int_part = np.floor(x)
        frac_part = x - int_part

        lpw = self._fractional_pow2(frac_part)
        # Shift by the integer part.  For Softermax the integer part is <= 0
        # so this is a right shift of the LPW output.
        result = lpw * np.power(2.0, int_part)
        return quantize(result, self.out_fmt, RoundingMode.NEAREST)

    def _fractional_pow2(self, frac_part: np.ndarray) -> np.ndarray:
        """Evaluate the LPW approximation of ``2**f`` for ``f`` in [0, 1)."""
        num_segments = self.table.num_segments
        xscaled = frac_part * num_segments
        seg = np.clip(np.floor(xscaled).astype(np.int64), 0, num_segments - 1)
        t = xscaled - seg

        input_frac_bits = self.config.input_fmt.frac_bits
        # Paper special case: with <= log2(num_segments) fractional input
        # bits the within-segment fraction is always zero, so the multiplier
        # and the m LUT are unused.
        if (1 << input_frac_bits) <= num_segments:
            return self.table.intercepts[seg]
        return self.table.slopes[seg] * t + self.table.intercepts[seg]

    def max_error(self, num_samples: int = 4096) -> float:
        """Worst-case absolute error over the input domain ``[-max, 0]``."""
        lo = -float(self.config.input_fmt.max_value)
        xs = np.linspace(lo, 0.0, num_samples)
        xs = quantize(xs, self.config.input_fmt)
        approx = self(xs)
        exact = np.power(2.0, xs)
        return float(np.max(np.abs(approx - exact)))


def exact_pow2(x: np.ndarray) -> np.ndarray:
    """Full-precision ``2**x`` (the float reference the unit approximates)."""
    return np.power(2.0, np.asarray(x, dtype=np.float64))
