"""Related-work softmax approximations (paper section II-C).

The paper positions Softermax against two families of prior work:

* *software-only* integer softmaxes used by fully-quantized Transformers
  (its references [11], [12] and the I-BERT line of work), which approximate
  the exponential with a low-order polynomial on integer inputs but still
  execute on full-precision special-function units, and
* *hardware softmax units* that approximate ``e**x`` with lookup tables or
  split high/low-bit decompositions (references [13]-[16]) but keep the
  explicit max pass and the natural base.

To make those comparisons runnable, this module implements representative
members of both families on top of the same fixed-point substrate used by
Softermax.  They are registered as attention-softmax variants so they can be
dropped into the Transformer models and compared in the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SoftermaxConfig
from repro.core.lpw import fit_lpw
from repro.fixedpoint import QFormat, RoundingMode, quantize


# --------------------------------------------------------------------------- #
# I-BERT style polynomial integer softmax
# --------------------------------------------------------------------------- #
def _poly_exp_negative(x: np.ndarray) -> np.ndarray:
    """Second-order polynomial approximation of ``e**x`` for ``x`` in (-ln2, 0].

    This is the integer-friendly polynomial used by the fully-integer
    softmax line of work: ``0.3585 * (x + 1.353)**2 + 0.344``.
    """
    return 0.3585 * (x + 1.353) ** 2 + 0.344


def ibert_softmax(x: np.ndarray, axis: int = -1,
                  output_fmt: QFormat = QFormat(1, 7, signed=False)) -> np.ndarray:
    """Polynomial integer softmax (I-BERT style).

    The exponential is decomposed as ``e**x = 2**(-z) * e**r`` with
    ``x - max = -z * ln2 + r`` and ``r`` in (-ln2, 0]; ``e**r`` is evaluated
    with a fixed second-order polynomial.  The max subtraction is the
    standard explicit pass (no online normalization) and the division is
    carried out in float, mirroring a software-only deployment where the
    special-function unit is still full precision.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    ln2 = np.log(2.0)
    z = np.floor(-shifted / ln2)
    r = shifted + z * ln2  # in (-ln2, 0]
    exp_r = _poly_exp_negative(r)
    powers = exp_r * np.power(2.0, -z)
    probs = powers / np.sum(powers, axis=axis, keepdims=True)
    return quantize(probs, output_fmt, RoundingMode.NEAREST)


# --------------------------------------------------------------------------- #
# LUT-based natural-exponential hardware softmax
# --------------------------------------------------------------------------- #
class LUTExpSoftmax:
    """Lookup-table natural-exponential softmax (hardware related work).

    Models the "group LUT" style exponential units: ``e**x`` for the
    max-subtracted score is read from a table of ``num_entries`` linear
    segments over the clipped input range ``[-input_range, 0]``, followed by
    an exact accumulation and division.  Unlike Softermax it keeps the
    natural base (so renormalization would need a multiplier) and the
    explicit max pass.
    """

    def __init__(self, num_entries: int = 64, input_range: float = 16.0,
                 output_fmt: QFormat = QFormat(1, 7, signed=False)) -> None:
        if num_entries < 2:
            raise ValueError("num_entries must be >= 2")
        if input_range <= 0:
            raise ValueError("input_range must be positive")
        self.num_entries = num_entries
        self.input_range = input_range
        self.output_fmt = output_fmt
        self.table = fit_lpw(np.exp, -input_range, 0.0, num_entries, method="endpoint")

    def __call__(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        shifted = x - np.max(x, axis=axis, keepdims=True)
        clipped = np.clip(shifted, -self.input_range, 0.0)
        idx = self.table.segment_index(clipped)
        seg_start = self.table.lo + idx * self.table.segment_width
        t = (clipped - seg_start) / self.table.segment_width
        exps = self.table.slopes[idx] * t + self.table.intercepts[idx]
        probs = exps / np.sum(exps, axis=axis, keepdims=True)
        return quantize(probs, self.output_fmt, RoundingMode.NEAREST)


def lut_exp_softmax(x: np.ndarray, axis: int = -1, num_entries: int = 64) -> np.ndarray:
    """Convenience wrapper constructing a default :class:`LUTExpSoftmax`."""
    return LUTExpSoftmax(num_entries=num_entries)(x, axis=axis)


# --------------------------------------------------------------------------- #
# Split high/low-bit exponential (A^3 style)
# --------------------------------------------------------------------------- #
def split_exp_softmax(x: np.ndarray, axis: int = -1,
                      frac_bits: int = 4,
                      output_fmt: QFormat = QFormat(1, 7, signed=False)) -> np.ndarray:
    """Split high-bits/low-bits exponential softmax.

    The max-subtracted score is quantized to a fixed-point value whose
    integer part indexes a coarse table (``e**-k``) and whose fractional
    part indexes a fine table (``e**-f``); the exponential is the product of
    the two table entries.  This mirrors the split exponential units of the
    attention-accelerator related work, still in base e and still two-pass.
    """
    if frac_bits < 1:
        raise ValueError("frac_bits must be >= 1")
    x = np.asarray(x, dtype=np.float64)
    shifted = np.max(x, axis=axis, keepdims=True) - x  # >= 0
    shifted = np.clip(shifted, 0.0, 31.0)
    quantized = quantize(shifted, QFormat(5, frac_bits, signed=False), RoundingMode.NEAREST)
    int_part = np.floor(quantized)
    frac_part = quantized - int_part
    # Coarse and fine tables hold exact exponentials of their grid points
    # (a real unit would store them in narrow fixed point).
    exps = np.exp(-int_part) * np.exp(-frac_part)
    probs = exps / np.sum(exps, axis=axis, keepdims=True)
    return quantize(probs, output_fmt, RoundingMode.NEAREST)


# --------------------------------------------------------------------------- #
# registration as attention-softmax variants
# --------------------------------------------------------------------------- #
def register_related_work_variants() -> None:
    """Register the related-work softmaxes as attention variants.

    Imported lazily (and idempotently) so that `repro.core` does not depend
    on `repro.nn` at import time.
    """
    from repro.core.softmax_reference import softmax_reference
    from repro.nn.functional import SoftmaxVariant, register_softmax_variant

    register_softmax_variant(SoftmaxVariant(
        name="ibert",
        forward_fn=lambda s: ibert_softmax(s, axis=-1),
        surrogate_fn=lambda s: softmax_reference(s, axis=-1),
        base=np.e,
    ))
    register_softmax_variant(SoftmaxVariant(
        name="lut_exp",
        forward_fn=lambda s: lut_exp_softmax(s, axis=-1),
        surrogate_fn=lambda s: softmax_reference(s, axis=-1),
        base=np.e,
    ))
    register_softmax_variant(SoftmaxVariant(
        name="split_exp",
        forward_fn=lambda s: split_exp_softmax(s, axis=-1),
        surrogate_fn=lambda s: softmax_reference(s, axis=-1),
        base=np.e,
    ))
