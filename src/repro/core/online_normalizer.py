"""Online normalizer calculation with the Softermax integer-max co-design.

The paper adapts the online-normalizer softmax of Milakov & Gimelshein
(its reference [18]) in one crucial way: the running maximum is replaced by
an *integer* running maximum (``ceil`` of the values seen so far).  Because
the base is two and the max is an integer, the renormalization factor
``2**(old_max - new_max)`` is always an exact power of two with an integer
exponent, so the hardware renormalizes the running sum with a shifter
instead of a multiplier.

This module provides a streaming :class:`OnlineNormalizerState` that mirrors
the hardware slice-by-slice operation (used by the Unnormed Softmax unit
model and by tests), plus a convenience function that runs the full
recurrence over a vector.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SoftermaxConfig, DEFAULT_CONFIG
from repro.core.pow2_unit import PowerOfTwoUnit
from repro.fixedpoint import RoundingMode, quantize


def integer_max(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """The IntMax reduction: ``max(ceil(x))`` along ``axis``."""
    return np.max(np.ceil(np.asarray(x, dtype=np.float64)), axis=axis)


@dataclass
class OnlineNormalizerState:
    """Running (max, sum) state of the online normalization recurrence.

    One state instance tracks one or more independent rows (any leading
    shape); :meth:`update` consumes one slice of each row at a time, exactly
    like the hardware Reduction unit reading the per-row buffer entry,
    comparing maxima, shifting the running sum and adding the local sum.

    Parameters
    ----------
    shape:
        Shape of the per-row state (i.e. the input shape without the
        reduction axis).
    config:
        Softermax operating point (formats, integer-max flag).
    pow2:
        Power-of-two unit used for the exponentials; pass ``None`` to use
        exact floating-point ``2**x`` (for the float online reference).
    """

    shape: tuple
    config: SoftermaxConfig = None
    pow2: PowerOfTwoUnit | None = None
    exact: bool = False

    running_max: np.ndarray = field(init=False)
    running_sum: np.ndarray = field(init=False)
    initialized: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = DEFAULT_CONFIG
        if self.pow2 is None and not self.exact:
            self.pow2 = PowerOfTwoUnit(self.config)
        self.running_max = np.full(self.shape, -np.inf, dtype=np.float64)
        self.running_sum = np.zeros(self.shape, dtype=np.float64)
        self.initialized = np.zeros(self.shape, dtype=bool)

    def _pow2(self, x: np.ndarray) -> np.ndarray:
        if self.exact:
            return np.power(2.0, x)
        return self.pow2(x)

    def _reduce_max(self, values: np.ndarray) -> np.ndarray:
        if self.config.use_integer_max:
            return integer_max(values, axis=-1)
        return np.max(values, axis=-1)

    def update(self, slice_values: np.ndarray) -> np.ndarray:
        """Consume one slice (last axis) of new elements per row.

        Returns the *unnormalized* exponentials of this slice relative to
        the slice-local maximum (what the hardware writes out for later
        renormalization by the Normalization unit).
        """
        slice_values = np.asarray(slice_values, dtype=np.float64)
        if slice_values.shape[:-1] != tuple(self.shape):
            raise ValueError(
                f"slice shape {slice_values.shape[:-1]} does not match state shape {tuple(self.shape)}"
            )
        if slice_values.shape[-1] == 0:
            # A zero-width slice contributes nothing: leave the state
            # untouched and hand back its (empty) unnormalized slice.  The
            # chunked-attention tail path for ragged length groups produces
            # exactly this shape, and ``np.max`` raises on an empty axis.
            return np.zeros_like(slice_values)

        local_max = self._reduce_max(slice_values)
        unnormed = self._pow2(slice_values - local_max[..., None])
        local_sum = np.sum(unnormed, axis=-1)
        if not self.exact:
            local_sum = quantize(local_sum, self.config.sum_fmt, RoundingMode.NEAREST)

        new_max = np.where(self.initialized, np.maximum(self.running_max, local_max), local_max)

        # Renormalize whichever of (running sum, local sum) was computed
        # against a smaller maximum.  With integer max the exponents are
        # integers, so both corrections are shifts in hardware.
        old_max_safe = np.where(self.initialized, self.running_max, new_max)
        run_shift = np.power(2.0, old_max_safe - new_max)
        loc_shift = np.power(2.0, local_max - new_max)

        new_sum = self.running_sum * run_shift + local_sum * loc_shift
        if not self.exact:
            new_sum = quantize(new_sum, self.config.sum_fmt, RoundingMode.NEAREST)

        self.running_max = new_max
        self.running_sum = new_sum
        self.initialized = np.ones(self.shape, dtype=bool)
        return unnormed

    def finalize(self) -> tuple[np.ndarray, np.ndarray]:
        """Return the final ``(max, denominator)`` per row."""
        return self.running_max.copy(), self.running_sum.copy()


def online_normalizer(
    x: np.ndarray,
    axis: int = -1,
    config: SoftermaxConfig | None = None,
    slice_width: int | None = None,
    exact: bool = False,
) -> tuple[np.ndarray, np.ndarray]:
    """Run the full online recurrence over ``x`` and return ``(max, sum)``.

    Parameters
    ----------
    x:
        Input scores.
    axis:
        Reduction axis.
    config:
        Softermax operating point; defaults to paper Table I.
    slice_width:
        Hardware slice width; defaults to ``config.slice_width``.
    exact:
        Use exact float arithmetic (the mathematical recurrence) instead of
        the fixed-point units.
    """
    if config is None:
        config = DEFAULT_CONFIG
    if slice_width is None:
        slice_width = config.slice_width

    moved = np.moveaxis(np.asarray(x, dtype=np.float64), axis, -1)
    state = OnlineNormalizerState(moved.shape[:-1], config=config, exact=exact)
    length = moved.shape[-1]
    for start in range(0, length, slice_width):
        state.update(moved[..., start : start + slice_width])
    return state.finalize()
