"""The Softermax algorithm: the paper's primary contribution.

The full pipeline (Figure 3 of the paper, "final algorithm") is:

1. Quantize the incoming attention scores to the input format ``Q(6,2)``.
2. Stream through the row in hardware-sized slices.  For each slice the
   Unnormed Softmax unit:

   * computes the slice-local *integer* maximum (``ceil`` then max),
   * evaluates ``2**(x - local_max)`` with the linear-piecewise power-of-two
     unit (output format ``Q(1,15)``),
   * accumulates the slice sum and merges it into the per-row running sum,
     renormalizing by a shift when a new maximum is found (online
     normalization, running sum format ``Q(10,6)``).

3. The Normalization unit then:

   * renormalizes each stored unnormalized exponential by the shift
     ``2**(slice_max - global_max)`` (always an integer exponent, hence a
     shifter),
   * computes the reciprocal of the denominator with the LPW reciprocal
     unit (``Q(1,7)``),
   * multiplies numerator by reciprocal and emits the output in ``Q(1,7)``.

The public entry points are :func:`softermax` (a drop-in replacement for a
softmax over an array axis) and :class:`SoftermaxPipeline` (which exposes the
intermediate hardware signals for tests, error analysis and the hardware
cost model).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SoftermaxConfig, DEFAULT_CONFIG
from repro.core.online_normalizer import integer_max
from repro.core.pow2_unit import PowerOfTwoUnit
from repro.core.reciprocal_unit import ReciprocalUnit
from repro.fixedpoint import RoundingMode, quantize


@dataclass
class SoftermaxIntermediates:
    """Intermediate hardware signals of one Softermax evaluation.

    All arrays have the reduction axis moved to the last position.
    """

    quantized_input: np.ndarray
    slice_maxes: np.ndarray
    unnormed: np.ndarray
    global_max: np.ndarray
    denominator: np.ndarray
    reciprocal: np.ndarray
    output: np.ndarray


@dataclass
class SoftermaxPipeline:
    """Bit-accurate functional model of the Softermax hardware pipeline.

    Parameters
    ----------
    config:
        The operating point (formats, LPW segments, feature flags).  The
        default reproduces paper Table I.

    Examples
    --------
    >>> pipe = SoftermaxPipeline()
    >>> probs = pipe(np.asarray([[2.0, 1.0, 3.0]]))
    >>> bool(abs(probs.sum() - 1.0) < 0.05)
    True
    """

    config: SoftermaxConfig = field(default_factory=SoftermaxConfig.paper_table1)

    def __post_init__(self) -> None:
        self.pow2_unit = PowerOfTwoUnit(self.config)
        self.reciprocal_unit = ReciprocalUnit(self.config)

    def __call__(self, x: np.ndarray, axis: int = -1) -> np.ndarray:
        """Apply Softermax along ``axis`` and return the probabilities."""
        return self.run(x, axis=axis).output_moved_back(axis)

    def run(self, x: np.ndarray, axis: int = -1) -> "SoftermaxResult":
        """Run the full pipeline, retaining every intermediate signal."""
        cfg = self.config
        moved = np.moveaxis(np.asarray(x, dtype=np.float64), axis, -1)
        length = moved.shape[-1]
        if length == 0:
            raise ValueError("softermax requires a non-empty reduction axis")

        quantized = quantize(moved, cfg.input_fmt, RoundingMode.NEAREST)

        slice_width = cfg.slice_width
        num_slices = (length + slice_width - 1) // slice_width

        unnormed = np.zeros_like(quantized)
        slice_maxes = np.zeros(moved.shape[:-1] + (num_slices,), dtype=np.float64)
        running_max = np.full(moved.shape[:-1], -np.inf, dtype=np.float64)
        running_sum = np.zeros(moved.shape[:-1], dtype=np.float64)

        for s in range(num_slices):
            start = s * slice_width
            stop = min(start + slice_width, length)
            chunk = quantized[..., start:stop]

            if cfg.use_integer_max:
                local_max = integer_max(chunk, axis=-1)
            else:
                local_max = np.max(chunk, axis=-1)
            local_max = quantize(local_max, cfg.max_fmt, RoundingMode.NEAREST)
            slice_maxes[..., s] = local_max

            chunk_unnormed = self._pow2(chunk - local_max[..., None])
            unnormed[..., start:stop] = chunk_unnormed

            local_sum = quantize(
                np.sum(chunk_unnormed, axis=-1), cfg.sum_fmt, RoundingMode.NEAREST
            )

            if cfg.use_online_normalization:
                if s == 0:
                    running_max = local_max
                    running_sum = local_sum
                else:
                    new_max = np.maximum(running_max, local_max)
                    run_shift = np.power(2.0, running_max - new_max)
                    loc_shift = np.power(2.0, local_max - new_max)
                    running_sum = quantize(
                        running_sum * run_shift + local_sum * loc_shift,
                        cfg.sum_fmt,
                        RoundingMode.NEAREST,
                    )
                    running_max = new_max
            else:
                # Explicit-max mode (ablation): defer the reduction, recompute
                # against the true global max below.
                pass

        if not cfg.use_online_normalization:
            if cfg.use_integer_max:
                running_max = integer_max(quantized, axis=-1)
            else:
                running_max = np.max(quantized, axis=-1)
            running_max = quantize(running_max, cfg.max_fmt, RoundingMode.NEAREST)
            unnormed = self._pow2(quantized - running_max[..., None])
            for s in range(num_slices):
                slice_maxes[..., s] = running_max
            running_sum = quantize(
                np.sum(unnormed, axis=-1), cfg.sum_fmt, RoundingMode.NEAREST
            )

        # Normalization unit: renormalize numerators by the slice-vs-global
        # shift, take the reciprocal of the denominator, and multiply.
        reciprocal = self.reciprocal_unit(running_sum)

        output = np.zeros_like(quantized)
        for s in range(num_slices):
            start = s * slice_width
            stop = min(start + slice_width, length)
            shift = np.power(2.0, slice_maxes[..., s] - running_max)
            renormed = quantize(
                unnormed[..., start:stop] * shift[..., None],
                cfg.unnormed_fmt,
                RoundingMode.FLOOR,
            )
            output[..., start:stop] = quantize(
                renormed * reciprocal[..., None], cfg.output_fmt, RoundingMode.NEAREST
            )

        intermediates = SoftermaxIntermediates(
            quantized_input=quantized,
            slice_maxes=slice_maxes,
            unnormed=unnormed,
            global_max=running_max,
            denominator=running_sum,
            reciprocal=reciprocal,
            output=output,
        )
        return SoftermaxResult(intermediates)

    def _pow2(self, x: np.ndarray) -> np.ndarray:
        if self.config.use_base2:
            return self.pow2_unit(x)
        # Natural-base ablation: the hardware would need an extra multiplier
        # to convert bases; numerically we model it as an exact e**x followed
        # by the same output quantization.
        return quantize(np.exp(x), self.config.unnormed_fmt, RoundingMode.NEAREST)


class SoftermaxResult:
    """Wrapper giving convenient access to the pipeline outputs."""

    def __init__(self, intermediates: SoftermaxIntermediates) -> None:
        self.intermediates = intermediates

    @property
    def output(self) -> np.ndarray:
        return self.intermediates.output

    def output_moved_back(self, axis: int) -> np.ndarray:
        return np.moveaxis(self.intermediates.output, -1, axis)


#: Backwards-compatible alias (the wrapper predates the kernels subsystem).
_SoftermaxResult = SoftermaxResult


def softermax(
    x: np.ndarray,
    axis: int = -1,
    config: SoftermaxConfig | None = None,
) -> np.ndarray:
    """Drop-in hardware-accurate Softermax over ``axis``.

    This is the function a user swaps in for ``softmax`` at inference time.
    Rows sum to approximately (not exactly) one because the output is
    quantized to ``Q(1,7)``; the attention matmul consuming the result is
    insensitive to this at the bitwidths involved (paper Table III).
    """
    pipeline = SoftermaxPipeline(config or DEFAULT_CONFIG)
    return pipeline(x, axis=axis)


def softermax_float(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Floating-point surrogate of Softermax (stable base-2 softmax).

    Used as the backward-pass function by the straight-through estimator in
    Softermax-aware fine-tuning: the forward pass runs the bit-accurate
    :func:`softermax`, the gradient flows through this smooth surrogate.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    powers = np.exp2(shifted)
    return powers / np.sum(powers, axis=axis, keepdims=True)
