"""Numerical error analysis helpers for softmax variants.

Used by tests and by the ablation benchmarks to quantify how far a
hardware-friendly softmax strays from the floating-point reference, both
elementwise and as a distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.softmax_reference import softmax_reference


@dataclass(frozen=True)
class SoftmaxErrorReport:
    """Summary statistics comparing an approximate softmax to a reference."""

    max_abs_error: float
    mean_abs_error: float
    max_row_sum_error: float
    mean_kl_divergence: float
    argmax_agreement: float

    def as_dict(self) -> dict:
        return {
            "max_abs_error": self.max_abs_error,
            "mean_abs_error": self.mean_abs_error,
            "max_row_sum_error": self.max_row_sum_error,
            "mean_kl_divergence": self.mean_kl_divergence,
            "argmax_agreement": self.argmax_agreement,
        }


def kl_divergence(p: np.ndarray, q: np.ndarray, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """Row-wise KL(p || q) with clamping to avoid log(0)."""
    p = np.clip(np.asarray(p, dtype=np.float64), eps, None)
    q = np.clip(np.asarray(q, dtype=np.float64), eps, None)
    p = p / p.sum(axis=axis, keepdims=True)
    q = q / q.sum(axis=axis, keepdims=True)
    return np.sum(p * (np.log(p) - np.log(q)), axis=axis)


def compare_softmax(
    approx_fn: Callable[[np.ndarray], np.ndarray],
    x: np.ndarray,
    reference_fn: Callable[[np.ndarray], np.ndarray] = softmax_reference,
    axis: int = -1,
) -> SoftmaxErrorReport:
    """Evaluate ``approx_fn`` against ``reference_fn`` on the batch ``x``."""
    x = np.asarray(x, dtype=np.float64)
    approx = approx_fn(x)
    ref = reference_fn(x)

    abs_err = np.abs(approx - ref)
    row_sum_err = np.abs(approx.sum(axis=axis) - 1.0)
    kl = kl_divergence(ref, approx, axis=axis)
    agreement = np.mean(
        np.argmax(approx, axis=axis) == np.argmax(ref, axis=axis)
    )

    return SoftmaxErrorReport(
        max_abs_error=float(abs_err.max()),
        mean_abs_error=float(abs_err.mean()),
        max_row_sum_error=float(row_sum_err.max()),
        mean_kl_divergence=float(kl.mean()),
        argmax_agreement=float(agreement),
    )


def attention_score_batch(
    batch: int,
    seq_len: int,
    scale: float = 4.0,
    seed: int = 0,
) -> np.ndarray:
    """Generate a batch of realistic attention-score rows.

    Attention scores (after the 1/sqrt(d) scaling) are roughly Gaussian with
    a handful of dominant entries per row; this generator mixes a Gaussian
    background with sparse peaks so the error analysis exercises both the
    near-uniform and the peaked regimes the softmax sees in practice.
    """
    rng = np.random.default_rng(seed)
    scores = rng.normal(0.0, scale / 4.0, size=(batch, seq_len))
    num_peaks = max(1, seq_len // 64)
    for row in range(batch):
        peaks = rng.choice(seq_len, size=num_peaks, replace=False)
        scores[row, peaks] += rng.uniform(scale / 2.0, scale, size=num_peaks)
    return scores
