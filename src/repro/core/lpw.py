"""Generic linear piece-wise (LPW) function approximation.

The Softermax hardware evaluates both ``2**x`` (fractional part) and the
reciprocal with small linear-piecewise approximations: the input range is
split into ``n`` equal segments and each segment stores a slope ``m`` and an
intercept ``c`` in a tiny LUT, so the evaluation is one LUT read, one
multiply and one add (paper section IV-A).

This module provides the table construction (:func:`fit_lpw`) and a
bit-accurate evaluator (:func:`evaluate_lpw`) that quantizes the LUT entries
and the arithmetic into explicit fixed-point formats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.fixedpoint import QFormat, RoundingMode, quantize


@dataclass(frozen=True)
class LPWTable:
    """A linear-piecewise approximation of a scalar function on [lo, hi).

    The approximation on segment ``i`` (covering
    ``[lo + i*seg, lo + (i+1)*seg)`` with ``seg = (hi - lo)/n``) is::

        f(x) ~= m[i] * t + c[i],   t = (x - segment start) / seg in [0, 1)

    which matches the hardware formulation in the paper where ``t`` is the
    fractional part of the scaled input.
    """

    lo: float
    hi: float
    slopes: np.ndarray
    intercepts: np.ndarray

    @property
    def num_segments(self) -> int:
        return len(self.slopes)

    @property
    def segment_width(self) -> float:
        return (self.hi - self.lo) / self.num_segments

    def segment_index(self, x: np.ndarray) -> np.ndarray:
        """Return the segment index for each input (clipped to the range)."""
        x = np.asarray(x, dtype=np.float64)
        idx = np.floor((x - self.lo) / self.segment_width).astype(np.int64)
        return np.clip(idx, 0, self.num_segments - 1)

    def quantized(self, coeff_fmt: QFormat) -> "LPWTable":
        """Return a copy with the LUT entries quantized into ``coeff_fmt``."""
        return LPWTable(
            self.lo,
            self.hi,
            quantize(self.slopes, coeff_fmt),
            quantize(self.intercepts, coeff_fmt),
        )


def fit_lpw(
    func: Callable[[np.ndarray], np.ndarray],
    lo: float,
    hi: float,
    num_segments: int,
    method: str = "endpoint",
    samples_per_segment: int = 64,
) -> LPWTable:
    """Fit an :class:`LPWTable` to ``func`` on ``[lo, hi)``.

    Parameters
    ----------
    func:
        Vectorized scalar function to approximate.
    lo, hi:
        Approximation interval.
    num_segments:
        Number of equal-width segments.
    method:
        ``"endpoint"`` interpolates the segment endpoints (what a simple
        hardware table generator would do and the default here);
        ``"lstsq"`` does a per-segment least-squares fit, which halves the
        worst-case error and is used in the ablation benchmarks.
    samples_per_segment:
        Sample count per segment for the least-squares fit.
    """
    if hi <= lo:
        raise ValueError("hi must be greater than lo")
    if num_segments < 1:
        raise ValueError("num_segments must be >= 1")
    if method not in ("endpoint", "lstsq"):
        raise ValueError(f"unknown fit method: {method!r}")

    seg = (hi - lo) / num_segments
    slopes = np.empty(num_segments, dtype=np.float64)
    intercepts = np.empty(num_segments, dtype=np.float64)

    for i in range(num_segments):
        a = lo + i * seg
        b = a + seg
        if method == "endpoint":
            fa = float(func(np.asarray([a]))[0])
            fb = float(func(np.asarray([b]))[0])
            slopes[i] = fb - fa
            intercepts[i] = fa
        else:
            xs = np.linspace(a, b, samples_per_segment, endpoint=False)
            ts = (xs - a) / seg
            ys = func(xs)
            design = np.stack([ts, np.ones_like(ts)], axis=1)
            coef, *_ = np.linalg.lstsq(design, ys, rcond=None)
            slopes[i] = coef[0]
            intercepts[i] = coef[1]

    return LPWTable(lo, hi, slopes, intercepts)


def evaluate_lpw(
    table: LPWTable,
    x: np.ndarray,
    frac_fmt: QFormat | None = None,
    out_fmt: QFormat | None = None,
    rounding: RoundingMode = RoundingMode.NEAREST,
) -> np.ndarray:
    """Evaluate the LPW approximation at ``x``.

    Parameters
    ----------
    table:
        The (optionally already quantized) LPW table.
    x:
        Input values; they are clipped into ``[lo, hi)``.
    frac_fmt:
        Optional format for the within-segment fraction ``t`` (models the
        width of the multiplier input in hardware).
    out_fmt:
        Optional format of the result (models the output register width).
    rounding:
        Rounding used for the optional quantizations.
    """
    x = np.asarray(x, dtype=np.float64)
    x = np.clip(x, table.lo, np.nextafter(table.hi, table.lo))
    idx = table.segment_index(x)
    seg_start = table.lo + idx * table.segment_width
    t = (x - seg_start) / table.segment_width
    if frac_fmt is not None:
        t = quantize(t, frac_fmt, rounding)
    result = table.slopes[idx] * t + table.intercepts[idx]
    if out_fmt is not None:
        result = quantize(result, out_fmt, rounding)
    return result


def max_abs_error(
    table: LPWTable,
    func: Callable[[np.ndarray], np.ndarray],
    num_samples: int = 4096,
) -> float:
    """Measure the worst-case absolute error of ``table`` against ``func``."""
    xs = np.linspace(table.lo, table.hi, num_samples, endpoint=False)
    approx = evaluate_lpw(table, xs)
    exact = func(xs)
    return float(np.max(np.abs(approx - exact)))
