"""Softermax core algorithms (the paper's primary contribution).

Public API:

* :func:`softermax` -- drop-in hardware-accurate Softermax.
* :class:`SoftermaxPipeline` -- the same pipeline with intermediate signals.
* :class:`SoftermaxConfig` -- operating point (paper Table I by default).
* Reference softmaxes: :func:`softmax_reference`, :func:`base2_softmax`,
  :func:`online_softmax`, :func:`softmax_naive`.
* Hardware sub-units: :class:`PowerOfTwoUnit`, :class:`ReciprocalUnit`,
  the generic LPW machinery, and the online-normalizer recurrence.
"""

from repro.core.config import SoftermaxConfig, DEFAULT_CONFIG
from repro.core.lpw import LPWTable, fit_lpw, evaluate_lpw, max_abs_error
from repro.core.pow2_unit import PowerOfTwoUnit, build_pow2_table, exact_pow2
from repro.core.reciprocal_unit import (
    ReciprocalUnit,
    build_reciprocal_table,
    exact_reciprocal,
    normalize_to_unit_range,
)
from repro.core.softmax_reference import (
    softmax_naive,
    softmax_reference,
    base2_softmax,
    online_softmax,
    log_softmax_reference,
    softmax_jacobian_vector_product,
)
from repro.core.online_normalizer import (
    OnlineNormalizerState,
    online_normalizer,
    integer_max,
)
from repro.core.softermax import (
    SoftermaxPipeline,
    SoftermaxIntermediates,
    SoftermaxResult,
    softermax,
    softermax_float,
)
from repro.core.errors import (
    SoftmaxErrorReport,
    compare_softmax,
    kl_divergence,
    attention_score_batch,
)
from repro.core.variants import (
    ibert_softmax,
    lut_exp_softmax,
    split_exp_softmax,
    LUTExpSoftmax,
    register_related_work_variants,
)

__all__ = [
    "SoftermaxConfig",
    "DEFAULT_CONFIG",
    "LPWTable",
    "fit_lpw",
    "evaluate_lpw",
    "max_abs_error",
    "PowerOfTwoUnit",
    "build_pow2_table",
    "exact_pow2",
    "ReciprocalUnit",
    "build_reciprocal_table",
    "exact_reciprocal",
    "normalize_to_unit_range",
    "softmax_naive",
    "softmax_reference",
    "base2_softmax",
    "online_softmax",
    "log_softmax_reference",
    "softmax_jacobian_vector_product",
    "OnlineNormalizerState",
    "online_normalizer",
    "integer_max",
    "SoftermaxPipeline",
    "SoftermaxIntermediates",
    "SoftermaxResult",
    "softermax",
    "softermax_float",
    "SoftmaxErrorReport",
    "compare_softmax",
    "kl_divergence",
    "attention_score_batch",
    "ibert_softmax",
    "lut_exp_softmax",
    "split_exp_softmax",
    "LUTExpSoftmax",
    "register_related_work_variants",
]
