"""Softermax configuration: the bitwidths of paper Table I plus knobs.

The paper fixes one operating point (Table I); :class:`SoftermaxConfig`
captures that operating point as the default and exposes every width and
algorithmic choice as a field so that ablations (different LPW segment
counts, disabling online normalization, using the natural base, ...) can be
expressed as alternative configurations.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.fixedpoint import QFormat


@dataclass(frozen=True)
class SoftermaxConfig:
    """Operating point of the Softermax pipeline.

    The defaults reproduce Table I of the paper:

    ========  ==========  =================================================
    Signal    Format      Meaning
    ========  ==========  =================================================
    input     Q(6,2)      attention scores entering the unit (signed)
    localmax  Q(6,2)      running/slice maximum (signed)
    unnormed  Q(1,15)     output of the power-of-two unit, in [0, 1]
    powsum    Q(10,6)     running denominator accumulator
    recip     Q(1,7)      reciprocal of the (normalized) denominator
    output    Q(1,7)      final probabilities, in [0, 1]
    ========  ==========  =================================================
    """

    #: Format of the attention scores entering the softmax unit.
    input_fmt: QFormat = field(default=QFormat(6, 2, signed=True))
    #: Format of the running (integer) maximum.
    max_fmt: QFormat = field(default=QFormat(6, 2, signed=True))
    #: Format of the unnormalized exponential (always in [0, 1]).
    unnormed_fmt: QFormat = field(default=QFormat(1, 15, signed=False))
    #: Format of the running denominator sum.
    sum_fmt: QFormat = field(default=QFormat(10, 6, signed=False))
    #: Format of the reciprocal of the denominator.
    recip_fmt: QFormat = field(default=QFormat(1, 7, signed=False))
    #: Format of the final softmax output.
    output_fmt: QFormat = field(default=QFormat(1, 7, signed=False))

    #: Number of linear-piecewise segments in the power-of-two unit.
    pow2_segments: int = 4
    #: Number of linear-piecewise segments in the reciprocal unit.
    recip_segments: int = 4
    #: Use base 2 instead of base e (the paper's base replacement).
    use_base2: bool = True
    #: Apply ``ceil`` before the max so renormalizations are pure shifts.
    use_integer_max: bool = True
    #: Use the single-pass online normalization instead of an explicit
    #: max pass.
    use_online_normalization: bool = True
    #: Number of elements processed per hardware slice (the vector width of
    #: the Unnormed Softmax unit).  Only affects the slice-level simulation
    #: and the hardware cost model, not the mathematical result.
    slice_width: int = 32

    def __post_init__(self) -> None:
        if self.pow2_segments < 1:
            raise ValueError("pow2_segments must be >= 1")
        if self.recip_segments < 1:
            raise ValueError("recip_segments must be >= 1")
        if self.slice_width < 1:
            raise ValueError("slice_width must be >= 1")

    @property
    def input_bits(self) -> int:
        """Total width of the input format (8 in the paper)."""
        return self.input_fmt.total_bits

    @property
    def output_bits(self) -> int:
        """Total width of the output format (8 in the paper)."""
        return self.output_fmt.total_bits

    def with_(self, **kwargs) -> "SoftermaxConfig":
        """Return a modified copy (thin wrapper over ``dataclasses.replace``)."""
        return replace(self, **kwargs)

    @classmethod
    def paper_table1(cls) -> "SoftermaxConfig":
        """The exact operating point of paper Table I."""
        return cls()

    @classmethod
    def high_precision(cls) -> "SoftermaxConfig":
        """A wide fixed-point configuration for ablation against Table I."""
        return cls(
            input_fmt=QFormat(8, 8, signed=True),
            max_fmt=QFormat(8, 8, signed=True),
            unnormed_fmt=QFormat(1, 23, signed=False),
            sum_fmt=QFormat(16, 12, signed=False),
            recip_fmt=QFormat(1, 15, signed=False),
            output_fmt=QFormat(1, 15, signed=False),
            pow2_segments=16,
            recip_segments=16,
        )

    def describe(self) -> str:
        """Human-readable summary matching the layout of paper Table I."""
        rows = [
            ("Inp.", self.input_fmt),
            ("LocalMax", self.max_fmt),
            ("Unnormed", self.unnormed_fmt),
            ("PowSum", self.sum_fmt),
            ("Recip.", self.recip_fmt),
            ("Outp.", self.output_fmt),
        ]
        lines = ["Softermax bitwidths, Q(Int., Frac.):"]
        for name, fmt in rows:
            lines.append(f"  {name:<9} {fmt}")
        lines.append(
            f"  LPW segments: pow2={self.pow2_segments}, recip={self.recip_segments}; "
            f"base2={self.use_base2}, integer max={self.use_integer_max}, "
            f"online norm={self.use_online_normalization}"
        )
        return "\n".join(lines)


#: The default configuration used across the library (paper Table I).
DEFAULT_CONFIG = SoftermaxConfig.paper_table1()
