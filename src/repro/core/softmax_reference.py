"""Reference softmax implementations.

These are the floating-point algorithms that Softermax is measured against
and derived from:

* :func:`softmax_naive` -- the textbook definition (numerically unsafe).
* :func:`softmax_reference` -- the numerically stable softmax used by every
  deep-learning framework (subtract the max, exponentiate, normalize).  This
  is the "standard softmax" of the paper.
* :func:`base2_softmax` -- the stable softmax with the base replaced by two,
  the first of Softermax's enhancements.  Note that for an *un-scaled*
  logit vector this changes the output distribution (it is equivalent to a
  temperature of ``1/ln 2``); the paper recovers accuracy through
  Softermax-aware fine-tuning rather than by rescaling the logits.
* :func:`online_softmax` -- the single-pass online-normalizer softmax of
  Milakov & Gimelshein, in floating point (reference [18] of the paper).
"""

from __future__ import annotations

import numpy as np


def _move_last(x: np.ndarray, axis: int) -> np.ndarray:
    return np.moveaxis(np.asarray(x, dtype=np.float64), axis, -1)


def softmax_naive(x: np.ndarray, axis: int = -1, base: float = np.e) -> np.ndarray:
    """Textbook softmax ``base**x / sum(base**x)`` without max subtraction.

    Kept as a reference for tests that demonstrate why the numerically
    stable version exists: large logits overflow to ``inf``.
    """
    x = np.asarray(x, dtype=np.float64)
    powers = np.power(base, x)
    return powers / np.sum(powers, axis=axis, keepdims=True)


def softmax_reference(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable base-e softmax (the paper's "standard softmax")."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exps = np.exp(shifted)
    return exps / np.sum(exps, axis=axis, keepdims=True)


def base2_softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax computed with base 2.

    This is the pure "base replacement" step of Softermax, still in full
    floating-point precision and still using an explicit max pass.
    """
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    powers = np.exp2(shifted)
    return powers / np.sum(powers, axis=axis, keepdims=True)


def online_softmax(x: np.ndarray, axis: int = -1, base: float = 2.0) -> np.ndarray:
    """Single-pass online-normalizer softmax (Milakov & Gimelshein).

    The running maximum ``m`` and running denominator ``d`` are maintained
    together while streaming through the vector once::

        m_new = max(m, x_i)
        d     = d * base**(m - m_new) + base**(x_i - m_new)

    A second elementwise pass produces ``base**(x_i - m) / d``.  The result
    is mathematically identical to the stable softmax in exact arithmetic;
    this implementation demonstrates the recurrence explicitly (it is
    deliberately written as a loop over the reduction axis).
    """
    moved = _move_last(x, axis)
    length = moved.shape[-1]
    if length == 0:
        return np.moveaxis(moved, -1, axis)

    running_max = np.full(moved.shape[:-1], -np.inf, dtype=np.float64)
    running_sum = np.zeros(moved.shape[:-1], dtype=np.float64)
    for i in range(length):
        xi = moved[..., i]
        new_max = np.maximum(running_max, xi)
        running_sum = running_sum * np.power(base, running_max - new_max) + np.power(
            base, xi - new_max
        )
        running_max = new_max

    numerators = np.power(base, moved - running_max[..., None])
    result = numerators / running_sum[..., None]
    return np.moveaxis(result, -1, axis)


def softmax_jacobian_vector_product(probs: np.ndarray, grad_out: np.ndarray,
                                    axis: int = -1, base: float = np.e) -> np.ndarray:
    """Backward pass of softmax: ``J^T @ grad_out`` given the probabilities.

    For base-``b`` softmax the Jacobian picks up a factor ``ln b``::

        dL/dx_i = ln(b) * p_i * (g_i - sum_j g_j p_j)

    This is used by the autograd substrate and by the straight-through
    estimator of Softermax-aware fine-tuning.
    """
    probs = np.asarray(probs, dtype=np.float64)
    grad_out = np.asarray(grad_out, dtype=np.float64)
    inner = np.sum(grad_out * probs, axis=axis, keepdims=True)
    return np.log(base) * probs * (grad_out - inner)


def log_softmax_reference(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax (used by the cross-entropy loss)."""
    x = np.asarray(x, dtype=np.float64)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
