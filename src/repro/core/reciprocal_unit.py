"""The linear-piecewise reciprocal unit (paper section IV-B).

The Normalization Unit divides each (renormalized) numerator by the
accumulated denominator.  Rather than a full divider, Softermax uses a
linear-piecewise reciprocal: the denominator ``d`` is normalized into
``[1, 2)`` by a leading-one detector and a shift (``d = m * 2**e``), the
reciprocal of the mantissa ``1/m`` is read from a small LPW table, and the
exponent is folded back in with another shift.  The final multiply of the
numerator by the reciprocal is an integer multiplier.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.config import SoftermaxConfig, DEFAULT_CONFIG
from repro.core.lpw import LPWTable, fit_lpw
from repro.fixedpoint import QFormat, RoundingMode, quantize


def _reciprocal_mantissa(m: np.ndarray) -> np.ndarray:
    """Exact ``1/m`` for ``m`` in [1, 2) (reference for the LPW fit)."""
    return 1.0 / np.asarray(m, dtype=np.float64)


@lru_cache(maxsize=None)
def _cached_reciprocal_table(num_segments: int, coeff_fmt: QFormat | None,
                             method: str) -> LPWTable:
    table = fit_lpw(_reciprocal_mantissa, 1.0, 2.0, num_segments, method=method)
    if coeff_fmt is not None:
        table = table.quantized(coeff_fmt)
    return table


def build_reciprocal_table(
    num_segments: int = 4,
    coeff_fmt: QFormat | None = QFormat(2, 15, signed=True),
    method: str = "endpoint",
    cache: bool = True,
) -> LPWTable:
    """Build the LPW table for ``1/m`` with ``m`` in [1, 2).

    The slopes of ``1/m`` are negative, so the coefficient LUT format must
    be signed (a signed Q(2,15) covers slopes in [-0.25, 0) and intercepts
    in (0.5, 1] with plenty of headroom).

    With ``cache`` (the default) equal parameters return the same memoized
    :class:`LPWTable` instance; pass ``False`` to force a fresh fit.
    """
    if cache:
        return _cached_reciprocal_table(num_segments, coeff_fmt, method)
    return _cached_reciprocal_table.__wrapped__(num_segments, coeff_fmt, method)


def normalize_to_unit_range(d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split positive ``d`` into mantissa in [1, 2) and integer exponent.

    Returns ``(mantissa, exponent)`` with ``d = mantissa * 2**exponent``.
    Zeros are passed through with exponent 0 (the caller decides how to
    handle an all-zero denominator, which cannot occur in Softermax since
    the maximum element always contributes ``2**0 = 1`` to the sum).
    """
    d = np.asarray(d, dtype=np.float64)
    exponent = np.zeros_like(d)
    mantissa = d.copy()
    positive = d > 0
    exponent[positive] = np.floor(np.log2(d[positive]))
    mantissa[positive] = d[positive] / np.power(2.0, exponent[positive])
    # Guard against log2 rounding putting the mantissa at exactly 2.0.
    too_big = mantissa >= 2.0
    mantissa[too_big] /= 2.0
    exponent[too_big] += 1.0
    return mantissa, exponent


@dataclass
class ReciprocalUnit:
    """Bit-accurate model of the LPW reciprocal unit.

    Examples
    --------
    >>> unit = ReciprocalUnit()
    >>> float(unit(np.asarray([4.0])))
    0.25
    """

    config: SoftermaxConfig = None
    lpw_method: str = "endpoint"
    cache_tables: bool = True

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = DEFAULT_CONFIG
        self.table = build_reciprocal_table(
            self.config.recip_segments,
            coeff_fmt=QFormat(2, 15, signed=True),
            method=self.lpw_method,
            cache=self.cache_tables,
        )

    @property
    def out_fmt(self) -> QFormat:
        return self.config.recip_fmt

    def __call__(self, d: np.ndarray) -> np.ndarray:
        """Compute ``1/d`` for the accumulated denominator ``d >= 1``.

        The result is quantized into the reciprocal format (``Q(1,7)`` at
        the paper's operating point).  Because the running maximum always
        contributes ``2**0 = 1`` to the denominator, ``d >= 1`` holds and
        the reciprocal fits in [0, 1].
        """
        d = np.asarray(d, dtype=np.float64)
        mantissa, exponent = normalize_to_unit_range(d)
        recip_mantissa = self._lpw_reciprocal(mantissa)
        result = recip_mantissa * np.power(2.0, -exponent)
        result = np.where(d > 0, result, 0.0)
        return quantize(result, self.out_fmt, RoundingMode.NEAREST)

    def _lpw_reciprocal(self, mantissa: np.ndarray) -> np.ndarray:
        """Evaluate the LPW approximation of ``1/m`` for ``m`` in [1, 2)."""
        num_segments = self.table.num_segments
        xscaled = (mantissa - 1.0) * num_segments
        seg = np.clip(np.floor(xscaled).astype(np.int64), 0, num_segments - 1)
        t = xscaled - seg
        return self.table.slopes[seg] * t + self.table.intercepts[seg]

    def max_error(self, lo: float = 1.0, hi: float = 1024.0, num_samples: int = 8192) -> float:
        """Worst-case absolute error of ``1/d`` over ``[lo, hi]``.

        The absolute error is dominated by the output quantization near
        ``d = 1`` and by the LPW error elsewhere.
        """
        ds = np.linspace(lo, hi, num_samples)
        approx = self(ds)
        exact = 1.0 / ds
        return float(np.max(np.abs(approx - exact)))


def exact_reciprocal(d: np.ndarray) -> np.ndarray:
    """Full-precision ``1/d`` (the float reference the unit approximates)."""
    d = np.asarray(d, dtype=np.float64)
    out = np.zeros_like(d)
    nonzero = d != 0
    out[nonzero] = 1.0 / d[nonzero]
    return out
