"""Dynamic micro-batching: a bounded request queue with time/size coalescing.

The batcher is the heart of the serving layer's throughput win: requests
arriving within a short window are coalesced into one padded batch so the
encoder (and the adaptive Softermax kernel under it) amortizes per-call
overhead over many requests.  Policy:

* a batch closes as soon as it holds ``max_batch_size`` requests, or
* ``max_wait_ms`` after its *first* request was dequeued, whichever comes
  first -- so a lone request never waits longer than the coalescing window,
  and a burst never waits at all.

The queue is bounded (``max_queue_depth``); when it is full, ``submit``
raises :class:`QueueFullError` immediately instead of buffering without
limit -- backpressure is the caller's signal to shed load.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import List, Optional, Tuple


class QueueFullError(RuntimeError):
    """The bounded request queue is full (shed load or retry later)."""


class ServiceClosedError(RuntimeError):
    """The service/batcher has been stopped and accepts no new requests."""


class PendingRequest:
    """A submitted request: token key plus a completion slot.

    A minimal future: the worker thread completes it with
    :meth:`set_result` / :meth:`set_exception`, the submitting thread
    blocks in :meth:`result`.
    """

    __slots__ = ("key", "submitted_at", "cached", "_event", "_result",
                 "_exception")

    def __init__(self, key: Tuple[int, ...],
                 clock=time.perf_counter) -> None:
        self.key = key
        self.submitted_at = clock()
        self.cached = False
        self._event = threading.Event()
        self._result = None
        self._exception: Optional[BaseException] = None

    def set_result(self, value) -> None:
        self._result = value
        self._event.set()

    def set_exception(self, exc: BaseException) -> None:
        self._exception = exc
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        """Block until completed; raises the worker's exception if any."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request not completed within {timeout} seconds")
        if self._exception is not None:
            raise self._exception
        return self._result


#: Queue sentinel that unblocks the worker on close.
_CLOSED = object()


class MicroBatcher:
    """Bounded queue + size/deadline coalescing into micro-batches.

    Parameters
    ----------
    max_batch_size:
        Largest batch handed to the model in one forward.
    max_wait_ms:
        Longest a dequeued request waits for companions before its batch
        closes.  ``0`` disables coalescing-by-time: a batch is whatever is
        already queued at dequeue time.
    max_queue_depth:
        Bound on queued (not yet dequeued) requests; beyond it ``submit``
        raises :class:`QueueFullError`.
    """

    def __init__(self, max_batch_size: int = 32, max_wait_ms: float = 2.0,
                 max_queue_depth: int = 1024) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue_depth)
        self._closed = threading.Event()
        # Serializes submit against close: without it, a submitter that
        # passed the closed-check could be preempted, have close() + a
        # final drain run to completion, then enqueue into the dead
        # batcher -- a request nothing would ever complete.
        self._submit_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def depth(self) -> int:
        """Approximate number of queued, not yet dequeued requests."""
        return self._queue.qsize()

    def submit(self, request: PendingRequest) -> None:
        """Enqueue a request; raises on a full queue or a closed batcher."""
        with self._submit_lock:
            if self.closed:
                raise ServiceClosedError("batcher is closed")
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                raise QueueFullError(
                    f"request queue is full ({self._queue.maxsize} pending)"
                ) from None

    def next_batch(self, timeout: Optional[float] = None
                   ) -> List[PendingRequest]:
        """Dequeue the next micro-batch (worker-thread side).

        Blocks up to ``timeout`` seconds for the first request (forever
        when ``None``); returns ``[]`` on timeout or when the batcher is
        closed and drained.  Once a first request arrives, keeps coalescing
        until the batch is full or ``max_wait_ms`` has passed.
        """
        try:
            if self.closed:
                # Never block on a closed batcher: hand out whatever is
                # still queued, but a drained queue means we are done now,
                # not after the full idle timeout.
                first = self._queue.get_nowait()
            else:
                first = self._queue.get(timeout=timeout)
        except queue.Empty:
            return []
        if first is _CLOSED:
            self._repost_close_sentinel()
            return []
        batch = [first]
        deadline = time.perf_counter() + self.max_wait_ms / 1e3
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.perf_counter()
            try:
                if remaining <= 0:
                    item = self._queue.get_nowait()
                else:
                    item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if item is _CLOSED:
                self._repost_close_sentinel()
                break
            batch.append(item)
        return batch

    def _repost_close_sentinel(self) -> None:
        """Put the consumed ``_CLOSED`` sentinel back for the next reader.

        The sentinel is consumed wherever it surfaces (first slot or
        mid-coalesce); without re-posting it, the *next* ``next_batch``
        call on a drained queue would block its full timeout even though
        the batcher is closed.  Dropping it on a full queue is fine: the
        closed-check above never blocks once ``closed`` is set.
        """
        try:
            self._queue.put_nowait(_CLOSED)
        except queue.Full:
            pass

    def drain(self) -> List[PendingRequest]:
        """Remove and return everything still queued (used on shutdown)."""
        drained = []
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return drained
            if item is not _CLOSED:
                drained.append(item)

    def close(self) -> None:
        """Stop accepting requests and unblock a waiting worker.

        Taking the submit lock guarantees that once ``close()`` returns, no
        in-flight ``submit`` can still land a request: every submitter has
        either enqueued already (a later ``drain()`` will see it) or will
        observe ``closed`` and raise.
        """
        with self._submit_lock:
            if self._closed.is_set():
                return
            self._closed.set()
            try:
                # Sentinel wakes a worker blocked in next_batch.  On a full
                # queue the sentinel is dropped -- workers must therefore
                # poll with a finite timeout and re-check ``closed`` (the
                # service worker loop does).
                self._queue.put_nowait(_CLOSED)
            except queue.Full:
                pass
