"""Dynamic micro-batching: a bounded request queue with time/size coalescing.

The batcher is the heart of the serving layer's throughput win: requests
arriving within a short window are coalesced into one padded batch so the
encoder (and the adaptive Softermax kernel under it) amortizes per-call
overhead over many requests.  Policy:

* a batch closes as soon as it holds ``max_batch_size`` requests, or
* ``max_wait_ms`` after its *first* request was dequeued, whichever comes
  first -- so a lone request never waits longer than the coalescing window,
  and a burst never waits at all.

The queue is bounded (``max_queue_depth``); when it is full, ``submit``
raises :class:`QueueFullError` immediately instead of buffering without
limit -- backpressure is the caller's signal to shed load.

Batch *formation* is also where robustness guarantees are enforced:

* Cancelled or already-completed requests are skipped, so an abandoned
  waiter never consumes a model forward.
* Requests whose deadline has passed are failed with a typed
  :class:`DeadlineExceededError` *before* they reach the model -- a
  timed-out request is shed, not computed and discarded.
* Requests handed back by a supervisor after a worker crash
  (:meth:`MicroBatcher.requeue`) are served ahead of the main queue: they
  are the oldest traffic and must not starve behind fresh arrivals.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Callable, Iterable, List, Optional, Tuple


class QueueFullError(RuntimeError):
    """The bounded request queue is full (shed load or retry later)."""


class ServiceClosedError(RuntimeError):
    """The service/batcher has been stopped and accepts no new requests."""


class DeadlineExceededError(RuntimeError):
    """The request's deadline passed before it could be served."""


class OverloadedError(RuntimeError):
    """Admission control shed this request: the service cannot meet its
    deadline at the current queue depth (graceful degradation, not an
    unbounded-latency queue)."""


class RequestCancelledError(RuntimeError):
    """The request was cancelled by its submitter before completion."""


class WorkerCrashError(RuntimeError):
    """A worker-fatal failure.

    Unlike an ordinary model exception (which fails the affected batch and
    leaves the worker serving), a :class:`WorkerCrashError` means the
    worker itself is broken: a supervised service restarts the worker and
    requeues the in-flight batch; an unsupervised service fails the batch
    and keeps polling.
    """


class PendingRequest:
    """A submitted request: token key plus a completion slot.

    A minimal future: the worker thread completes it with
    :meth:`set_result` / :meth:`set_exception`, the submitting thread
    blocks in :meth:`result`.  Completion is **first-wins**: after a worker
    restart the superseded worker may still finish a batch it was hung on,
    so a request can race two completers -- only the first takes effect
    (both compute the same bits, but the waiter must never observe a
    result slot mutating under it).

    ``deadline`` is an absolute :func:`time.perf_counter` timestamp; the
    batcher fails expired requests with :class:`DeadlineExceededError` at
    batch formation.  :meth:`cancel` withdraws a request the submitter no
    longer wants -- cancelled entries are skipped at batch formation and
    never consume a model forward.
    """

    __slots__ = ("key", "submitted_at", "deadline", "cached", "_clock",
                 "_event", "_result", "_exception", "_lock", "_callbacks",
                 "_cancelled")

    def __init__(self, key: Tuple[int, ...],
                 deadline: Optional[float] = None,
                 clock=time.perf_counter) -> None:
        self.key = key
        self._clock = clock
        self.submitted_at = clock()
        self.deadline = deadline
        self.cached = False
        self._event = threading.Event()
        self._result = None
        self._exception: Optional[BaseException] = None
        self._lock = threading.Lock()
        self._callbacks: List[Callable[["PendingRequest"], None]] = []
        self._cancelled = False

    # ------------------------------------------------------------------ #
    def _complete(self, result, exception: Optional[BaseException]) -> bool:
        """First-wins completion; runs done-callbacks outside the lock."""
        with self._lock:
            if self._event.is_set():
                return False
            self._result = result
            self._exception = exception
            callbacks, self._callbacks = self._callbacks, []
            self._event.set()
        for callback in callbacks:
            callback(self)
        return True

    def set_result(self, value) -> bool:
        """Complete successfully; returns False if already completed."""
        return self._complete(value, None)

    def set_exception(self, exc: BaseException) -> bool:
        """Complete with an error; returns False if already completed."""
        return self._complete(None, exc)

    def cancel(self, exception: Optional[BaseException] = None) -> bool:
        """Withdraw the request; the waiter gets ``exception`` (default
        :class:`RequestCancelledError`).  Returns True if the cancel won
        the completion race -- a False means a worker already answered.
        """
        self._cancelled = True
        return self._complete(
            None, exception or RequestCancelledError("request cancelled"))

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def expired(self, now: Optional[float] = None) -> bool:
        """True when the deadline (if any) has passed."""
        if self.deadline is None:
            return False
        return (self._clock() if now is None else now) >= self.deadline

    def add_done_callback(
            self, callback: Callable[["PendingRequest"], None]) -> None:
        """Run ``callback(self)`` on completion (immediately if done).

        Callbacks fire on the completing thread -- they must be cheap and
        must not block (the daemon uses one to hop the result onto the
        event loop via ``call_soon_threadsafe``).
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None):
        """Block until completed; raises the worker's exception if any."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request not completed within {timeout} seconds")
        if self._exception is not None:
            raise self._exception
        return self._result


#: Queue sentinel that unblocks the worker on close.
_CLOSED = object()

#: Queue sentinel that wakes a blocked worker without carrying a request
#: (posted by ``requeue`` so handed-back requests are noticed promptly).
_WAKE = object()


class MicroBatcher:
    """Bounded queue + size/deadline coalescing into micro-batches.

    Parameters
    ----------
    max_batch_size:
        Largest batch handed to the model in one forward.
    max_wait_ms:
        Longest a dequeued request waits for companions before its batch
        closes.  ``0`` disables coalescing-by-time: a batch is whatever is
        already queued at dequeue time.
    max_queue_depth:
        Bound on queued (not yet dequeued) requests; beyond it ``submit``
        raises :class:`QueueFullError`.
    event_hook:
        Optional ``callable(name, count)`` notified of formation-time
        events (``"deadline_expired"``, ``"skipped_cancelled"``,
        ``"skipped_completed"``, ``"requeued"``) -- the service points it
        at its stats counters.
    """

    def __init__(self, max_batch_size: int = 32, max_wait_ms: float = 2.0,
                 max_queue_depth: int = 1024,
                 event_hook: Optional[Callable[[str, int], None]] = None
                 ) -> None:
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self._queue: "queue.Queue" = queue.Queue(maxsize=max_queue_depth)
        self._closed = threading.Event()
        self._event_hook = event_hook
        # Requests handed back by a supervisor after a worker crash/hang;
        # consumed ahead of the main queue (they are the oldest traffic).
        self._requeued: "deque[PendingRequest]" = deque()
        self._requeue_lock = threading.Lock()
        # Serializes submit against close: without it, a submitter that
        # passed the closed-check could be preempted, have close() + a
        # final drain run to completion, then enqueue into the dead
        # batcher -- a request nothing would ever complete.
        self._submit_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def depth(self) -> int:
        """Approximate number of queued, not yet dequeued requests."""
        return self._queue.qsize() + len(self._requeued)

    def _notify(self, name: str, count: int = 1) -> None:
        if self._event_hook is not None and count:
            self._event_hook(name, count)

    def submit(self, request: PendingRequest) -> None:
        """Enqueue a request; raises on a full queue or a closed batcher."""
        with self._submit_lock:
            if self.closed:
                raise ServiceClosedError("batcher is closed")
            try:
                self._queue.put_nowait(request)
            except queue.Full:
                raise QueueFullError(
                    f"request queue is full ({self._queue.maxsize} pending)"
                ) from None

    def requeue(self, requests: Iterable[PendingRequest]) -> int:
        """Hand crashed-worker requests back for the next batch (head of
        line).  Bypasses the depth bound -- these requests were already
        admitted once and must not be dropped on the floor.  Returns the
        number of requests actually requeued (completed ones are skipped).
        """
        accepted = 0
        with self._requeue_lock:
            for request in requests:
                if request.done():
                    continue
                self._requeued.append(request)
                accepted += 1
        if accepted:
            self._notify("requeued", accepted)
            try:
                # Wake a worker blocked on the main queue; dropped on a
                # full queue, which is fine -- workers poll with a finite
                # timeout.
                self._queue.put_nowait(_WAKE)
            except queue.Full:
                pass
        return accepted

    # ------------------------------------------------------------------ #
    def _pop_requeued(self) -> Optional[PendingRequest]:
        with self._requeue_lock:
            if self._requeued:
                return self._requeued.popleft()
        return None

    def _admit(self, request: PendingRequest) -> bool:
        """Formation-time filter: skip dead entries, expire stale ones."""
        if request.cancelled:
            self._notify("skipped_cancelled")
            return False
        if request.done():
            # Completed by a superseded worker or the cache; nothing to do.
            self._notify("skipped_completed")
            return False
        if request.expired():
            if request.cancel(DeadlineExceededError(
                    "deadline passed before the request reached a batch")):
                self._notify("deadline_expired")
            return False
        return True

    def next_batch(self, timeout: Optional[float] = None
                   ) -> List[PendingRequest]:
        """Dequeue the next micro-batch (worker-thread side).

        Blocks up to ``timeout`` seconds for the first request (forever
        when ``None``); returns ``[]`` on timeout or when the batcher is
        closed and drained.  Once a first request arrives, keeps coalescing
        until the batch is full or ``max_wait_ms`` has passed.  Cancelled,
        already-completed and deadline-expired entries are filtered here,
        before the batch ever reaches the model.
        """
        batch: List[PendingRequest] = []
        coalesce_deadline: Optional[float] = None
        while len(batch) < self.max_batch_size:
            item = self._pop_requeued()
            if item is None:
                try:
                    if batch:
                        remaining = coalesce_deadline - time.perf_counter()
                        if remaining <= 0:
                            item = self._queue.get_nowait()
                        else:
                            item = self._queue.get(timeout=remaining)
                    elif self.closed:
                        # Never block on a closed batcher: hand out whatever
                        # is still queued, but a drained queue means we are
                        # done now, not after the full idle timeout.
                        item = self._queue.get_nowait()
                    else:
                        item = self._queue.get(timeout=timeout)
                except queue.Empty:
                    break
            if item is _CLOSED:
                self._repost_close_sentinel()
                break
            if item is _WAKE:
                # Pure wake-up: loop back and look at the requeue deque.
                continue
            if not self._admit(item):
                continue
            batch.append(item)
            if coalesce_deadline is None:
                coalesce_deadline = time.perf_counter() + self.max_wait_ms / 1e3
        return batch

    def _repost_close_sentinel(self) -> None:
        """Put the consumed ``_CLOSED`` sentinel back for the next reader.

        The sentinel is consumed wherever it surfaces (first slot or
        mid-coalesce); without re-posting it, the *next* ``next_batch``
        call on a drained queue would block its full timeout even though
        the batcher is closed.  Dropping it on a full queue is fine: the
        closed-check above never blocks once ``closed`` is set.
        """
        try:
            self._queue.put_nowait(_CLOSED)
        except queue.Full:
            pass

    def drain(self) -> List[PendingRequest]:
        """Remove and return everything still queued (used on shutdown)."""
        drained = []
        while True:
            item = self._pop_requeued()
            if item is None:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    return drained
            if item is not _CLOSED and item is not _WAKE:
                drained.append(item)

    def close(self) -> None:
        """Stop accepting requests and unblock a waiting worker.

        Taking the submit lock guarantees that once ``close()`` returns, no
        in-flight ``submit`` can still land a request: every submitter has
        either enqueued already (a later ``drain()`` will see it) or will
        observe ``closed`` and raise.
        """
        with self._submit_lock:
            if self._closed.is_set():
                return
            self._closed.set()
            try:
                # Sentinel wakes a worker blocked in next_batch.  On a full
                # queue the sentinel is dropped -- workers must therefore
                # poll with a finite timeout and re-check ``closed`` (the
                # service worker loop does).
                self._queue.put_nowait(_CLOSED)
            except queue.Full:
                pass
