"""Latency and throughput accounting for the inference service.

Latencies are kept in a bounded sliding window (the service is meant to
run indefinitely; unbounded accumulation would be a slow leak), while the
request/batch counters are exact over the service lifetime.  Percentiles
use the nearest-rank method on the window.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Optional, Sequence

#: Default sliding-window size for latency percentiles.
DEFAULT_WINDOW = 4096


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    An empty sample list yields 0.0 rather than raising: a zero-request
    ``serve``/``loadtest`` summary reports zeros, and ad-hoc consumers of
    the stats window cannot blow up on a quiet service.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError("percentile q must be in [0, 100]")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(-(-q / 100.0 * len(ordered) // 1)))  # ceil, 1-based
    return ordered[min(rank, len(ordered)) - 1]


class LatencyStats:
    """Sliding-window latency tracker with lifetime throughput counters."""

    def __init__(self, window: int = DEFAULT_WINDOW,
                 clock=time.perf_counter) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._latencies = deque(maxlen=window)
        # End-to-end latency split by stage: time spent queued/coalescing
        # before the batch forward started, and per-batch model-forward
        # time -- so an encoder fast path shows up in the right column.
        self._queue_waits = deque(maxlen=window)
        self._forwards = deque(maxlen=window)
        self._lock = threading.Lock()
        self._clock = clock
        self.started_at: Optional[float] = None
        self.completed = 0
        self.batches = 0
        self.batched_requests = 0
        self.cache_hits = 0
        # Robustness event counters (deadline sheds, admission-control
        # rejections, supervisor restarts/requeues, ...).  A plain name ->
        # count mapping so new event kinds need no schema change.
        self.events: "Counter[str]" = Counter()
        # Point-in-time gauges (live worker count, degraded flag,
        # snapshot version, ...): last-write-wins values, not counters.
        self.gauges: dict = {}

    def start(self) -> None:
        """Begin a fresh measurement interval.

        Resets the latency window and every counter along with the
        throughput clock, so samples recorded before ``start()`` (e.g. a
        warmup request) can never leak into the reported percentiles.
        """
        with self._lock:
            self.started_at = self._clock()
            self._latencies.clear()
            self._queue_waits.clear()
            self._forwards.clear()
            self.completed = 0
            self.batches = 0
            self.batched_requests = 0
            self.cache_hits = 0
            self.events.clear()

    def record_event(self, name: str, count: int = 1) -> None:
        """Count a robustness event (``"deadline_expired"``,
        ``"overloaded"``, ``"restart"``, ``"requeued"``, ...)."""
        with self._lock:
            self.events[name] += count

    def set_gauge(self, name: str, value) -> None:
        """Set a point-in-time gauge (``"live_workers"``, ``"degraded"``,
        ``"snapshot_version"``, ...); last write wins."""
        with self._lock:
            self.gauges[name] = value

    def forward_p50_seconds(self) -> float:
        """Median recent model-forward time (0.0 with no samples yet).

        The admission controller uses this to estimate how long a newly
        queued request will wait before its batch's forward starts.
        """
        with self._lock:
            forwards = list(self._forwards)
        return percentile(forwards, 50.0)

    def record(self, latency_seconds: float, cached: bool = False,
               queue_wait_seconds: Optional[float] = None) -> None:
        """Record one completed request.

        ``queue_wait_seconds`` is the submit-to-forward-start component of
        the latency (queueing + batch coalescing); cached responses skip
        the queue and record no wait sample.
        """
        with self._lock:
            self._latencies.append(latency_seconds)
            if queue_wait_seconds is not None:
                self._queue_waits.append(queue_wait_seconds)
            self.completed += 1
            if cached:
                self.cache_hits += 1

    def record_batch(self, size: int,
                     forward_seconds: Optional[float] = None) -> None:
        """Record one executed micro-batch of ``size`` requests."""
        with self._lock:
            self.batches += 1
            self.batched_requests += size
            if forward_seconds is not None:
                self._forwards.append(forward_seconds)

    def snapshot(self) -> dict:
        """Current p50/p99/mean latency (ms), stage split, req/s, batches.

        Besides the end-to-end percentiles, the snapshot reports the
        latency *components*: ``queue_wait_p50_ms``/``p99`` (submit until
        the batch forward started) and ``forward_p50_ms``/``p99``
        (per-batch model-forward time), so a faster encoder and a longer
        coalescing window are distinguishable at a glance.
        """
        with self._lock:
            latencies = list(self._latencies)
            queue_waits = list(self._queue_waits)
            forwards = list(self._forwards)
            elapsed = (self._clock() - self.started_at
                       if self.started_at is not None else None)
            completed = self.completed
            batches = self.batches
            batched = self.batched_requests
            cache_hits = self.cache_hits
            events = dict(self.events)
            gauges = dict(self.gauges)
        snap = {
            "events": events,
            "gauges": gauges,
            "completed": completed,
            "cache_hits": cache_hits,
            "batches": batches,
            "mean_batch_size": round(batched / batches, 2) if batches else None,
            "p50_ms": None,
            "p99_ms": None,
            "mean_ms": None,
            "max_ms": None,
            "queue_wait_p50_ms": None,
            "queue_wait_p99_ms": None,
            "forward_p50_ms": None,
            "forward_p99_ms": None,
            "requests_per_second": None,
        }
        if latencies:
            snap["p50_ms"] = round(percentile(latencies, 50.0) * 1e3, 3)
            snap["p99_ms"] = round(percentile(latencies, 99.0) * 1e3, 3)
            snap["mean_ms"] = round(sum(latencies) / len(latencies) * 1e3, 3)
            snap["max_ms"] = round(max(latencies) * 1e3, 3)
        if queue_waits:
            snap["queue_wait_p50_ms"] = round(
                percentile(queue_waits, 50.0) * 1e3, 3)
            snap["queue_wait_p99_ms"] = round(
                percentile(queue_waits, 99.0) * 1e3, 3)
        if forwards:
            snap["forward_p50_ms"] = round(percentile(forwards, 50.0) * 1e3, 3)
            snap["forward_p99_ms"] = round(percentile(forwards, 99.0) * 1e3, 3)
        if elapsed is not None and elapsed > 0:
            snap["requests_per_second"] = round(completed / elapsed, 1)
        return snap
