"""Process-isolated sharded serving over one shared-memory snapshot.

:class:`ShardedInferenceService` keeps the :class:`InferenceService`
surface (``submit``/``infer``/``stop``/``snapshot``/context manager) but
executes model forwards in N worker **processes** instead of one worker
thread.  The failure domain shrinks from "the server" to "one shard": a
segfault-grade worker death (SIGKILL included) costs one batch worth of
latency, never a dropped request and never the service.

Memory stays O(1) in the worker count.  The parent publishes the model's
float64 parameter arrays **once** into a checksummed
:class:`~repro.serving.snapshot.SnapshotBundle`; each worker attaches,
verifies every CRC (refusing a corrupt segment with a typed
:class:`~repro.serving.snapshot.SnapshotCorruptionError` and a dedicated
exit code), rebinds its model to the read-only views zero-copy
(:func:`~repro.infer.plan.bind_snapshot_arrays`) and compiles its
inference plan over them
(:func:`~repro.nn.layers.frozen_array_snapshot` keeps read-only weights
uncopied) -- N plans, ONE copy of the weights.

Supervision generalizes the thread supervisor's machinery per shard:

* **liveness** -- a heartbeat pipe the worker beats on a timer thread;
  a worker whose beats stop while it is otherwise responsive is
  *stalled* and replaced (``policy.stall_timeout_s``);
* **crash** -- ``Process.exitcode`` classifies the death: negative means
  a signal (``worker_kill``), :data:`EXIT_CORRUPT` means the worker
  refused its snapshot (``snapshot_corrupt``), anything else is a plain
  ``worker_crash``;
* **hang** -- a dispatched batch unanswered past ``policy.hang_timeout_s``
  gets the worker SIGKILLed and replaced (``worker_hang``).

On any failure the in-flight batch is requeued head-of-line (admitted
requests are never dropped) and the shard respawns against the *same*
published snapshot -- no re-publish, no window where another shard's
attach could fail.  Restarts are budgeted per shard
(:class:`~repro.serving.supervisor.RestartBudget`, seeded per shard);
a shard that exhausts its budget **degrades** -- it is marked dead and
the remaining shards keep serving (state visible as
:class:`DegradedService` in ``snapshot()`` and the stats gauges) --
rather than failing the service.  Only when every shard is dead does the
service turn terminal with
:class:`~repro.serving.supervisor.SupervisorExhaustedError`.

Chaos coverage injects the process-grade fault kinds
(:data:`~repro.serving.faults.PROCESS_FAULT_KINDS`) inside the worker:
``kill`` SIGKILLs it mid-batch, ``stall`` silences its heartbeat thread,
``corrupt`` verifies a deliberately byte-flipped *copy* of the snapshot
(the shared segment itself stays pristine for the other shards).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import asdict, dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.infer.plan import bind_snapshot_arrays, snapshot_arrays
from repro.serving.batcher import (
    PendingRequest,
    ServiceClosedError,
    WorkerCrashError,
)
from repro.serving.faults import FaultSchedule, FaultyModel
from repro.serving.service import (
    InferenceService,
    ServiceConfig,
    build_encoder_model,
)
from repro.serving.snapshot import (
    SnapshotBundle,
    SnapshotCorruptionError,
    verify_manifest,
)
from repro.serving.supervisor import (
    RestartBudget,
    RestartPolicy,
    SupervisorExhaustedError,
    WorkerHungError,
)

#: Worker poll interval for the per-shard dispatch loops.
_IDLE_POLL_SECONDS = 0.05

#: How long a freshly spawned worker gets to attach + build its model
#: before the supervisor declares the spawn failed (generous: a plan
#: compile on a loaded CI box can take seconds).
_READY_TIMEOUT_S = 60.0

#: Exit code a worker uses for a worker-fatal model error
#: (:class:`~repro.serving.batcher.WorkerCrashError` escaping a forward).
EXIT_CRASH = 3

#: Exit code a worker uses after refusing a corrupt snapshot view.
EXIT_CORRUPT = 13

#: Multiplier separating per-shard fault-schedule seed streams; any
#: constant larger than plausible respawn counts works, prime by habit.
_SHARD_SEED_STRIDE = 1009


class WorkerStalledError(WorkerCrashError):
    """The worker stopped heartbeating past the stall timeout."""


@dataclass(frozen=True)
class DegradedService:
    """Point-in-time description of a partially-dead sharded service."""

    live_workers: int
    dead_shards: Tuple[int, ...]
    restarts_by_shard: Tuple[int, ...]

    def as_dict(self) -> dict:
        return asdict(self)


class _Shard:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = ("index", "budget", "process", "cmd", "beat", "thread",
                 "generation", "ready", "dead", "last_beat",
                 "batch_counter")

    def __init__(self, index: int, budget: RestartBudget) -> None:
        self.index = index
        self.budget = budget
        self.process = None
        self.cmd = None
        self.beat = None
        self.thread: Optional[threading.Thread] = None
        self.generation = 0
        self.ready = False
        self.dead = False
        self.last_beat = time.perf_counter()
        self.batch_counter = 0


# --------------------------------------------------------------------------- #
# worker process
# --------------------------------------------------------------------------- #
def _worker_main(spec: dict, schedule: Optional[FaultSchedule],
                 cmd, beat) -> None:
    """Entry point of one shard worker process.

    Attaches (and verifies) the published snapshot, rebuilds the model
    over zero-copy views, then serves ``("infer", batch_id, keys)``
    messages until ``("stop",)`` or parent death.  Worker-fatal
    conditions exit the *process* with a classifying exit code; ordinary
    model errors are sent back and the worker keeps serving (the PR 3
    isolation semantics, now process-grade).
    """
    try:
        try:
            bundle = SnapshotBundle.attach(spec["manifest"])
        except SnapshotCorruptionError as exc:
            try:
                cmd.send(("fatal", str(exc)))
            except Exception:
                pass
            os._exit(EXIT_CORRUPT)
        model = build_encoder_model(
            model_name=spec["model_name"], kernel=spec["kernel"],
            kernel_options=spec["kernel_options"], seed=spec["seed"])
        bind_snapshot_arrays(model, bundle.arrays())
        stalled = threading.Event()
        if schedule is not None:
            import signal

            def _kill(fault):
                os.kill(os.getpid(), signal.SIGKILL)

            def _stall(fault):
                stalled.set()

            def _corrupt(fault):
                verify_manifest(bundle.corrupted_copy(), spec["manifest"])

            model = FaultyModel(model, schedule, process_hooks={
                "kill": _kill, "stall": _stall, "corrupt": _corrupt})
        stop_beats = threading.Event()

        def _beat_loop() -> None:
            while not stop_beats.is_set():
                if not stalled.is_set():
                    try:
                        beat.send(1)
                    except (BrokenPipeError, OSError):
                        return
                stop_beats.wait(spec["heartbeat_interval_s"])

        beater = threading.Thread(target=_beat_loop, name="shard-heartbeat",
                                  daemon=True)
        beater.start()
        engine_kwargs = spec["engine_kwargs"]
        pad_id = spec["pad_id"]
        cmd.send(("ready", os.getpid()))
        while True:
            try:
                message = cmd.recv()
            except (EOFError, OSError):
                break  # parent is gone; nothing left to serve
            if message[0] == "stop":
                break
            _, batch_id, keys = message
            try:
                outputs = model.encode_ragged(
                    [list(key) for key in keys], pad_id=pad_id,
                    **engine_kwargs)
                cmd.send(("ok", batch_id,
                          [np.asarray(hidden) for hidden in outputs]))
            except SnapshotCorruptionError:
                os._exit(EXIT_CORRUPT)
            except WorkerCrashError:
                os._exit(EXIT_CRASH)
            except Exception as exc:  # noqa: BLE001 - forwarded typed
                cmd.send(("err", batch_id, exc))
        stop_beats.set()
        bundle.close()
    except KeyboardInterrupt:  # pragma: no cover - parent ^C broadcast
        os._exit(0)


# --------------------------------------------------------------------------- #
# parent service
# --------------------------------------------------------------------------- #
class ShardedInferenceService(InferenceService):
    """The :class:`InferenceService` surface over N supervised processes.

    ``model`` is the parent-side instance: its parameters are what gets
    published (once) into the shared-memory snapshot, and its config
    drives submit-time validation.  The parent never runs a forward --
    every batch is dispatched to a shard worker process rebuilt from
    ``model_name``/``kernel``/``kernel_options``/``seed`` and bound to
    the published snapshot.

    ``fault_spec`` (chaos only) is the keyword dict for
    :meth:`~repro.serving.faults.FaultSchedule.from_seed`; each spawn
    draws its own schedule from a seed derived per shard and generation,
    so respawned workers do not replay the exact faults that killed
    their predecessors while the whole run stays reproducible from the
    base seed.
    """

    def __init__(self, model, config: ServiceConfig = ServiceConfig(),
                 policy: RestartPolicy = RestartPolicy(),
                 num_workers: int = 2,
                 model_name: str = "tiny-base", kernel: str = "auto",
                 kernel_options: Optional[dict] = None, seed: int = 0,
                 mp_context: str = "fork",
                 fault_spec: Optional[dict] = None) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        super().__init__(model, config)
        import multiprocessing

        self.policy = policy
        self.num_workers = num_workers
        self._model_name = model_name
        self._kernel = kernel
        self._kernel_options = kernel_options
        self._seed = seed
        self._mp = multiprocessing.get_context(mp_context)
        self._fault_spec = dict(fault_spec) if fault_spec else None
        self._bundle: Optional[SnapshotBundle] = None
        self._shards: List[_Shard] = []
        self._running = False
        # Final-stats carryover: ``run_daemon`` snapshots *after* stop(),
        # so the published-snapshot description outlives the bundle.
        self._bundle_info: Optional[dict] = None
        self._fatal: Optional[BaseException] = None
        # Guards the degrade/terminal transition (reached concurrently
        # from several shard runner threads); pure bookkeeping only.
        self._degrade_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ShardedInferenceService":
        if self._running:
            raise RuntimeError("service already started")
        if self.batcher.closed:
            self.batcher = self._make_batcher()
        self._stopping.clear()
        with self._degrade_lock:
            self._fatal = None
        self.stats.start()
        self._bundle = SnapshotBundle.publish(snapshot_arrays(self.model))
        self._bundle_info = self._bundle.describe()
        self._running = True
        self._shards = [
            _Shard(index, RestartBudget(self.policy,
                                        seed=self.policy.seed + index))
            for index in range(self.num_workers)]
        for shard in self._shards:
            self._spawn(shard)
        for shard in self._shards:
            shard.thread = threading.Thread(
                target=self._shard_loop, args=(shard,),
                name=f"shard-runner-{shard.index}", daemon=True)
            shard.thread.start()
        self._set_health_gauges()
        return self

    def stop(self) -> None:
        """Stop runners and workers; fail the backlog with typed errors.

        Per-shard accounting (restart counts, degradation state) survives
        the stop so a post-shutdown ``snapshot()`` still reports the run.
        """
        if not self._running:
            return
        self._running = False
        self._stopping.set()
        self.batcher.close()
        for shard in self._shards:
            if shard.thread is not None:
                shard.thread.join()
                shard.thread = None
        for shard in self._shards:
            self._shutdown_worker(shard)
        for request in self.batcher.drain():
            request.set_exception(
                ServiceClosedError("service stopped before this request "
                                   "was served"))
        if self._bundle is not None:
            self._bundle.close()
            self._bundle = None

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #
    def _accepting(self) -> bool:
        return self._running

    def submit(self, tokens: Sequence[int],
               deadline_ms: Optional[float] = None) -> PendingRequest:
        terminal = self._fatal
        if terminal is not None:
            raise terminal
        return super().submit(tokens, deadline_ms=deadline_ms)

    def wait_ready(self, timeout: float = 60.0) -> int:
        """Block until every shard is live (or dead), up to ``timeout``.

        Purely a convenience for interactive front ends that want their
        first status line to reflect the steady state instead of the
        boot transient; serving correctness never depends on it -- the
        batcher queues requests while workers boot.  Returns the live
        worker count at return time.
        """
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            shards = list(self._shards)
            settled = sum(1 for s in shards if s.ready or s.dead)
            if shards and settled == len(shards):
                break
            time.sleep(0.01)
        return self.snapshot()["live_workers"]

    def degraded(self) -> Optional[DegradedService]:
        """The degradation state, or ``None`` while every shard lives."""
        shards = list(self._shards)
        dead = tuple(s.index for s in shards if s.dead)
        if not dead:
            return None
        return DegradedService(
            live_workers=len(shards) - len(dead),
            dead_shards=dead,
            restarts_by_shard=tuple(s.budget.restarts for s in shards))

    def snapshot(self) -> dict:
        snap = super().snapshot()
        shards = list(self._shards)
        snap["sharded"] = True
        snap["supervised"] = True
        snap["workers"] = self.num_workers
        snap["live_workers"] = sum(
            1 for s in shards if not s.dead and s.ready)
        snap["restarts"] = sum(s.budget.restarts for s in shards)
        snap["max_restarts"] = self.policy.max_restarts * self.num_workers
        snap["restarts_by_shard"] = [s.budget.restarts for s in shards]
        degraded = self.degraded()
        snap["degraded"] = None if degraded is None else degraded.as_dict()
        snap["terminal"] = (type(self._fatal).__name__
                            if self._fatal is not None else None)
        if self._bundle_info is not None:
            snap["snapshot"] = dict(self._bundle_info)
        return snap

    # ------------------------------------------------------------------ #
    # spawn / teardown
    # ------------------------------------------------------------------ #
    def _draw_schedule(self, shard: _Shard) -> Optional[FaultSchedule]:
        if self._fault_spec is None:
            return None
        spec = dict(self._fault_spec)
        base = int(spec.pop("seed", 0))
        derived = (base + _SHARD_SEED_STRIDE * shard.index
                   + shard.generation - 1)
        return FaultSchedule.from_seed(derived, **spec)

    def _spawn(self, shard: _Shard) -> None:
        shard.generation += 1
        shard.ready = False
        schedule = self._draw_schedule(shard)
        parent_cmd, child_cmd = self._mp.Pipe(duplex=True)
        parent_beat, child_beat = self._mp.Pipe(duplex=False)
        spec = {
            "manifest": self._bundle.manifest,
            "model_name": self._model_name,
            "kernel": self._kernel,
            "kernel_options": self._kernel_options,
            "seed": self._seed,
            "engine_kwargs": dict(self._engine_kwargs),
            "pad_id": self.config.pad_id,
            "heartbeat_interval_s": self.policy.heartbeat_interval_s,
        }
        process = self._mp.Process(
            target=_worker_main,
            args=(spec, schedule, child_cmd, child_beat),
            name=f"shard-{shard.index}-gen{shard.generation}",
            daemon=True)
        process.start()
        child_cmd.close()
        child_beat.close()
        shard.process = process
        shard.cmd = parent_cmd
        shard.beat = parent_beat
        shard.last_beat = time.perf_counter()

    def _close_pipes(self, shard: _Shard) -> None:
        for conn in (shard.cmd, shard.beat):
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass
        shard.cmd = None
        shard.beat = None

    def _kill(self, shard: _Shard) -> None:
        process = shard.process
        if process is None:
            return
        if process.is_alive():
            process.kill()
        process.join(timeout=5.0)

    def _shutdown_worker(self, shard: _Shard) -> None:
        process = shard.process
        if process is None:
            return
        try:
            if shard.cmd is not None:
                shard.cmd.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        process.join(timeout=2.0)
        if process.is_alive():  # pragma: no cover - stuck worker
            process.kill()
            process.join(timeout=5.0)
        self._close_pipes(shard)
        shard.process = None
        shard.ready = False

    # ------------------------------------------------------------------ #
    # supervision
    # ------------------------------------------------------------------ #
    def _classify_exit(self, exitcode: Optional[int]
                       ) -> Tuple[str, BaseException]:
        if exitcode is not None and exitcode < 0:
            return "worker_kill", WorkerCrashError(
                f"worker killed by signal {-exitcode}")
        if exitcode == EXIT_CORRUPT:
            return "snapshot_corrupt", SnapshotCorruptionError(
                "worker refused a corrupt snapshot view and exited")
        return "worker_crash", WorkerCrashError(
            f"worker exited unexpectedly with code {exitcode}")

    def _drain_beats(self, shard: _Shard) -> None:
        beat = shard.beat
        if beat is None:
            return
        try:
            while beat.poll(0):
                beat.recv()
                shard.last_beat = time.perf_counter()
        except (EOFError, OSError):
            pass  # dead worker; the exitcode check classifies it

    def _health_failure(self, shard: _Shard
                        ) -> Optional[Tuple[str, BaseException]]:
        exitcode = shard.process.exitcode
        if exitcode is not None:
            return self._classify_exit(exitcode)
        if (time.perf_counter() - shard.last_beat
                > self.policy.stall_timeout_s):
            return "worker_stall", WorkerStalledError(
                f"worker stopped heartbeating for > "
                f"{self.policy.stall_timeout_s:.2f}s")
        return None

    def _shard_loop(self, shard: _Shard) -> None:
        while not self._stopping.is_set() and not shard.dead:
            if not shard.ready:
                self._await_ready(shard)
                continue
            self._drain_beats(shard)
            failure = self._health_failure(shard)
            if failure is not None:
                self._handle_failure(shard, *failure, pending=[])
                continue
            batch = self.batcher.next_batch(timeout=_IDLE_POLL_SECONDS)
            if self._stopping.is_set():
                if batch:
                    self.batcher.requeue(batch)
                return
            if not batch:
                continue
            live, keys = self._form_batch(batch)
            if not live:
                continue
            self._dispatch(shard, live, keys)

    def _await_ready(self, shard: _Shard) -> None:
        deadline = time.perf_counter() + _READY_TIMEOUT_S
        while not self._stopping.is_set():
            message = None
            try:
                if shard.cmd.poll(self.policy.heartbeat_interval_s):
                    message = shard.cmd.recv()
            except (EOFError, OSError):
                pass
            if message is not None and message[0] == "ready":
                shard.ready = True
                shard.last_beat = time.perf_counter()
                self._set_health_gauges()
                return
            # A ("fatal", reason) message precedes a classifying exit;
            # fall through and let the exitcode name the failure.
            exitcode = shard.process.exitcode
            if exitcode is not None:
                self._handle_failure(shard, *self._classify_exit(exitcode),
                                     pending=[])
                return
            if time.perf_counter() > deadline:
                self._kill(shard)
                self._handle_failure(
                    shard, "worker_hang",
                    WorkerHungError(
                        f"worker not ready within {_READY_TIMEOUT_S:.0f}s"),
                    pending=[])
                return

    def _dispatch(self, shard: _Shard,
                  live: List[PendingRequest], keys: List[tuple]) -> None:
        shard.batch_counter += 1
        batch_id = shard.batch_counter
        forward_start = time.perf_counter()
        hang_deadline = forward_start + self.policy.hang_timeout_s
        try:
            shard.cmd.send(("infer", batch_id, keys))
        except (BrokenPipeError, OSError):
            shard.process.join(timeout=self.policy.hang_timeout_s)
            self._handle_failure(
                shard, *self._classify_exit(shard.process.exitcode),
                pending=live)
            return
        while True:
            message = None
            try:
                if shard.cmd.poll(self.policy.heartbeat_interval_s):
                    message = shard.cmd.recv()
            except (EOFError, OSError):
                pass  # classified below via exitcode
            if message is not None:
                kind = message[0]
                if kind == "ok" and message[1] == batch_id:
                    self._complete_batch(live, keys, message[2],
                                         forward_start)
                    return
                if kind == "err" and message[1] == batch_id:
                    for request in live:
                        request.set_exception(message[2])
                    return
                continue  # stale response from a superseded batch
            if self._stopping.is_set():
                # Shutdown mid-flight: hand the batch back; stop() fails
                # it (typed) from the drain.
                self.batcher.requeue(live)
                return
            exitcode = shard.process.exitcode
            if exitcode is not None:
                self._handle_failure(shard, *self._classify_exit(exitcode),
                                     pending=live)
                return
            self._drain_beats(shard)
            now = time.perf_counter()
            if now > hang_deadline:
                self._kill(shard)
                self._handle_failure(
                    shard, "worker_hang",
                    WorkerHungError(
                        f"worker hung > {self.policy.hang_timeout_s:.2f}s "
                        "inside a dispatched batch"),
                    pending=live)
                return
            if now - shard.last_beat > self.policy.stall_timeout_s:
                self._kill(shard)
                self._handle_failure(
                    shard, "worker_stall",
                    WorkerStalledError(
                        "worker stopped heartbeating for > "
                        f"{self.policy.stall_timeout_s:.2f}s mid-batch"),
                    pending=live)
                return

    def _handle_failure(self, shard: _Shard, event: str,
                        exc: BaseException,
                        pending: List[PendingRequest]) -> None:
        self.stats.record_event(event)
        self._kill(shard)
        self._close_pipes(shard)
        stranded = [r for r in pending if not r.done()]
        if stranded:
            # Head of the line: these were admitted first; the *other*
            # shards can serve them while this one respawns.
            self.batcher.requeue(stranded)
        if shard.budget.exhausted:
            self._degrade(shard, exc)
            return
        self.stats.record_event("restart")
        delay = shard.budget.next_backoff()
        if self._stopping.wait(delay):
            return
        self._spawn(shard)
        self._set_health_gauges()

    def _degrade(self, shard: _Shard, exc: BaseException) -> None:
        terminal: Optional[SupervisorExhaustedError] = None
        with self._degrade_lock:
            shard.dead = True
            if (self._fatal is None
                    and all(s.dead for s in self._shards)):
                terminal = SupervisorExhaustedError(
                    f"all {self.num_workers} shards exhausted their "
                    f"restart budgets "
                    f"({self.policy.max_restarts} each): {exc}")
                terminal.__cause__ = exc
                self._fatal = terminal
        self.stats.record_event("shard_degraded")
        self._set_health_gauges()
        if terminal is None:
            return
        self.stats.record_event("terminal")
        self.batcher.close()
        for request in self.batcher.drain():
            request.set_exception(terminal)

    def _set_health_gauges(self) -> None:
        shards = list(self._shards)
        self.stats.set_gauge(
            "live_workers",
            sum(1 for s in shards if not s.dead and s.ready))
        self.stats.set_gauge("degraded", any(s.dead for s in shards))
        bundle = self._bundle
        if bundle is not None:
            self.stats.set_gauge("snapshot_version", bundle.version)
            self.stats.set_gauge("snapshot_checksum",
                                 f"{bundle.checksum:#010x}")


def build_sharded_service(
    model_name: str = "tiny-base",
    kernel: str = "auto",
    kernel_options: Optional[dict] = None,
    seed: int = 0,
    config: ServiceConfig = ServiceConfig(),
    policy: RestartPolicy = RestartPolicy(),
    num_workers: int = 2,
    mp_context: str = "fork",
    fault_spec: Optional[dict] = None,
) -> ShardedInferenceService:
    """Construct a :class:`ShardedInferenceService` over a Softermax BERT
    encoder (see :func:`~repro.serving.service.build_encoder_model`); the
    same builder arguments rebuild the model inside every worker, which
    then rebinds to the published snapshot."""
    model = build_encoder_model(model_name=model_name, kernel=kernel,
                                kernel_options=kernel_options, seed=seed)
    return ShardedInferenceService(
        model, config, policy, num_workers=num_workers,
        model_name=model_name, kernel=kernel,
        kernel_options=kernel_options, seed=seed,
        mp_context=mp_context, fault_spec=fault_spec)
