"""The asyncio TCP serving daemon: many open-loop clients, one batcher.

``serve`` (the stdin loop) demonstrates the service; this module *deploys*
it: an :mod:`asyncio` TCP front end speaking a line-delimited JSON
protocol, multiplexing any number of concurrent client connections into
the one :class:`~repro.serving.supervisor.SupervisedService` --
micro-batching, response cache, supervision and deadline plumbing
included.  The bridge between the async front end and the threaded worker
is a single done-callback per request
(:meth:`~repro.serving.batcher.PendingRequest.add_done_callback` hopping
the completion onto the event loop via ``call_soon_threadsafe``), so a
pending request costs no thread and no poll.

Protocol (one JSON object per line, UTF-8, ``\\n``-terminated)::

    -> {"op": "infer", "id": "r1", "tokens": [3, 1, 4], "deadline_ms": 250}
    <- {"id": "r1", "ok": true, "shape": [3, 64], "hidden": [[...], ...],
        "cached": false}

    -> {"op": "ping"}
    <- {"ok": true, "op": "ping", "protocol": 1}

    -> {"op": "stats"}
    <- {"ok": true, "op": "stats", "stats": {...service snapshot...}}

``op`` defaults to ``"infer"`` when ``tokens`` is present.  Failures are
**typed**, never silent::

    <- {"id": "r1", "ok": false, "error": "DeadlineExceeded",
        "message": "..."}

with ``error`` one of ``DeadlineExceeded`` (the deadline passed while
queued), ``Overloaded`` (admission control shed the request up front),
``QueueFull`` (backpressure), ``ServiceClosed``, ``SupervisorExhausted``
(restart budget spent), ``InvalidRequest`` (bad JSON / tokens / knobs) or
``InternalError``.  Hidden states ride as JSON numbers, which round-trip
float64 exactly -- responses over the wire are **bitwise** identical to
solo in-process inference, restarts included.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Set

from repro.serving.batcher import (
    DeadlineExceededError,
    OverloadedError,
    PendingRequest,
    QueueFullError,
    RequestCancelledError,
    ServiceClosedError,
    WorkerCrashError,
)
from repro.serving.supervisor import SupervisorExhaustedError

#: Wire protocol version, reported by ``ping``.
PROTOCOL_VERSION = 1

#: Longest accepted request line (bytes); a 32k-token request is ~200 kB.
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Exception type -> wire error code, most specific first.
_ERROR_CODES = (
    (DeadlineExceededError, "DeadlineExceeded"),
    (OverloadedError, "Overloaded"),
    (QueueFullError, "QueueFull"),
    (SupervisorExhaustedError, "SupervisorExhausted"),
    (ServiceClosedError, "ServiceClosed"),
    (RequestCancelledError, "RequestCancelled"),
    (WorkerCrashError, "WorkerCrash"),
    (ValueError, "InvalidRequest"),
    (TypeError, "InvalidRequest"),
)


def error_code(exc: BaseException) -> str:
    """Map an exception to its typed wire error code."""
    for exc_type, code in _ERROR_CODES:
        if isinstance(exc, exc_type):
            return code
    return "InternalError"


def _error_response(exc: BaseException, request_id=None) -> dict:
    response = {"ok": False, "error": error_code(exc), "message": str(exc)}
    if request_id is not None:
        response["id"] = request_id
    return response


class ServingDaemon:
    """TCP front end over an (ideally supervised) inference service.

    Parameters
    ----------
    service:
        A started-or-startable :class:`~repro.serving.service.
        InferenceService`; the daemon owns its lifecycle (started in
        :meth:`start`, stopped -- with its typed backlog drain -- in
        :meth:`stop`).
    host / port:
        Bind address; ``port=0`` picks a free port, readable from
        :attr:`port` after :meth:`start`.
    """

    def __init__(self, service, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._writers: Set[asyncio.StreamWriter] = set()
        self.connections_total = 0
        self.requests_total = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "ServingDaemon":
        if self._server is not None:
            raise RuntimeError("daemon already started")
        self._loop = asyncio.get_running_loop()
        self.service.start()
        # Sharded services boot worker processes asynchronously; don't
        # announce the listening socket until the shards settle so the
        # first stats reply reflects steady state, not the boot transient.
        wait_ready = getattr(self.service, "wait_ready", None)
        if wait_ready is not None:
            wait_ready()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Graceful shutdown: stop intake, resolve every pending request
        (typed), then close client connections."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        # service.stop() joins worker threads and fails the backlog with
        # typed errors; pending daemon futures resolve via done-callbacks.
        # Run it off-loop: the join can wait out a hung worker's timeout.
        await asyncio.get_running_loop().run_in_executor(
            None, self.service.stop)
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        self.connections_total += 1
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(writer, {
                        "ok": False, "error": "InvalidRequest",
                        "message": f"request line exceeds "
                                   f"{MAX_LINE_BYTES} bytes"})
                    break
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                response = await self._dispatch_line(line)
                await self._send(writer, response)
        except (ConnectionResetError, BrokenPipeError,
                asyncio.CancelledError):
            pass
        finally:
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _send(self, writer: asyncio.StreamWriter,
                    response: dict) -> None:
        writer.write(json.dumps(response).encode("utf-8") + b"\n")
        await writer.drain()

    async def _dispatch_line(self, line: bytes) -> dict:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            return {"ok": False, "error": "InvalidRequest",
                    "message": f"not a JSON request line: {exc}"}
        if not isinstance(payload, dict):
            return {"ok": False, "error": "InvalidRequest",
                    "message": "a request must be a JSON object"}
        op = payload.get("op", "infer" if "tokens" in payload else None)
        request_id = payload.get("id")
        if op == "ping":
            return {"ok": True, "op": "ping", "protocol": PROTOCOL_VERSION}
        if op == "stats":
            return {"ok": True, "op": "stats",
                    "stats": self.service.snapshot()}
        if op == "infer":
            return await self._infer(payload, request_id)
        return {"ok": False, "error": "InvalidRequest", "id": request_id,
                "message": f"unknown op {op!r} (choose infer, ping, stats)"}

    async def _infer(self, payload: dict, request_id) -> dict:
        tokens = payload.get("tokens")
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is not None \
                and not isinstance(deadline_ms, (int, float)):
            return {"ok": False, "error": "InvalidRequest", "id": request_id,
                    "message": "deadline_ms must be a number"}
        if not isinstance(tokens, list):
            return {"ok": False, "error": "InvalidRequest", "id": request_id,
                    "message": "tokens must be a list of token ids"}
        self.requests_total += 1
        try:
            request = self.service.submit(tokens, deadline_ms=deadline_ms)
        except Exception as exc:  # noqa: BLE001 - typed on the wire
            return _error_response(exc, request_id)
        future: "asyncio.Future" = self._loop.create_future()

        def _on_done(completed: PendingRequest,
                     loop=self._loop, fut=future) -> None:
            # Runs on the completing (worker/supervisor) thread: hop back
            # onto the event loop; the loop may already be gone on a
            # hard teardown, in which case the response is moot.
            try:
                loop.call_soon_threadsafe(_resolve_future, fut, completed)
            except RuntimeError:  # pragma: no cover - loop closed
                pass

        request.add_done_callback(_on_done)
        completed = await future
        try:
            hidden = completed.result(timeout=0)
        except Exception as exc:  # noqa: BLE001 - typed on the wire
            return _error_response(exc, request_id)
        return {
            "id": request_id,
            "ok": True,
            "shape": list(hidden.shape),
            "hidden": hidden.tolist(),
            "cached": completed.cached,
        }


def _resolve_future(future: "asyncio.Future",
                    request: PendingRequest) -> None:
    if not future.done():
        future.set_result(request)


# ---------------------------------------------------------------------- #
# blocking entry points (CLI)
# ---------------------------------------------------------------------- #
def run_daemon(service, host: str = "127.0.0.1", port: int = 0,
               announce=print) -> dict:
    """Run the daemon until SIGINT/SIGTERM; returns the final snapshot.

    Shutdown is graceful: intake stops, the backlog resolves with typed
    errors, client connections close, and the final service snapshot is
    returned for the CLI to print -- exit code 0, not a traceback.
    """
    import signal

    async def _amain() -> dict:
        daemon = ServingDaemon(service, host=host, port=port)
        await daemon.start()
        loop = asyncio.get_running_loop()
        stop_event = asyncio.Event()
        registered = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop_event.set)
                registered.append(signum)
            except (NotImplementedError, ValueError):  # pragma: no cover
                pass  # non-main thread / exotic platform: Ctrl-C only
        announce(f"serving daemon listening on {daemon.host}:{daemon.port} "
                 f"(protocol v{PROTOCOL_VERSION}); SIGINT/SIGTERM for "
                 "graceful shutdown")
        try:
            await stop_event.wait()
        finally:
            for signum in registered:
                loop.remove_signal_handler(signum)
            await daemon.stop()
        snapshot = service.snapshot()
        snapshot["connections_total"] = daemon.connections_total
        snapshot["daemon_requests_total"] = daemon.requests_total
        return snapshot

    return asyncio.run(_amain())


async def _smoke_client(host: str, port: int, requests) -> list:
    reader, writer = await asyncio.open_connection(host, port)
    responses = []
    try:
        writer.write(b'{"op": "ping"}\n')
        await writer.drain()
        ping = json.loads(await reader.readline())
        if not (ping.get("ok") and ping.get("protocol") == PROTOCOL_VERSION):
            raise AssertionError(f"bad ping response: {ping}")
        for index, tokens in enumerate(requests):
            payload = {"op": "infer", "id": f"smoke-{index}",
                       "tokens": list(tokens)}
            writer.write(json.dumps(payload).encode() + b"\n")
        await writer.drain()
        for _ in requests:
            responses.append(json.loads(await reader.readline()))
        writer.write(b'{"op": "stats"}\n')
        await writer.drain()
        responses.append(json.loads(await reader.readline()))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
    return responses


def daemon_smoke(service, num_requests: int = 6,
                 reference_model=None) -> dict:
    """Start the daemon, round-trip ``num_requests`` over a real socket,
    shut down cleanly; asserts wire responses are bitwise identical to
    solo in-process inference.  Returns a summary dict (used by the CI
    smoke and ``repro.cli daemon --smoke``).
    """
    import numpy as np

    from repro.serving.loadtest import synthetic_requests

    requests = synthetic_requests(num_requests, seed=23)

    async def _amain() -> dict:
        daemon = ServingDaemon(service)
        await daemon.start()
        try:
            responses = await _smoke_client(daemon.host, daemon.port,
                                            requests)
        finally:
            await daemon.stop()
        stats = responses.pop()
        assert stats.get("ok") and "stats" in stats, stats
        model = reference_model if reference_model is not None \
            else service.model
        for tokens, response in zip(requests, responses):
            if not response.get("ok"):
                raise AssertionError(f"smoke request failed: {response}")
            served = np.asarray(response["hidden"], dtype=np.float64)
            solo = model.encode_ragged([list(tokens)])[0]
            if not np.array_equal(served, solo):
                raise AssertionError(
                    "daemon response diverged from solo inference; "
                    "wire bit-transparency is broken")
        return {
            "requests": len(requests),
            "ok": sum(1 for r in responses if r.get("ok")),
            "bitwise_identical_to_solo": True,
            "completed": stats["stats"]["completed"],
            "connections_total": daemon.connections_total,
        }

    return asyncio.run(_amain())
