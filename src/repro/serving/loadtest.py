"""Synthetic open-loop load generator for the inference service.

One knob matters for the headline: ``batch_size``.  The same open-loop
client (submit the whole request set up front, wait for everything) is run
against a service configured with ``max_batch_size=1`` (sequential
single-request serving -- the worker computes one request per forward) and
``max_batch_size=N`` (dynamic batching); the throughput ratio is the
serving layer's win.  Both the ``loadtest`` CLI command and
``benchmarks/bench_serving.py`` drive this module, so the demonstrated and
the recorded numbers come from the same harness.

The default workload models the short-query regime serving optimizes for
(classification/QA-style requests of 8-16 tokens); request sets are unique
by default and the response cache is disabled so the measured win is pure
batching, not memoization.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.service import InferenceService, ServiceConfig, \
    build_encoder_service

#: Default synthetic workload: short-query lengths (inclusive bounds).
DEFAULT_MIN_TOKENS = 8
DEFAULT_MAX_TOKENS = 16


@dataclass(frozen=True)
class LoadtestResult:
    """One measured serving configuration.

    Latency is reported end-to-end (``p50_ms``/``p99_ms``) and split into
    its stages: queue wait (submit until the batch forward started, i.e.
    queueing + coalescing) and model forward (per-batch encoder time), so
    engine-level speedups and batching-policy effects are separately
    visible.
    """

    batch_size: int
    max_wait_ms: float
    requests: int
    elapsed_seconds: float
    requests_per_second: float
    p50_ms: Optional[float]
    p99_ms: Optional[float]
    queue_wait_p50_ms: Optional[float]
    queue_wait_p99_ms: Optional[float]
    forward_p50_ms: Optional[float]
    forward_p99_ms: Optional[float]
    mean_batch_size: Optional[float]
    cache_hit_rate: float
    engine: str

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def synthetic_requests(
    num_requests: int,
    min_tokens: int = DEFAULT_MIN_TOKENS,
    max_tokens: int = DEFAULT_MAX_TOKENS,
    vocab_size: int = 32,
    seed: int = 0,
    duplicate_fraction: float = 0.0,
) -> List[Tuple[int, ...]]:
    """Generate a deterministic synthetic request set.

    ``duplicate_fraction`` > 0 resubmits earlier requests (uniformly) for
    that fraction of the set, to exercise the response cache and in-batch
    deduplication; the default of 0 keeps every request unique.
    """
    if not 1 <= min_tokens <= max_tokens:
        raise ValueError("need 1 <= min_tokens <= max_tokens")
    if not 0.0 <= duplicate_fraction <= 1.0:
        raise ValueError("duplicate_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    requests: List[Tuple[int, ...]] = []
    for i in range(num_requests):
        if requests and rng.random() < duplicate_fraction:
            requests.append(requests[int(rng.integers(len(requests)))])
            continue
        length = int(rng.integers(min_tokens, max_tokens + 1))
        # Token 0 is the pad id; keep synthetic tokens clear of it.
        requests.append(tuple(
            int(t) for t in rng.integers(1, vocab_size, size=length)))
    return requests


def run_loadtest(
    requests: Sequence[Tuple[int, ...]],
    batch_size: int,
    max_wait_ms: float = 2.0,
    cache_size: int = 0,
    service: Optional[InferenceService] = None,
    model_name: str = "tiny-base",
    kernel: str = "auto",
    kernel_options: Optional[dict] = None,
    engine: str = "plan",
    block_kv: Optional[int] = None,
    seed: int = 0,
    timeout: float = 300.0,
) -> LoadtestResult:
    """Open-loop run: submit every request up front, wait for all results.

    Builds a fresh encoder service unless ``service`` is supplied (the
    caller then owns its lifecycle and the batching knobs are read from
    it).  ``engine`` selects the encoder forward implementation
    (``"plan"`` -- the graph-free fast path -- or ``"graph"``); a non-None
    ``block_kv`` serves requests through the chunked O(block)-memory
    attention path.  Returns the measured :class:`LoadtestResult`.
    """
    if not requests:
        raise ValueError("run_loadtest needs a non-empty request set")
    own_service = service is None
    if own_service:
        config = ServiceConfig(max_batch_size=batch_size,
                               max_wait_ms=max_wait_ms,
                               max_queue_depth=len(requests) + 1,
                               cache_size=cache_size,
                               engine=engine,
                               block_kv=block_kv)
        service = build_encoder_service(model_name=model_name, kernel=kernel,
                                        kernel_options=kernel_options,
                                        seed=seed, config=config)
    else:
        batch_size = service.config.max_batch_size
        max_wait_ms = service.config.max_wait_ms
    try:
        if own_service:
            service.start()
        # Warm the kernel LUTs/pools outside the timed window.
        service.infer(requests[0], timeout=timeout)
        service.cache.clear()
        service.stats.start()
        start = time.perf_counter()
        pending = [service.submit(tokens) for tokens in requests]
        for request in pending:
            request.result(timeout)
        elapsed = max(time.perf_counter() - start, 1e-9)
        snap = service.snapshot()
    finally:
        if own_service:
            service.stop()
    return LoadtestResult(
        batch_size=batch_size,
        max_wait_ms=max_wait_ms,
        requests=len(requests),
        elapsed_seconds=round(elapsed, 4),
        requests_per_second=round(len(requests) / elapsed, 1),
        p50_ms=snap["p50_ms"],
        p99_ms=snap["p99_ms"],
        queue_wait_p50_ms=snap["queue_wait_p50_ms"],
        queue_wait_p99_ms=snap["queue_wait_p99_ms"],
        forward_p50_ms=snap["forward_p50_ms"],
        forward_p99_ms=snap["forward_p99_ms"],
        mean_batch_size=snap["mean_batch_size"],
        cache_hit_rate=snap["cache"]["hit_rate"],
        engine=snap["engine"],
    )


def batched_vs_sequential(
    num_requests: int = 512,
    batch_size: int = 32,
    max_wait_ms: float = 2.0,
    min_tokens: int = DEFAULT_MIN_TOKENS,
    max_tokens: int = DEFAULT_MAX_TOKENS,
    model_name: str = "tiny-base",
    kernel: str = "auto",
    engine: str = "plan",
    block_kv: Optional[int] = None,
    seed: int = 0,
    duplicate_fraction: float = 0.0,
    cache_size: int = 0,
) -> dict:
    """The acceptance comparison: one workload, two batching configs.

    Returns a payload with the sequential (``max_batch_size=1``) and
    batched results plus their throughput ratio.
    """
    requests = synthetic_requests(num_requests, min_tokens, max_tokens,
                                  seed=seed,
                                  duplicate_fraction=duplicate_fraction)
    sequential = run_loadtest(requests, batch_size=1, max_wait_ms=0.0,
                              cache_size=cache_size, model_name=model_name,
                              kernel=kernel, engine=engine,
                              block_kv=block_kv, seed=seed)
    batched = run_loadtest(requests, batch_size=batch_size,
                           max_wait_ms=max_wait_ms, cache_size=cache_size,
                           model_name=model_name, kernel=kernel,
                           engine=engine, block_kv=block_kv, seed=seed)
    ratio = (batched.requests_per_second
             / max(sequential.requests_per_second, 1e-9))
    return {
        "workload": {
            "requests": num_requests,
            "min_tokens": min_tokens,
            "max_tokens": max_tokens,
            "duplicate_fraction": duplicate_fraction,
            "model": model_name,
            "kernel": kernel,
            "engine": engine,
            "block_kv": block_kv,
            "seed": seed,
        },
        "sequential": sequential.as_dict(),
        "batched": batched.as_dict(),
        "speedup_batched_vs_sequential": round(ratio, 2),
    }
