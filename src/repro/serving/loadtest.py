"""Synthetic open-loop load generator for the inference service.

One knob matters for the headline: ``batch_size``.  The same open-loop
client (submit the whole request set up front, wait for everything) is run
against a service configured with ``max_batch_size=1`` (sequential
single-request serving -- the worker computes one request per forward) and
``max_batch_size=N`` (dynamic batching); the throughput ratio is the
serving layer's win.  Both the ``loadtest`` CLI command and
``benchmarks/bench_serving.py`` drive this module, so the demonstrated and
the recorded numbers come from the same harness.

The default workload models the short-query regime serving optimizes for
(classification/QA-style requests of 8-16 tokens); request sets are unique
by default and the response cache is disabled so the measured win is pure
batching, not memoization.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.service import InferenceService, ServiceConfig, \
    build_encoder_model, build_encoder_service

#: Default synthetic workload: short-query lengths (inclusive bounds).
DEFAULT_MIN_TOKENS = 8
DEFAULT_MAX_TOKENS = 16


@dataclass(frozen=True)
class LoadtestResult:
    """One measured serving configuration.

    Latency is reported end-to-end (``p50_ms``/``p99_ms``) and split into
    its stages: queue wait (submit until the batch forward started, i.e.
    queueing + coalescing) and model forward (per-batch encoder time), so
    engine-level speedups and batching-policy effects are separately
    visible.
    """

    batch_size: int
    max_wait_ms: float
    requests: int
    elapsed_seconds: float
    requests_per_second: float
    p50_ms: Optional[float]
    p99_ms: Optional[float]
    queue_wait_p50_ms: Optional[float]
    queue_wait_p99_ms: Optional[float]
    forward_p50_ms: Optional[float]
    forward_p99_ms: Optional[float]
    mean_batch_size: Optional[float]
    cache_hit_rate: float
    engine: str

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def synthetic_requests(
    num_requests: int,
    min_tokens: int = DEFAULT_MIN_TOKENS,
    max_tokens: int = DEFAULT_MAX_TOKENS,
    vocab_size: int = 32,
    seed: int = 0,
    duplicate_fraction: float = 0.0,
) -> List[Tuple[int, ...]]:
    """Generate a deterministic synthetic request set.

    ``duplicate_fraction`` > 0 resubmits earlier requests (uniformly) for
    that fraction of the set, to exercise the response cache and in-batch
    deduplication; the default of 0 keeps every request unique.
    """
    if not 1 <= min_tokens <= max_tokens:
        raise ValueError("need 1 <= min_tokens <= max_tokens")
    if not 0.0 <= duplicate_fraction <= 1.0:
        raise ValueError("duplicate_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    requests: List[Tuple[int, ...]] = []
    for i in range(num_requests):
        if requests and rng.random() < duplicate_fraction:
            requests.append(requests[int(rng.integers(len(requests)))])
            continue
        length = int(rng.integers(min_tokens, max_tokens + 1))
        # Token 0 is the pad id; keep synthetic tokens clear of it.
        requests.append(tuple(
            int(t) for t in rng.integers(1, vocab_size, size=length)))
    return requests


def run_loadtest(
    requests: Sequence[Tuple[int, ...]],
    batch_size: int,
    max_wait_ms: float = 2.0,
    cache_size: int = 0,
    service: Optional[InferenceService] = None,
    model_name: str = "tiny-base",
    kernel: str = "auto",
    kernel_options: Optional[dict] = None,
    engine: str = "plan",
    block_kv: Optional[int] = None,
    seed: int = 0,
    timeout: float = 300.0,
) -> LoadtestResult:
    """Open-loop run: submit every request up front, wait for all results.

    Builds a fresh encoder service unless ``service`` is supplied (the
    caller then owns its lifecycle and the batching knobs are read from
    it).  ``engine`` selects the encoder forward implementation
    (``"plan"`` -- the graph-free fast path -- or ``"graph"``); a non-None
    ``block_kv`` serves requests through the chunked O(block)-memory
    attention path.  Returns the measured :class:`LoadtestResult`.
    """
    if not requests:
        raise ValueError("run_loadtest needs a non-empty request set")
    own_service = service is None
    if own_service:
        config = ServiceConfig(max_batch_size=batch_size,
                               max_wait_ms=max_wait_ms,
                               max_queue_depth=len(requests) + 1,
                               cache_size=cache_size,
                               engine=engine,
                               block_kv=block_kv)
        service = build_encoder_service(model_name=model_name, kernel=kernel,
                                        kernel_options=kernel_options,
                                        seed=seed, config=config)
    else:
        batch_size = service.config.max_batch_size
        max_wait_ms = service.config.max_wait_ms
    try:
        if own_service:
            service.start()
        # Warm the kernel LUTs/pools outside the timed window.
        service.infer(requests[0], timeout=timeout)
        service.cache.clear()
        service.stats.start()
        start = time.perf_counter()
        pending = [service.submit(tokens) for tokens in requests]
        for request in pending:
            request.result(timeout)
        elapsed = max(time.perf_counter() - start, 1e-9)
        snap = service.snapshot()
    finally:
        if own_service:
            service.stop()
    return LoadtestResult(
        batch_size=batch_size,
        max_wait_ms=max_wait_ms,
        requests=len(requests),
        elapsed_seconds=round(elapsed, 4),
        requests_per_second=round(len(requests) / elapsed, 1),
        p50_ms=snap["p50_ms"],
        p99_ms=snap["p99_ms"],
        queue_wait_p50_ms=snap["queue_wait_p50_ms"],
        queue_wait_p99_ms=snap["queue_wait_p99_ms"],
        forward_p50_ms=snap["forward_p50_ms"],
        forward_p99_ms=snap["forward_p99_ms"],
        mean_batch_size=snap["mean_batch_size"],
        cache_hit_rate=snap["cache"]["hit_rate"],
        engine=snap["engine"],
    )


def batched_vs_sequential(
    num_requests: int = 512,
    batch_size: int = 32,
    max_wait_ms: float = 2.0,
    min_tokens: int = DEFAULT_MIN_TOKENS,
    max_tokens: int = DEFAULT_MAX_TOKENS,
    model_name: str = "tiny-base",
    kernel: str = "auto",
    engine: str = "plan",
    block_kv: Optional[int] = None,
    seed: int = 0,
    duplicate_fraction: float = 0.0,
    cache_size: int = 0,
) -> dict:
    """The acceptance comparison: one workload, two batching configs.

    Returns a payload with the sequential (``max_batch_size=1``) and
    batched results plus their throughput ratio.
    """
    requests = synthetic_requests(num_requests, min_tokens, max_tokens,
                                  seed=seed,
                                  duplicate_fraction=duplicate_fraction)
    sequential = run_loadtest(requests, batch_size=1, max_wait_ms=0.0,
                              cache_size=cache_size, model_name=model_name,
                              kernel=kernel, engine=engine,
                              block_kv=block_kv, seed=seed)
    batched = run_loadtest(requests, batch_size=batch_size,
                           max_wait_ms=max_wait_ms, cache_size=cache_size,
                           model_name=model_name, kernel=kernel,
                           engine=engine, block_kv=block_kv, seed=seed)
    ratio = (batched.requests_per_second
             / max(sequential.requests_per_second, 1e-9))
    return {
        "workload": {
            "requests": num_requests,
            "min_tokens": min_tokens,
            "max_tokens": max_tokens,
            "duplicate_fraction": duplicate_fraction,
            "model": model_name,
            "kernel": kernel,
            "engine": engine,
            "block_kv": block_kv,
            "seed": seed,
        },
        "sequential": sequential.as_dict(),
        "batched": batched.as_dict(),
        "speedup_batched_vs_sequential": round(ratio, 2),
    }


# --------------------------------------------------------------------------- #
# chaos mode: the supervision guarantees, measured
# --------------------------------------------------------------------------- #
def _drive_open_loop(service, requests, deadline_ms, with_deadline,
                     timeout: float):
    """Submit every request, wait for every outcome, classify each one.

    The zero-drop bookkeeping shared by the thread-supervised and the
    sharded chaos loadtests: every submitted request must resolve to a
    result or a *typed* error; anything untyped is ``lost`` and a
    never-resolving wait is ``hung``.
    """
    from repro.serving.batcher import (
        DeadlineExceededError,
        OverloadedError,
        QueueFullError,
    )
    from repro.serving.faults import InjectedModelError
    from repro.serving.supervisor import SupervisorExhaustedError

    outcomes = {"ok": 0, "deadline_exceeded": 0, "overloaded": 0,
                "queue_full": 0, "injected_error": 0, "terminal": 0,
                "lost": 0, "hung": 0}
    results: List[Optional[np.ndarray]] = [None] * len(requests)
    pending = []
    for index, tokens in enumerate(requests):
        try:
            request = service.submit(
                tokens,
                deadline_ms=deadline_ms
                if deadline_ms is not None and with_deadline[index]
                else None)
        except OverloadedError:
            outcomes["overloaded"] += 1
            pending.append(None)
            continue
        except QueueFullError:
            outcomes["queue_full"] += 1
            pending.append(None)
            continue
        except SupervisorExhaustedError:
            outcomes["terminal"] += 1
            pending.append(None)
            continue
        pending.append(request)
    for index, request in enumerate(pending):
        if request is None:
            continue
        try:
            results[index] = request.result(timeout)
            outcomes["ok"] += 1
        except DeadlineExceededError:
            outcomes["deadline_exceeded"] += 1
        except InjectedModelError:
            outcomes["injected_error"] += 1
        except SupervisorExhaustedError:
            outcomes["terminal"] += 1
        except TimeoutError:
            outcomes["hung"] += 1
        except Exception:  # noqa: BLE001 - anything untyped is a drop
            outcomes["lost"] += 1
    return outcomes, results


def _bitwise_against_solo(model, requests, results,
                          bitwise_sample: int) -> Tuple[bool, int]:
    """Spot-check served responses bitwise against solo inference on a
    clean (fault-free) model."""
    checked = 0
    for index, hidden in enumerate(results):
        if hidden is None or checked >= bitwise_sample:
            continue
        solo = model.encode_ragged([list(requests[index])])[0]
        if not np.array_equal(hidden, solo):
            return False, checked
        checked += 1
    return True, checked


def run_chaos_loadtest(
    num_requests: int = 192,
    batch_size: int = 8,
    max_wait_ms: float = 1.0,
    crash_rate: float = 0.08,
    hang_rate: float = 0.04,
    error_rate: float = 0.02,
    hang_seconds: float = 0.4,
    hang_timeout_s: float = 0.15,
    max_restarts: int = 64,
    deadline_ms: Optional[float] = None,
    deadline_fraction: float = 0.25,
    model_name: str = "tiny-base",
    kernel: str = "auto",
    seed: int = 0,
    timeout: float = 120.0,
    bitwise_sample: int = 8,
) -> dict:
    """Open-loop load against a fault-injected, supervised service.

    Every submitted request must resolve -- to a result or to a *typed*
    error (``DeadlineExceededError`` / ``OverloadedError`` /
    ``QueueFullError`` / terminal ``SupervisorExhaustedError``).  A
    request that never resolves within ``timeout`` counts as **hung**, a
    request resolving to an untyped error counts as **lost**; the
    zero-drop guarantee is ``hung == lost == 0``, asserted by callers
    (``loadtest --chaos``, ``bench_serving``, CI).  Responses served
    across a worker restart are additionally checked **bitwise** against
    solo inference on a clean (fault-free) model.

    Faults follow a seeded :class:`~repro.serving.faults.FaultSchedule`
    over the expected number of forward calls; restart jitter shares the
    seed -- the whole run is reproducible from its arguments.
    ``deadline_fraction`` of requests carry ``deadline_ms`` deadlines
    (default: 8x the healthy forward estimate is supplied by the caller
    or the deadline path is skipped when ``deadline_ms`` is None).
    """
    from repro.serving.faults import FaultSchedule, FaultyModel
    from repro.serving.supervisor import RestartPolicy, SupervisedService

    requests = synthetic_requests(num_requests, seed=seed)
    # Upper bound on forward calls: one per request (sequential worst
    # case) plus retries from restarts; faults re-draw against this many
    # call slots so crashes keep firing deep into the run.
    expected_calls = 2 * num_requests + 16
    schedule = FaultSchedule.from_seed(
        seed, expected_calls, crash_rate=crash_rate, hang_rate=hang_rate,
        error_rate=error_rate, hang_seconds=hang_seconds, skip_first=2)
    model = build_encoder_model(model_name=model_name, kernel=kernel,
                                seed=seed)
    faulty = FaultyModel(model, schedule)
    policy = RestartPolicy(max_restarts=max_restarts,
                           backoff_initial_ms=5.0, backoff_max_ms=50.0,
                           hang_timeout_s=hang_timeout_s,
                           heartbeat_interval_s=0.02, seed=seed)
    config = ServiceConfig(max_batch_size=batch_size,
                           max_wait_ms=max_wait_ms,
                           max_queue_depth=num_requests + 1,
                           cache_size=0)
    service = SupervisedService(faulty, config, policy)

    rng = np.random.default_rng(seed + 1)
    with_deadline = (deadline_ms is not None
                     and (rng.random(num_requests) < deadline_fraction))
    start = time.perf_counter()
    with service:
        outcomes, results = _drive_open_loop(
            service, requests, deadline_ms, with_deadline, timeout)
        elapsed = max(time.perf_counter() - start, 1e-9)
        snap = service.snapshot()

    # Bitwise check: served responses (including any that crossed a
    # restart) must equal solo inference on the clean model.
    bitwise_identical, checked = _bitwise_against_solo(
        model, requests, results, bitwise_sample)

    resolved = sum(outcomes.values())
    return {
        "workload": {
            "requests": num_requests,
            "batch_size": batch_size,
            "max_wait_ms": max_wait_ms,
            "model": model_name,
            "kernel": kernel,
            "seed": seed,
            "deadline_ms": deadline_ms,
            "deadline_fraction": deadline_fraction if deadline_ms is not None
            else 0.0,
        },
        "faults": {
            **schedule.summary(),
            "injected": len(faulty.injected),
            "forward_calls": faulty.calls,
        },
        "policy": {
            "max_restarts": max_restarts,
            "hang_timeout_s": hang_timeout_s,
        },
        "outcomes": outcomes,
        "resolved": resolved,
        "unresolved": num_requests - resolved,
        "restarts": snap["restarts"],
        "events": snap["events"],
        "terminal": snap["terminal"],
        "elapsed_seconds": round(elapsed, 4),
        "p50_ms": snap["p50_ms"],
        "p99_ms": snap["p99_ms"],
        "bitwise_identical_to_solo": bitwise_identical,
        "bitwise_checked": checked,
        "zero_drop": (outcomes["lost"] == 0 and outcomes["hung"] == 0
                      and resolved == num_requests),
    }


def run_sharded_chaos_loadtest(
    num_requests: int = 128,
    num_workers: int = 2,
    batch_size: int = 8,
    max_wait_ms: float = 1.0,
    kill_rate: float = 0.06,
    stall_rate: float = 0.03,
    corrupt_rate: float = 0.03,
    error_rate: float = 0.02,
    hang_timeout_s: float = 10.0,
    stall_timeout_s: float = 0.3,
    max_restarts: int = 32,
    deadline_ms: Optional[float] = None,
    deadline_fraction: float = 0.25,
    model_name: str = "tiny-base",
    kernel: str = "auto",
    seed: int = 0,
    timeout: float = 240.0,
    bitwise_sample: int = 8,
    mp_context: str = "fork",
) -> dict:
    """Open-loop load against a fault-injected **sharded** service.

    The process-grade chaos: workers SIGKILL themselves mid-batch
    (``kill``), silence their heartbeats (``stall``) and refuse
    byte-flipped snapshot views (``corrupt``), plus ordinary per-batch
    model errors (``error``).  The guarantees measured are the same as
    :func:`run_chaos_loadtest` -- every request resolves typed
    (``zero_drop``) and served responses are bitwise identical to solo
    inference on a clean in-process model -- now across process
    boundaries, shared-memory snapshot rebinds and SIGKILL-grade worker
    replacement.  Reproducible from the recorded ``seed``: each spawn's
    fault schedule is derived from it per shard and generation.
    """
    from repro.serving.shard import build_sharded_service
    from repro.serving.supervisor import RestartPolicy

    requests = synthetic_requests(num_requests, seed=seed)
    fault_spec = {
        "seed": seed,
        "num_calls": 2 * num_requests + 16,
        "kill_rate": kill_rate,
        "stall_rate": stall_rate,
        "corrupt_rate": corrupt_rate,
        "error_rate": error_rate,
        "skip_first": 2,
    }
    policy = RestartPolicy(max_restarts=max_restarts,
                           backoff_initial_ms=5.0, backoff_max_ms=50.0,
                           hang_timeout_s=hang_timeout_s,
                           stall_timeout_s=stall_timeout_s,
                           heartbeat_interval_s=0.02, seed=seed)
    config = ServiceConfig(max_batch_size=batch_size,
                           max_wait_ms=max_wait_ms,
                           max_queue_depth=num_requests + 1,
                           cache_size=0)
    service = build_sharded_service(
        model_name=model_name, kernel=kernel, seed=seed, config=config,
        policy=policy, num_workers=num_workers, mp_context=mp_context,
        fault_spec=fault_spec)

    rng = np.random.default_rng(seed + 1)
    with_deadline = (deadline_ms is not None
                     and (rng.random(num_requests) < deadline_fraction))
    start = time.perf_counter()
    with service:
        outcomes, results = _drive_open_loop(
            service, requests, deadline_ms, with_deadline, timeout)
        elapsed = max(time.perf_counter() - start, 1e-9)
        snap = service.snapshot()

    # The parent model never saw a fault (faults fire inside workers):
    # it is the clean solo reference.
    bitwise_identical, checked = _bitwise_against_solo(
        service.model, requests, results, bitwise_sample)

    resolved = sum(outcomes.values())
    return {
        "workload": {
            "requests": num_requests,
            "workers": num_workers,
            "batch_size": batch_size,
            "max_wait_ms": max_wait_ms,
            "model": model_name,
            "kernel": kernel,
            "seed": seed,
            "mp_context": mp_context,
            "deadline_ms": deadline_ms,
            "deadline_fraction": deadline_fraction if deadline_ms is not None
            else 0.0,
        },
        "faults": dict(fault_spec),
        "policy": {
            "max_restarts": max_restarts,
            "hang_timeout_s": hang_timeout_s,
            "stall_timeout_s": stall_timeout_s,
        },
        "outcomes": outcomes,
        "resolved": resolved,
        "unresolved": num_requests - resolved,
        "restarts": snap["restarts"],
        "restarts_by_shard": snap["restarts_by_shard"],
        "live_workers": snap["live_workers"],
        "degraded": snap["degraded"],
        "events": snap["events"],
        "terminal": snap["terminal"],
        "snapshot": snap.get("snapshot"),
        "elapsed_seconds": round(elapsed, 4),
        "p50_ms": snap["p50_ms"],
        "p99_ms": snap["p99_ms"],
        "bitwise_identical_to_solo": bitwise_identical,
        "bitwise_checked": checked,
        "zero_drop": (outcomes["lost"] == 0 and outcomes["hung"] == 0
                      and resolved == num_requests),
    }
