"""Checksummed, versioned model snapshots in POSIX shared memory.

The sharded serving tier (:mod:`repro.serving.shard`) runs N worker
*processes* against one model.  Copying the weights into every worker
would cost O(N) memory and O(N) publish time; instead the parent publishes
the plan-engine's plain float64 arrays **once** into a single
``multiprocessing.shared_memory`` segment and workers attach zero-copy,
read-only views.  The bundle is self-describing and self-verifying:

* **Manifest** -- a JSON-able dict carrying the segment name, a snapshot
  ``version``, the total byte size, and one entry per array
  (name / shape / dtype / byte offset / CRC32), plus a bundle-level
  checksum over the entry CRCs.  The manifest is what travels to workers
  (tiny, picklable); the arrays never leave shared memory.
* **Attach-verify** -- :meth:`SnapshotBundle.attach` recomputes every
  CRC against the mapped bytes and raises a typed
  :class:`SnapshotCorruptionError` on any mismatch, so a worker can never
  serve from a torn or corrupted segment; the same check is exposed as
  :func:`verify_manifest` so fault injection can exercise the refusal
  path against a deliberately flipped *copy* without poisoning the real
  segment.
* **Lifecycle discipline** -- the publishing process owns the segment:
  ``close()`` detaches, ``unlink()`` destroys, and publication failures
  unlink before re-raising (lint rule R6 checks this pattern repo-wide).
  Attached (non-owner) handles only ever ``close()``.

Views are exported read-only: a worker's compiled
:class:`~repro.infer.plan.InferencePlan` keeps read-only weights as-is
(see :func:`repro.nn.layers.frozen_array_snapshot`), so N workers share
ONE copy of the model -- RSS grows O(1) in the worker count.
"""

from __future__ import annotations

import zlib
from multiprocessing import shared_memory
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.kernels.shm import attach_shared_memory

#: Manifest schema version (bumped on incompatible layout changes).
MANIFEST_VERSION = 1

#: Byte alignment of every array inside the segment (float64-friendly).
_ALIGN = 64


class SnapshotCorruptionError(RuntimeError):
    """A snapshot segment failed its checksum; the attach was refused."""


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def build_manifest_entries(arrays: Mapping[str, np.ndarray]) -> List[dict]:
    """Plan the segment layout: one aligned, C-contiguous slot per array."""
    entries = []
    offset = 0
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        offset = _aligned(offset)
        entries.append({
            "name": name,
            "shape": list(array.shape),
            "dtype": str(array.dtype),
            "offset": offset,
            "nbytes": int(array.nbytes),
        })
        offset += int(array.nbytes)
    return entries


def bundle_checksum(entries: List[dict]) -> int:
    """Order-sensitive checksum over the per-entry CRCs and layout."""
    digest = 0
    for entry in entries:
        record = (f"{entry['name']}:{entry['shape']}:{entry['dtype']}:"
                  f"{entry['offset']}:{entry['crc32']}").encode("utf-8")
        digest = zlib.crc32(record, digest)
    return digest


def verify_manifest(buf, manifest: dict) -> None:
    """Recompute every CRC of ``manifest`` against ``buf`` (a buffer over
    the segment bytes -- the real one, or a deliberately corrupted copy).

    Raises :class:`SnapshotCorruptionError` naming the first mismatching
    array, or on a bundle-checksum mismatch (a tampered manifest).
    """
    view = memoryview(buf)
    try:
        if bundle_checksum(manifest["entries"]) != manifest["checksum"]:
            raise SnapshotCorruptionError(
                f"snapshot manifest checksum mismatch for segment "
                f"{manifest['segment']!r} (version {manifest['version']}); "
                "refusing to attach")
        for entry in manifest["entries"]:
            start, nbytes = entry["offset"], entry["nbytes"]
            crc = zlib.crc32(view[start:start + nbytes])
            if crc != entry["crc32"]:
                raise SnapshotCorruptionError(
                    f"snapshot array {entry['name']!r} failed its CRC32 "
                    f"check (expected {entry['crc32']:#010x}, got "
                    f"{crc:#010x}) in segment {manifest['segment']!r} "
                    f"version {manifest['version']}; refusing to attach")
    finally:
        # Release our export before the caller's error path close()s the
        # mapping; a view pinned by the in-flight traceback would turn
        # that close() into a BufferError.
        view.release()


class SnapshotBundle:
    """One shared-memory segment holding a model's weight arrays.

    Build with :meth:`publish` (the owner: copies the arrays in, computes
    the checksums, may ``unlink``) or :meth:`attach` (a worker: verifies
    the checksums, maps read-only views, only ever ``close``s).  Usable
    as a context manager; exit closes, and unlinks iff owner.
    """

    def __init__(self, shm: shared_memory.SharedMemory, manifest: dict,
                 owner: bool) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.manifest = manifest
        self.owner = owner
        self._unlinked = False

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def publish(cls, arrays: Mapping[str, np.ndarray],
                version: int = 1) -> "SnapshotBundle":
        """Copy ``arrays`` into a fresh checksummed segment (the one and
        only copy workers will share); the caller owns the segment."""
        if not arrays:
            raise ValueError("cannot publish an empty snapshot")
        entries = build_manifest_entries(arrays)
        last = entries[-1]
        total = max(1, last["offset"] + last["nbytes"])
        shm = shared_memory.SharedMemory(create=True, size=total)
        try:
            for entry in entries:
                source = np.ascontiguousarray(arrays[entry["name"]])
                dest = np.ndarray(source.shape, dtype=source.dtype,
                                  buffer=shm.buf, offset=entry["offset"])
                np.copyto(dest, source)
                entry["crc32"] = zlib.crc32(
                    memoryview(shm.buf)[entry["offset"]:
                                        entry["offset"] + entry["nbytes"]])
            manifest = {
                "manifest_version": MANIFEST_VERSION,
                "segment": shm.name,
                "version": int(version),
                "total_bytes": total,
                "entries": entries,
            }
            manifest["checksum"] = bundle_checksum(entries)
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm, manifest, owner=True)

    @classmethod
    def attach(cls, manifest: dict) -> "SnapshotBundle":
        """Map an existing segment and verify it before exposing views.

        Raises :class:`SnapshotCorruptionError` (typed, caller-visible)
        when any byte of the segment disagrees with the manifest -- a
        worker must refuse a corrupt snapshot rather than serve from it.
        """
        shm = attach_shared_memory(manifest["segment"])
        try:
            if shm.size < manifest["total_bytes"]:
                raise SnapshotCorruptionError(
                    f"segment {manifest['segment']!r} is "
                    f"{shm.size} bytes, manifest expects "
                    f">= {manifest['total_bytes']}; refusing to attach")
            verify_manifest(shm.buf, manifest)
        except BaseException:
            shm.close()
            raise
        return cls(shm, manifest, owner=False)

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    def arrays(self) -> Dict[str, np.ndarray]:
        """Zero-copy, read-only views over the segment, keyed by name."""
        if self._shm is None:
            raise ValueError("snapshot bundle is closed")
        views: Dict[str, np.ndarray] = {}
        for entry in self.manifest["entries"]:
            view = np.ndarray(tuple(entry["shape"]),
                              dtype=np.dtype(entry["dtype"]),
                              buffer=self._shm.buf, offset=entry["offset"])
            view.flags.writeable = False
            views[entry["name"]] = view
        return views

    @property
    def version(self) -> int:
        return self.manifest["version"]

    @property
    def checksum(self) -> int:
        return self.manifest["checksum"]

    @property
    def total_bytes(self) -> int:
        return self.manifest["total_bytes"]

    def describe(self) -> dict:
        """Stats-snapshot summary: version/checksum/size, not the bytes."""
        return {
            "segment": self.manifest["segment"],
            "version": self.version,
            "checksum": f"{self.checksum:#010x}",
            "total_bytes": self.total_bytes,
            "arrays": len(self.manifest["entries"]),
        }

    def corrupted_copy(self, flip_offset: int = 0) -> bytearray:
        """A private copy of the segment with one byte flipped -- feed it
        to :func:`verify_manifest` to exercise the refusal path without
        corrupting the real segment other workers are serving from."""
        if self._shm is None:
            raise ValueError("snapshot bundle is closed")
        data = bytearray(self._shm.buf.tobytes())
        data[flip_offset % len(data)] ^= 0xFF
        return data

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Detach (idempotent); the owner also destroys the segment.

        Views from :meth:`arrays` die with the mapping -- callers must
        not hold them across ``close()``.
        """
        shm, self._shm = self._shm, None
        if shm is None:
            return
        shm.close()
        if self.owner:
            self.unlink_segment(shm)

    def unlink_segment(self, shm: shared_memory.SharedMemory) -> None:
        if self._unlinked:
            return
        self._unlinked = True
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already destroyed
            pass

    def __enter__(self) -> "SnapshotBundle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-exit ordering
        try:
            self.close()
        except Exception:
            pass
