"""Actor-style supervision for the inference worker.

:class:`SupervisedService` generalizes the PR 3 kernel-pool
PID-guard/rebuild logic into a reusable policy: a monitor thread owns the
inference worker, heartbeat-health-checks it, and on **crash** (a
:class:`~repro.serving.batcher.WorkerCrashError` escaping the worker loop)
or **hang** (a batch stuck inside the model forward past
``hang_timeout_s``) replaces it -- requeueing the in-flight batch at the
head of the line so no admitted request is ever dropped.  Restarts are
bounded (``max_restarts``) with exponential backoff and seeded jitter;
when the budget is exhausted the supervisor fails everything pending with
a terminal :class:`SupervisorExhaustedError` and closes the service
(crash-looping forever is an outage pretending to be uptime).

Correctness across restarts rides two mechanisms:

* :class:`~repro.serving.batcher.PendingRequest` completion is
  first-wins, so a hung-then-recovered worker finishing its batch after
  the replacement already answered is harmless (both compute identical
  bits -- the model is deterministic -- but only one completion lands).
* Worker generations: each worker loop checks it is still the active
  generation before taking new work, so an abandoned worker can finish
  its current batch but never steal the successor's queue.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import List, Optional

from repro.serving.batcher import (
    PendingRequest,
    ServiceClosedError,
    WorkerCrashError,
)
from repro.serving.service import (
    InferenceService,
    ServiceConfig,
    build_encoder_model,
)

#: Worker poll interval (mirrors the service's idle poll).
_IDLE_POLL_SECONDS = 0.05


class SupervisorExhaustedError(RuntimeError):
    """The restart budget is spent; the service is terminally failed."""


class WorkerHungError(WorkerCrashError):
    """The worker exceeded the hang timeout inside a model forward."""


@dataclass(frozen=True)
class RestartPolicy:
    """Bounded-restart policy with exponential backoff and seeded jitter.

    ``max_restarts`` bounds worker replacements over the service lifetime
    (restart ``n`` backs off ``backoff_initial_ms * multiplier**(n-1)``
    milliseconds, capped at ``backoff_max_ms``, +/- ``jitter_fraction``).
    The jitter RNG is seeded (``seed``) so supervised runs are
    reproducible end to end -- fault schedules and restart timing alike.
    """

    max_restarts: int = 5
    backoff_initial_ms: float = 20.0
    backoff_multiplier: float = 2.0
    backoff_max_ms: float = 500.0
    jitter_fraction: float = 0.1
    hang_timeout_s: float = 2.0
    heartbeat_interval_s: float = 0.02
    seed: int = 0
    #: How long a process worker may go without a heartbeat while *idle*
    #: before the process supervisor declares it stalled (distinct from
    #: ``hang_timeout_s``, which bounds time inside a model forward).
    #: Unused by the in-thread supervisor, whose worker cannot stall
    #: silently -- its beats are plain attribute writes.
    stall_timeout_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff_initial_ms < 0 or self.backoff_max_ms < 0:
            raise ValueError("backoff bounds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        if (self.hang_timeout_s <= 0 or self.heartbeat_interval_s <= 0
                or self.stall_timeout_s <= 0):
            raise ValueError("timeouts must be > 0")

    def backoff_seconds(self, restart_index: int,
                        rng: random.Random) -> float:
        """Delay before restart number ``restart_index`` (1-based)."""
        if restart_index < 1:
            raise ValueError("restart_index is 1-based")
        base = min(
            self.backoff_initial_ms
            * self.backoff_multiplier ** (restart_index - 1),
            self.backoff_max_ms)
        jitter = 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return base * jitter / 1e3


class RestartBudget:
    """Seeded bounded-restart accounting for one supervised worker.

    Counts replacements against ``policy.max_restarts`` and hands out the
    matching backoff delays.  Extracted from the thread supervisor so the
    process supervisor (:mod:`repro.serving.shard`) can keep one budget
    *per shard* -- pass ``seed`` to derive distinct-but-reproducible
    jitter streams (e.g. ``policy.seed + shard_index``).
    """

    def __init__(self, policy: RestartPolicy,
                 seed: Optional[int] = None) -> None:
        self.policy = policy
        self._rng = random.Random(policy.seed if seed is None else seed)
        self.restarts = 0

    @property
    def exhausted(self) -> bool:
        """True once the next failure must terminate, not restart."""
        return self.restarts >= self.policy.max_restarts

    def next_backoff(self) -> float:
        """Consume one restart; returns the pre-respawn delay in seconds."""
        self.restarts += 1
        return self.policy.backoff_seconds(self.restarts, self._rng)


class SupervisedService(InferenceService):
    """An :class:`InferenceService` whose worker lives under supervision.

    The public surface is unchanged (``submit``/``infer``/``stop``/
    context manager); what changes is the failure model:

    * a :class:`~repro.serving.batcher.WorkerCrashError` escaping the
      model restarts the worker and **requeues** the in-flight batch
      instead of failing it;
    * a hang (forward stuck past ``policy.hang_timeout_s``) abandons the
      stuck worker and restarts;
    * after ``policy.max_restarts`` replacements, everything pending
      fails with :class:`SupervisorExhaustedError` and the service closes.

    Plain model exceptions keep the PR 3 isolation semantics: the batch
    fails typed, the worker survives, no restart is consumed.
    """

    def __init__(self, model, config: ServiceConfig = ServiceConfig(),
                 policy: RestartPolicy = RestartPolicy()) -> None:
        super().__init__(model, config)
        self.policy = policy
        self._budget = RestartBudget(policy)
        self._monitor: Optional[threading.Thread] = None
        self._generation = 0
        self._terminal: Optional[BaseException] = None
        self._last_error: Optional[BaseException] = None
        # Crash report posted by a dying worker: (exception, its pending
        # batch).  The monitor consumes it under the lock.
        self._crash_lock = threading.Lock()
        self._crash: Optional[tuple] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "SupervisedService":
        if self._worker is not None or self._monitor is not None:
            raise RuntimeError("service already started")
        if self.batcher.closed:
            self.batcher = self._make_batcher()
        self._stopping.clear()
        self._terminal = None
        self._last_error = None
        self._budget = RestartBudget(self.policy)
        with self._crash_lock:
            self._crash = None
        self.stats.start()
        self._spawn_worker()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="inference-supervisor",
                                         daemon=True)
        self._monitor.start()
        return self

    def stop(self) -> None:
        """Stop monitor and worker; fail the backlog with typed errors.

        A hung worker cannot be joined -- it is abandoned (daemon thread,
        superseded generation) and its in-flight requests are failed here;
        if it later limps home, first-wins completion makes its answers
        no-ops.
        """
        if self._worker is None and self._monitor is None:
            return
        self._stopping.set()
        self.batcher.close()
        if self._monitor is not None:
            self._monitor.join()
            self._monitor = None
        worker = self._worker
        self._worker = None
        # Orphan any straggler before failing its requests: a live worker
        # re-checks the generation before touching new work.
        self._generation += 1
        if worker is not None:
            worker.join(timeout=self.policy.hang_timeout_s + 1.0)
        with self._inflight_lock:
            stranded = [r for r in self._inflight if not r.done()]
        for request in stranded + self.batcher.drain():
            request.set_exception(
                ServiceClosedError("service stopped before this request "
                                   "was served"))

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #
    def submit(self, tokens, deadline_ms: Optional[float] = None
               ) -> PendingRequest:
        terminal = self._terminal
        if terminal is not None:
            raise terminal
        return super().submit(tokens, deadline_ms=deadline_ms)

    def snapshot(self) -> dict:
        snap = super().snapshot()
        snap["supervised"] = True
        snap["restarts"] = self._budget.restarts
        snap["max_restarts"] = self.policy.max_restarts
        snap["generation"] = self._generation
        snap["terminal"] = (type(self._terminal).__name__
                            if self._terminal is not None else None)
        return snap

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _spawn_worker(self) -> None:
        self._generation += 1
        generation = self._generation
        self._last_beat = time.perf_counter()
        self._worker = threading.Thread(
            target=self._worker_loop, args=(generation,),
            name=f"inference-worker-gen{generation}", daemon=True)
        self._worker.start()

    def _worker_loop(self, generation: int) -> None:
        while not self._stopping.is_set() and generation == self._generation:
            self._last_beat = time.perf_counter()
            batch = self.batcher.next_batch(timeout=_IDLE_POLL_SECONDS)
            if not batch:
                continue
            if generation != self._generation:
                # Superseded while blocked in next_batch: hand the batch
                # back untouched -- it belongs to the successor.
                self.batcher.requeue(batch)
                return
            try:
                self._execute(batch)
            except Exception as exc:  # noqa: BLE001 - crash report
                with self._crash_lock:
                    self._crash = (
                        exc, [r for r in batch if not r.done()])
                return

    # ------------------------------------------------------------------ #
    # supervisor side
    # ------------------------------------------------------------------ #
    def _monitor_loop(self) -> None:
        while not self._stopping.is_set():
            self._stopping.wait(self.policy.heartbeat_interval_s)
            if self._stopping.is_set():
                return
            if self._terminal is not None:
                return
            with self._crash_lock:
                crash, self._crash = self._crash, None
            if crash is not None:
                exc, pending = crash
                self.stats.record_event("worker_crash")
                self._handle_failure(exc, pending)
                continue
            with self._inflight_lock:
                since = self._inflight_since
                inflight = list(self._inflight)
            now = time.perf_counter()
            if (since is not None
                    and now - since > self.policy.hang_timeout_s):
                # Abandon the stuck worker: bump the generation (it will
                # exit its loop when -- if -- the forward returns) and
                # give its batch to a replacement.
                self.stats.record_event("worker_hang")
                self._generation += 1
                with self._inflight_lock:
                    # Reset the hang clock so the *same* stuck batch is
                    # not re-declared hung on every tick (the abandoned
                    # worker's finally-block identity-compares its own
                    # batch, so it cannot clobber a successor's entry).
                    if self._inflight_since is since:
                        self._inflight = []
                        self._inflight_since = None
                self._handle_failure(
                    WorkerHungError(
                        f"worker hung > {self.policy.hang_timeout_s:.2f}s "
                        "inside a model forward"),
                    [r for r in inflight if not r.done()])
                continue
            worker = self._worker
            if worker is not None and not worker.is_alive():
                # Died without a crash report (should not happen; treated
                # as a crash with an unknown cause so nothing hangs).
                with self._crash_lock:
                    crash, self._crash = self._crash, None
                exc = crash[0] if crash else WorkerCrashError(
                    "worker thread exited unexpectedly")
                pending = crash[1] if crash else []
                self.stats.record_event("worker_crash")
                self._handle_failure(exc, pending)

    def _handle_failure(self, exc: BaseException,
                        pending: List[PendingRequest]) -> None:
        self._last_error = exc
        if self._budget.exhausted:
            self._terminate(exc, pending)
            return
        self.stats.record_event("restart")
        if pending:
            self.batcher.requeue(pending)
        delay = self._budget.next_backoff()
        if self._stopping.wait(delay):
            return
        self._spawn_worker()

    def _terminate(self, exc: BaseException,
                   pending: List[PendingRequest]) -> None:
        terminal = SupervisorExhaustedError(
            f"worker failed {self._budget.restarts + 1} times, restart "
            f"budget {self.policy.max_restarts} exhausted: {exc}")
        terminal.__cause__ = exc
        self._terminal = terminal
        self.stats.record_event("terminal")
        # Orphan any straggling worker, stop intake, fail everything
        # pending with the typed terminal error -- zero silent drops.
        self._generation += 1
        self.batcher.close()
        for request in pending + self.batcher.drain():
            request.set_exception(terminal)


def build_supervised_service(
    model_name: str = "tiny-base",
    kernel: str = "auto",
    kernel_options: Optional[dict] = None,
    seed: int = 0,
    config: ServiceConfig = ServiceConfig(),
    policy: RestartPolicy = RestartPolicy(),
    fault_schedule=None,
):
    """Construct a :class:`SupervisedService` over a Softermax BERT encoder.

    ``fault_schedule`` (a :class:`repro.serving.faults.FaultSchedule`)
    wraps the encoder in a :class:`repro.serving.faults.FaultyModel` --
    the chaos loadtest and CI smoke use this to measure the supervision
    guarantees instead of asserting them by hand.
    """
    model = build_encoder_model(model_name=model_name, kernel=kernel,
                                kernel_options=kernel_options, seed=seed)
    if fault_schedule is not None:
        from repro.serving.faults import FaultyModel

        model = FaultyModel(model, fault_schedule)
    return SupervisedService(model, config, policy)
