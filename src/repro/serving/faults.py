"""Deterministic fault injection for the serving stack.

The supervisor's guarantees -- zero dropped requests across worker
crashes, bounded tail latency under hangs -- are only guarantees if they
are *measured*, so both the test suite and the ``loadtest --chaos`` mode
drive the service through this layer instead of hand-rolled monkeypatches.
Everything is seeded: the same ``FaultSchedule.from_seed(seed, ...)``
produces the same faults at the same forward-call indices every run, which
makes chaos failures reproducible by seed alone.

Fault kinds (per model forward call):

``"crash"``
    Raise :class:`InjectedWorkerCrash` (a
    :class:`~repro.serving.batcher.WorkerCrashError`): the worker dies,
    the supervisor restarts it and requeues the in-flight batch.
``"hang"``
    Sleep ``seconds`` before computing -- long enough and the supervisor
    declares the worker hung, abandons it and restarts; the abandoned
    thread eventually finishes, which exercises the first-wins completion
    race.
``"error"``
    Raise :class:`InjectedModelError` (a plain ``RuntimeError``): the
    batch fails typed but the worker survives -- the PR 3 isolation
    semantics, distinct from a crash.
``"pool"``
    Terminate any live multiprocessing kernel pools owned by this process
    before computing, exercising the kernel registry's pool
    crash-rebuild-fallback path (a no-op where no pool is live, e.g. the
    1-core CI box).

Process-grade fault kinds (sharded serving workers,
:mod:`repro.serving.shard`; in-thread services reject them):

``"kill"``
    The worker SIGKILLs itself mid-batch -- the hardest crash there is
    (no cleanup, negative ``Process.exitcode``); the process supervisor
    must requeue the in-flight batch and respawn against the same
    snapshot.
``"stall"``
    The worker silences its heartbeat thread but keeps serving -- a
    liveness failure without a crash; the supervisor's stall detection
    replaces it.
``"corrupt"``
    The worker verifies a deliberately byte-flipped *copy* of its
    snapshot view, driving the typed
    :class:`~repro.serving.snapshot.SnapshotCorruptionError` refusal
    path (the real shared segment is never touched -- the replacement
    worker attaches the pristine snapshot and recovers).

New kinds are appended to :data:`FAULT_KINDS` so schedules drawn by
:meth:`FaultSchedule.from_seed` with the original kinds are unchanged --
one uniform draw per call index, thresholds accumulated in tuple order.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.batcher import WorkerCrashError

#: The injectable fault kinds, in schedule-draw priority order.  New
#: kinds append at the end: :meth:`FaultSchedule.from_seed` accumulates
#: thresholds in this order, so appending (with a default rate of 0)
#: never moves an existing kind's faults to different call indices.
FAULT_KINDS = ("crash", "hang", "error", "pool", "kill", "stall", "corrupt")

#: The process-grade subset: only meaningful where the worker is a
#: process (``repro.serving.shard``); :class:`FaultyModel` requires a
#: matching process hook to fire one.
PROCESS_FAULT_KINDS = ("kill", "stall", "corrupt")


class InjectedWorkerCrash(WorkerCrashError):
    """A scheduled worker-fatal crash (restart + requeue path)."""


class InjectedModelError(RuntimeError):
    """A scheduled per-batch model error (fail-the-batch path)."""


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: fires on the ``call_index``-th model forward."""

    call_index: int
    kind: str
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.call_index < 0:
            raise ValueError("call_index must be >= 0")
        if self.seconds < 0:
            raise ValueError("seconds must be >= 0")


class FaultSchedule:
    """A deterministic call-index -> fault mapping.

    Build one explicitly from :class:`Fault` entries, or draw one with
    :meth:`from_seed` -- the latter is a pure function of its arguments,
    so a chaos run is reproducible from its recorded seed.
    """

    def __init__(self, faults: Iterable[Fault] = (),
                 seed: Optional[int] = None) -> None:
        self._by_index: Dict[int, Fault] = {}
        for fault in faults:
            if fault.call_index in self._by_index:
                raise ValueError(
                    f"two faults scheduled at call {fault.call_index}")
            self._by_index[fault.call_index] = fault
        self.seed = seed

    @classmethod
    def from_seed(cls, seed: int, num_calls: int,
                  crash_rate: float = 0.0, hang_rate: float = 0.0,
                  error_rate: float = 0.0, pool_rate: float = 0.0,
                  kill_rate: float = 0.0, stall_rate: float = 0.0,
                  corrupt_rate: float = 0.0,
                  hang_seconds: float = 0.25,
                  skip_first: int = 1) -> "FaultSchedule":
        """Draw a schedule over ``num_calls`` forward calls.

        One uniform draw per call index decides that call's fate, so the
        fault at index ``i`` does not depend on the rates of other kinds
        changing the draw *sequence* -- tweaking ``hang_rate`` never moves
        a crash to a different call (and the process-grade rates, drawn
        after the original kinds, never move any of them).  ``skip_first``
        leaves the first calls fault-free (warmup requests should measure
        the healthy path).
        """
        rates = {"crash": crash_rate, "hang": hang_rate,
                 "error": error_rate, "pool": pool_rate,
                 "kill": kill_rate, "stall": stall_rate,
                 "corrupt": corrupt_rate}
        for kind, rate in rates.items():
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{kind}_rate must be in [0, 1]")
        if sum(rates.values()) > 1.0:
            raise ValueError("fault rates must sum to <= 1")
        rng = np.random.default_rng(seed)
        faults: List[Fault] = []
        for index in range(num_calls):
            draw = float(rng.random())
            if index < skip_first:
                continue
            threshold = 0.0
            for kind in FAULT_KINDS:
                threshold += rates[kind]
                if draw < threshold:
                    faults.append(Fault(
                        call_index=index, kind=kind,
                        seconds=hang_seconds if kind == "hang" else 0.0))
                    break
        return cls(faults, seed=seed)

    def fault_for(self, call_index: int) -> Optional[Fault]:
        return self._by_index.get(call_index)

    def __len__(self) -> int:
        return len(self._by_index)

    def faults(self) -> List[Fault]:
        return [self._by_index[i] for i in sorted(self._by_index)]

    def summary(self) -> dict:
        """JSON-friendly description recorded next to chaos measurements."""
        counts: Dict[str, int] = {}
        for fault in self._by_index.values():
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return {
            "seed": self.seed,
            "total": len(self._by_index),
            "counts": counts,
            "faults": [{"call_index": f.call_index, "kind": f.kind,
                        "seconds": f.seconds} for f in self.faults()],
        }


def kill_live_kernel_pools() -> int:
    """Terminate multiprocessing kernel pools owned by this process.

    Simulates kernel-pool death (workers OOM-killed, cgroup teardown, ...)
    so the registry's PID-guard/rebuild logic is exercisable on demand.
    Returns the number of pools killed -- 0 where none were live, which is
    the normal case on a 1-core box where the adaptive kernel never
    dispatches to the pool.
    """
    import os

    from repro.kernels import parallel

    killed = 0
    pid = os.getpid()
    for owner_pid, pool in list(parallel._LIVE_POOLS):
        if owner_pid != pid:
            continue
        try:
            pool.terminate()
            killed += 1
        except Exception:  # pragma: no cover - teardown best-effort
            pass
    return killed


class FaultyModel:
    """A model wrapper that fires a :class:`FaultSchedule` on its forwards.

    Duck-types the slice of the encoder interface the service uses
    (``encode_ragged``, ``eval``, ``config``); every ``encode_ragged``
    call consumes one schedule index (thread-safe counter) and fires the
    scheduled fault, if any, *before* delegating to the wrapped model --
    so a crash never half-computes and a hang models a stalled, not a
    corrupted, worker.  Fired faults are logged in :attr:`injected` for
    assertions and benchmark records.
    """

    def __init__(self, model, schedule: FaultSchedule,
                 sleep=time.sleep, process_hooks: Optional[dict] = None
                 ) -> None:
        self.inner = model
        self.schedule = schedule
        self._sleep = sleep
        # kind -> callable(Fault) for the process-grade kinds ("kill",
        # "stall", "corrupt"): only a process worker can SIGKILL itself or
        # silence a heartbeat pipe, so the shard worker supplies these.
        # A schedule that fires a process-grade fault without a matching
        # hook is a configuration error, not a silent no-op.
        self._process_hooks = dict(process_hooks or {})
        self._lock = threading.Lock()
        self._calls = 0
        self.injected: List[Fault] = []

    @property
    def config(self):
        return getattr(self.inner, "config", None)

    @property
    def calls(self) -> int:
        with self._lock:
            return self._calls

    def eval(self) -> "FaultyModel":
        if hasattr(self.inner, "eval"):
            self.inner.eval()
        return self

    def encode_ragged(self, sequences: Sequence[Sequence[int]],
                      pad_id: int = 0, **kwargs):
        with self._lock:
            index = self._calls
            self._calls += 1
            fault = self.schedule.fault_for(index)
            if fault is not None:
                self.injected.append(fault)
        if fault is not None:
            if fault.kind == "crash":
                raise InjectedWorkerCrash(
                    f"injected worker crash at forward call {index}")
            if fault.kind == "error":
                raise InjectedModelError(
                    f"injected model error at forward call {index}")
            if fault.kind == "hang":
                self._sleep(fault.seconds)
            elif fault.kind == "pool":
                kill_live_kernel_pools()
            elif fault.kind in PROCESS_FAULT_KINDS:
                hook = self._process_hooks.get(fault.kind)
                if hook is None:
                    raise RuntimeError(
                        f"process-grade fault {fault.kind!r} scheduled at "
                        f"call {index} but this worker has no "
                        f"{fault.kind!r} hook (process faults need a "
                        "sharded-serving worker process)")
                # "kill" never returns; "corrupt" raises the typed
                # refusal; "stall" returns and the forward proceeds
                # (a stalled worker keeps computing -- only its
                # liveness signal dies).
                hook(fault)
        return self.inner.encode_ragged(sequences, pad_id=pad_id, **kwargs)
