"""The dynamic-batching inference service.

:class:`InferenceService` glues the pieces together: callers submit token
sequences from any thread; a single worker thread pulls coalesced
micro-batches from the :class:`~repro.serving.batcher.MicroBatcher`, runs
them through the encoder's ragged-batch entry point
(:meth:`~repro.models.bert.BertEncoderModel.encode_ragged` -- padding,
exact attention masking, one adaptive-Softermax forward per batch) and
completes each request with its own slice of the result.

Correctness properties the test suite pins:

* **Bit-transparency** -- a response is bitwise identical whether the
  request rode alone, in a batch, or was served from cache.
* **Deduplication** -- identical concurrent requests are computed once per
  batch and each waiter gets its own copy.
* **Isolation** -- a worker failure fails the affected requests with the
  underlying exception; it does not wedge the service.
"""

from __future__ import annotations

import inspect
import threading
import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.serving.batcher import (
    MicroBatcher,
    OverloadedError,
    PendingRequest,
    ServiceClosedError,
    WorkerCrashError,
)
from repro.serving.cache import LRUCache
from repro.serving.stats import LatencyStats

#: Worker poll interval: how often an idle worker re-checks for shutdown.
_IDLE_POLL_SECONDS = 0.05


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the dynamic batcher, response cache and forward engine.

    ``engine`` selects the encoder forward implementation: ``"plan"`` (the
    default) runs the compiled graph-free fast path
    (:class:`repro.infer.InferencePlan`, bitwise identical to the graph
    path), ``"graph"`` the autograd Tensor path.  ``fuse_qkv`` opts the
    plan engine into the fused Q/K/V projection GEMM (mathematically
    identical, not bit-guaranteed -- leave off when bit-transparency with
    the graph path matters).  Models whose ``encode_ragged`` does not take
    an ``engine`` argument (test doubles) are called without one.

    ``block_kv`` opts into chunked O(block)-memory attention for
    long-context serving (see :func:`repro.nn.functional.
    chunked_masked_attention` for the tolerance contract); sequences no
    longer than ``block_kv`` still take the dense path bit-for-bit, and
    batching stays bit-transparent either way.
    """

    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    max_queue_depth: int = 1024
    cache_size: int = 1024
    pad_id: int = 0
    engine: str = "plan"
    fuse_qkv: bool = False
    block_kv: Optional[int] = None


class InferenceService:
    """Dynamic-batching front end over a ragged-batch encoder.

    Parameters
    ----------
    model:
        Any object exposing ``encode_ragged(sequences, pad_id) -> list of
        per-sequence arrays`` and (optionally) ``eval()`` -- in practice a
        :class:`~repro.models.bert.BertEncoderModel`.  The model is
        switched to eval mode at construction: serving is inference, and
        the exact-masking path that makes batching bit-transparent requires
        it.
    config:
        Batching/caching knobs (:class:`ServiceConfig`).
    """

    def __init__(self, model, config: ServiceConfig = ServiceConfig()) -> None:
        if config.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if config.engine not in ("plan", "graph"):
            raise ValueError(
                f"unknown inference engine {config.engine!r}; choose "
                "'plan' or 'graph'")
        self.model = model
        self.config = config
        # Only forward the engine selection to models that understand it;
        # plain ``encode_ragged(sequences, pad_id)`` duck types keep
        # working (they implicitly serve their only engine).
        try:
            parameters = inspect.signature(model.encode_ragged).parameters
            accepts_engine = "engine" in parameters or any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in parameters.values())
            if accepts_engine:
                self._engine_kwargs = {"engine": config.engine,
                                       "fuse_qkv": config.fuse_qkv}
                if config.block_kv is not None:
                    self._engine_kwargs["block_kv"] = config.block_kv
            else:
                self._engine_kwargs = {}
        except (TypeError, ValueError):
            self._engine_kwargs = {}
        if hasattr(model, "eval"):
            model.eval()
        self.stats = LatencyStats()
        self.batcher = self._make_batcher()
        self.cache = LRUCache(config.cache_size)
        self._worker: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        # Worker-health bookkeeping read by the supervisor: the batch
        # currently inside the model forward (identity-compared so a
        # superseded worker can never clear a successor's entry), when it
        # entered, and the worker's last liveness beat.
        self._inflight: List[PendingRequest] = []
        self._inflight_since: Optional[float] = None
        self._inflight_lock = threading.Lock()
        self._last_beat = time.perf_counter()

    def _make_batcher(self) -> MicroBatcher:
        return MicroBatcher(max_batch_size=self.config.max_batch_size,
                            max_wait_ms=self.config.max_wait_ms,
                            max_queue_depth=self.config.max_queue_depth,
                            event_hook=self.stats.record_event)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "InferenceService":
        if self._worker is not None:
            raise RuntimeError("service already started")
        if self.batcher.closed:
            # Restart after stop(): the old batcher is closed and drained,
            # so a fresh one makes the service reusable.
            self.batcher = self._make_batcher()
        self._stopping.clear()
        self.stats.start()
        self._worker = threading.Thread(target=self._serve_loop,
                                        name="inference-service-worker",
                                        daemon=True)
        self._worker.start()
        return self

    def stop(self) -> None:
        """Stop the worker and fail the backlog deterministically.

        The worker finishes the batch it is executing (if any) and exits;
        every queued-but-unserved request is then failed promptly with a
        typed :class:`ServiceClosedError` -- shutdown latency is one
        forward, not one forward per queued batch.  The batcher's submit
        lock guarantees no request can land after the drain: a racing
        submitter either enqueued before ``close()`` (the drain sees it)
        or observes the closed batcher and raises.
        """
        if self._worker is None:
            return
        self._stopping.set()
        self.batcher.close()
        self._worker.join()
        self._worker = None
        for request in self.batcher.drain():
            request.set_exception(
                ServiceClosedError("service stopped before this request "
                                   "was served"))

    def __enter__(self) -> "InferenceService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # client side
    # ------------------------------------------------------------------ #
    def _accepting(self) -> bool:
        """Is the service running?  Subclasses whose workers are not a
        single thread (the sharded service) override this check."""
        return self._worker is not None

    def submit(self, tokens: Sequence[int],
               deadline_ms: Optional[float] = None) -> PendingRequest:
        """Enqueue one request; returns a waitable :class:`PendingRequest`.

        Cache hits complete immediately without touching the queue.  A full
        queue raises :class:`~repro.serving.batcher.QueueFullError` --
        backpressure, not silent buffering.

        ``deadline_ms`` bounds the request's end-to-end latency: if the
        estimated queue wait already exceeds it, admission control sheds
        the request with a typed
        :class:`~repro.serving.batcher.OverloadedError` instead of
        accepting work it cannot finish in time; if the deadline passes
        while the request is queued, it fails with
        :class:`~repro.serving.batcher.DeadlineExceededError` *before*
        consuming a model forward.
        """
        if not self._accepting():
            raise ServiceClosedError("service is not running")
        key = self._validate(tokens)
        deadline = None
        if deadline_ms is not None:
            if deadline_ms <= 0:
                raise ValueError("deadline_ms must be > 0")
            deadline = time.perf_counter() + deadline_ms / 1e3
        request = PendingRequest(key, deadline=deadline)
        cached = self.cache.get(key)
        if cached is not None:
            request.cached = True
            request.set_result(cached)
            self.stats.record(0.0, cached=True)
            return request
        if deadline_ms is not None:
            estimated = self.estimated_wait_seconds()
            if estimated > deadline_ms / 1e3:
                self.stats.record_event("overloaded")
                raise OverloadedError(
                    f"estimated wait {estimated * 1e3:.1f} ms exceeds the "
                    f"request deadline {deadline_ms:.1f} ms "
                    f"(queue depth {self.batcher.depth()})")
        self.batcher.submit(request)
        return request

    def estimated_wait_seconds(self) -> float:
        """Rough submit-to-forward-start wait at the current queue depth.

        Queue depth in batches ahead of a new arrival, times the median
        recent forward time, plus one coalescing window.  Returns 0.0
        before any forward has been measured (admit optimistically -- the
        first requests *are* the measurement).
        """
        forward_p50 = self.stats.forward_p50_seconds()
        if forward_p50 <= 0.0:
            return 0.0
        batches_ahead = (self.batcher.depth() // self.config.max_batch_size) + 1
        return batches_ahead * forward_p50 + self.config.max_wait_ms / 1e3

    def infer(self, tokens: Sequence[int],
              timeout: Optional[float] = 30.0) -> np.ndarray:
        """Synchronous submit + wait; returns the per-token hidden states.

        An abandoned wait cancels the request, so a caller that gave up
        never consumes a model forward for an answer nobody reads.
        """
        request = self.submit(tokens)
        try:
            return request.result(timeout)
        except TimeoutError:
            request.cancel()
            raise

    def infer_many(self, sequences: Iterable[Sequence[int]],
                   timeout: Optional[float] = 30.0) -> List[np.ndarray]:
        """Submit a burst of requests, then wait for all of them."""
        pending = [self.submit(tokens) for tokens in sequences]
        return [request.result(timeout) for request in pending]

    def snapshot(self) -> dict:
        """Service-level stats: latency percentiles, req/s, cache, queue."""
        snap = self.stats.snapshot()
        snap["cache"] = self.cache.stats()
        snap["queue_depth"] = self.batcher.depth()
        snap["max_batch_size"] = self.config.max_batch_size
        snap["max_wait_ms"] = self.config.max_wait_ms
        snap["engine"] = self.config.engine
        snap["block_kv"] = self.config.block_kv
        return snap

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #
    def _validate(self, tokens: Sequence[int]) -> Tuple[int, ...]:
        key = tuple(int(t) for t in tokens)
        if not key:
            raise ValueError("a request must contain at least one token")
        model_config = getattr(self.model, "config", None)
        max_seq_len = getattr(model_config, "max_seq_len", None)
        if max_seq_len is not None and len(key) > max_seq_len:
            raise ValueError(
                f"request length {len(key)} exceeds max_seq_len {max_seq_len}")
        # Reject out-of-vocabulary ids at submit time: a negative id would
        # silently wrap through numpy indexing into the wrong embedding row
        # (and poison the cache), and an overlarge one would blow up inside
        # the worker, failing every innocent request in the same batch.
        vocab_size = getattr(model_config, "vocab_size", None)
        if vocab_size is not None:
            bad = [t for t in key if not 0 <= t < vocab_size]
            if bad:
                raise ValueError(
                    f"token ids {bad[:4]} outside the model vocabulary "
                    f"[0, {vocab_size})")
        return key

    def _serve_loop(self) -> None:
        # Exits as soon as stop() is requested: the backlog is *failed*
        # (typed, prompt) by stop()'s drain rather than served -- shutdown
        # is bounded by one in-flight batch, not the queue depth.
        while not self._stopping.is_set():
            self._last_beat = time.perf_counter()
            batch = self.batcher.next_batch(timeout=_IDLE_POLL_SECONDS)
            if not batch:
                continue
            try:
                self._execute(batch)
            except WorkerCrashError as exc:
                # Unsupervised isolation: a worker-fatal error fails the
                # affected batch but the loop keeps serving.  A supervised
                # service overrides this loop and restarts instead.
                for request in batch:
                    request.set_exception(exc)

    def _form_batch(self, batch: List[PendingRequest]
                    ) -> Tuple[List[PendingRequest], List[Tuple[int, ...]]]:
        """Filter a raw batch down to live requests and their unique keys.

        The batcher filters cancelled/expired entries at formation, but a
        cancel can race the window between formation and forward.
        Identical concurrent requests ride the batch once: each distinct
        key is encoded a single time and every waiter gets its own copy
        (see :meth:`_complete_batch`).  Shared by the in-thread execute
        path and the sharded dispatch path (:mod:`repro.serving.shard`).
        """
        live = [request for request in batch if not request.done()]
        unique: "dict[Tuple[int, ...], int]" = {}
        for request in live:
            unique.setdefault(request.key, len(unique))
        return live, list(unique)

    def _complete_batch(self, live: List[PendingRequest],
                        keys: List[Tuple[int, ...]], outputs,
                        forward_start: float) -> None:
        """Record stats, populate the cache and answer every live waiter.

        ``outputs`` are the per-key hidden states in ``keys`` order.  Only
        the *winning* completer records latency -- a superseded worker (or
        shard) finishing late must not double-count.
        """
        forward_seconds = time.perf_counter() - forward_start
        self.stats.record_batch(len(live), forward_seconds=forward_seconds)
        for key, hidden in zip(keys, outputs):
            self.cache.put(key, hidden)
        by_key = dict(zip(keys, outputs))
        for request in live:
            if request.set_result(by_key[request.key].copy()):
                # Queue wait: submission until this batch's forward
                # started (queueing plus the coalescing window).
                self.stats.record(
                    time.perf_counter() - request.submitted_at,
                    queue_wait_seconds=forward_start
                    - request.submitted_at)

    def _execute(self, batch: List[PendingRequest]) -> None:
        live, keys = self._form_batch(batch)
        if not live:
            return
        with self._inflight_lock:
            self._inflight = live
            self._inflight_since = time.perf_counter()
        forward_start = time.perf_counter()
        try:
            try:
                outputs = self.model.encode_ragged(
                    [list(key) for key in keys], pad_id=self.config.pad_id,
                    **self._engine_kwargs)
            except WorkerCrashError:
                # Worker-fatal: leave the requests pending (the supervisor
                # requeues them onto a fresh worker) and let the loop
                # decide the worker's fate.
                raise
            except Exception as exc:  # noqa: BLE001 - forwarded to callers
                for request in live:
                    request.set_exception(exc)
                return
            self._complete_batch(live, keys, outputs, forward_start)
        finally:
            with self._inflight_lock:
                if self._inflight is live:
                    self._inflight = []
                    self._inflight_since = None


def build_encoder_model(
    model_name: str = "tiny-base",
    kernel: str = "auto",
    kernel_options: Optional[dict] = None,
    seed: int = 0,
):
    """Construct the Softermax BERT encoder the serving stack runs.

    The encoder runs the bit-accurate Softermax attention (``"softermax"``
    variant) through the requested kernel -- ``"auto"`` resolves to the
    adaptive fused/blocked/parallel dispatcher, which is the configuration
    the serving benchmarks record.
    """
    from repro.models import BertConfig
    from repro.models.bert import BertEncoderModel

    if model_name == "tiny-large":
        model_config = BertConfig.tiny_large()
    elif model_name == "tiny-base":
        model_config = BertConfig.tiny_base()
    elif model_name == "tiny-long":
        model_config = BertConfig.tiny_long()
    else:
        raise ValueError(
            f"unknown serving model {model_name!r}; choose tiny-base, "
            "tiny-large or tiny-long (the published geometries are "
            "cost-model descriptors, not runnable NumPy models)")
    return BertEncoderModel(model_config, softmax_variant="softermax",
                            kernel=kernel, kernel_options=kernel_options,
                            seed=seed).eval()


def build_encoder_service(
    model_name: str = "tiny-base",
    kernel: str = "auto",
    kernel_options: Optional[dict] = None,
    seed: int = 0,
    config: ServiceConfig = ServiceConfig(),
):
    """Construct an :class:`InferenceService` over a Softermax BERT encoder
    (see :func:`build_encoder_model` for the encoder configuration)."""
    model = build_encoder_model(model_name=model_name, kernel=kernel,
                                kernel_options=kernel_options, seed=seed)
    return InferenceService(model, config)
