"""Thread-safe LRU response cache for the inference service.

Because batching is bit-transparent (a request's answer does not depend on
which batch it rode in), a cached response is *exactly* the response a
fresh computation would produce -- caching never changes served bits, only
latency.  Values are stored once and copied out on every hit so callers
can never corrupt the cache through the arrays they receive.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Hashable, Optional

import numpy as np


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry.

    Parameters
    ----------
    capacity:
        Maximum number of entries; ``0`` disables the cache entirely
        (every ``get`` misses, ``put`` is a no-op).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError("cache capacity must be >= 0")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, np.ndarray]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[np.ndarray]:
        """Return a copy of the cached value, or ``None`` on a miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
        # Copy outside the lock: entries are never mutated in place (put
        # stores a private copy and only rebinds), so concurrent hits can
        # memcpy in parallel instead of serializing behind the lock.
        return value.copy()

    def put(self, key: Hashable, value: np.ndarray) -> None:
        """Insert (or refresh) an entry, evicting the oldest if full."""
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = np.asarray(value).copy()
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when never queried)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "capacity": self.capacity,
            "size": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }
