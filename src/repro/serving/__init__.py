"""Dynamic-batching inference serving on the adaptive Softermax engine.

``repro.kernels`` makes a single softmax call fast; this subpackage turns
single-tensor calls into a *served* workload, the regime the Softermax
paper targets (transformer inference at datacenter request rates):

* :mod:`repro.serving.batcher` -- the dynamic micro-batcher: a bounded
  request queue plus ``max_batch_size`` / ``max_wait_ms`` coalescing.
* :mod:`repro.serving.service` -- :class:`InferenceService`: accepts
  per-request token sequences, coalesces them into padded batches, runs
  them through the BERT encoder / adaptive Softermax kernel as one
  forward, and returns per-request results.
* :mod:`repro.serving.cache` -- the LRU response cache.
* :mod:`repro.serving.stats` -- latency/throughput accounting (p50/p99,
  req/s, batch-size distribution).

The load-bearing guarantee is **bit-transparency**: a request's answer is
bitwise identical whether it rode alone or inside a coalesced batch (see
:meth:`repro.models.bert.BertEncoderModel.encode_ragged`), so batching is
purely a throughput knob and the response cache can never serve a value
that differs from a fresh computation.
"""

from repro.serving.batcher import (
    MicroBatcher,
    PendingRequest,
    QueueFullError,
    ServiceClosedError,
)
from repro.serving.cache import LRUCache
from repro.serving.service import (
    InferenceService,
    ServiceConfig,
    build_encoder_service,
)
from repro.serving.stats import LatencyStats, percentile

__all__ = [
    "MicroBatcher",
    "PendingRequest",
    "QueueFullError",
    "ServiceClosedError",
    "LRUCache",
    "InferenceService",
    "ServiceConfig",
    "build_encoder_service",
    "LatencyStats",
    "percentile",
]
