"""Dynamic-batching inference serving on the adaptive Softermax engine.

``repro.kernels`` makes a single softmax call fast; this subpackage turns
single-tensor calls into a *served* workload, the regime the Softermax
paper targets (transformer inference at datacenter request rates):

* :mod:`repro.serving.batcher` -- the dynamic micro-batcher: a bounded
  request queue plus ``max_batch_size`` / ``max_wait_ms`` coalescing.
* :mod:`repro.serving.service` -- :class:`InferenceService`: accepts
  per-request token sequences, coalesces them into padded batches, runs
  them through the BERT encoder / adaptive Softermax kernel as one
  forward, and returns per-request results.
* :mod:`repro.serving.cache` -- the LRU response cache.
* :mod:`repro.serving.stats` -- latency/throughput accounting (p50/p99,
  req/s, batch-size distribution, robustness event counters).
* :mod:`repro.serving.supervisor` -- :class:`SupervisedService`: the
  inference worker under actor-style supervision (heartbeat health
  checks, crash/hang restarts with in-flight requeue, bounded restarts
  with exponential backoff + seeded jitter).
* :mod:`repro.serving.daemon` -- the asyncio TCP front end: a
  line-delimited JSON protocol multiplexing many open-loop clients into
  the micro-batcher, with per-request deadlines and typed overload
  responses.
* :mod:`repro.serving.faults` -- deterministic fault injection (seeded
  schedules of worker crashes, hangs, model errors, kernel-pool death,
  plus the process-grade kill/stall/corrupt kinds) driving both the test
  suite and ``loadtest --chaos``.
* :mod:`repro.serving.snapshot` -- checksummed, versioned shared-memory
  model snapshots (:class:`SnapshotBundle`): published once, attached
  zero-copy by every shard worker, verified CRC-by-CRC before serving.
* :mod:`repro.serving.shard` -- :class:`ShardedInferenceService`: the
  same service surface over N supervised worker *processes* sharing one
  snapshot -- SIGKILL-grade crash isolation, heartbeat stall detection,
  per-shard restart budgets with graceful degradation.

The load-bearing guarantee is **bit-transparency**: a request's answer is
bitwise identical whether it rode alone or inside a coalesced batch (see
:meth:`repro.models.bert.BertEncoderModel.encode_ragged`), so batching is
purely a throughput knob and the response cache can never serve a value
that differs from a fresh computation.
"""

from repro.serving.batcher import (
    DeadlineExceededError,
    MicroBatcher,
    OverloadedError,
    PendingRequest,
    QueueFullError,
    RequestCancelledError,
    ServiceClosedError,
    WorkerCrashError,
)
from repro.serving.cache import LRUCache
from repro.serving.faults import Fault, FaultSchedule, FaultyModel
from repro.serving.service import (
    InferenceService,
    ServiceConfig,
    build_encoder_model,
    build_encoder_service,
)
from repro.serving.shard import (
    DegradedService,
    ShardedInferenceService,
    WorkerStalledError,
    build_sharded_service,
)
from repro.serving.snapshot import SnapshotBundle, SnapshotCorruptionError
from repro.serving.stats import LatencyStats, percentile
from repro.serving.supervisor import (
    RestartBudget,
    RestartPolicy,
    SupervisedService,
    SupervisorExhaustedError,
    WorkerHungError,
    build_supervised_service,
)

__all__ = [
    "MicroBatcher",
    "PendingRequest",
    "QueueFullError",
    "ServiceClosedError",
    "DeadlineExceededError",
    "OverloadedError",
    "RequestCancelledError",
    "WorkerCrashError",
    "WorkerHungError",
    "SupervisorExhaustedError",
    "LRUCache",
    "InferenceService",
    "ServiceConfig",
    "build_encoder_model",
    "build_encoder_service",
    "RestartPolicy",
    "RestartBudget",
    "SupervisedService",
    "build_supervised_service",
    "SnapshotBundle",
    "SnapshotCorruptionError",
    "ShardedInferenceService",
    "DegradedService",
    "WorkerStalledError",
    "build_sharded_service",
    "Fault",
    "FaultSchedule",
    "FaultyModel",
    "LatencyStats",
    "percentile",
]
