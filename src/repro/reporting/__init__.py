"""Paper-style text tables and figure series export."""

from repro.reporting.tables import (
    format_table,
    format_table1,
    format_table3,
    format_table4,
)
from repro.reporting.figures import (
    series_to_csv,
    ascii_bar_chart,
    stacked_fraction_chart,
)

__all__ = [
    "format_table",
    "format_table1",
    "format_table3",
    "format_table4",
    "series_to_csv",
    "ascii_bar_chart",
    "stacked_fraction_chart",
]
