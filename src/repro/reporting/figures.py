"""Figure data export: CSV-style series and ASCII charts.

The paper's two figures (runtime breakdown vs sequence length, PE energy vs
sequence length) are regenerated as numeric series; these helpers render
them as CSV text (for plotting elsewhere) and as quick ASCII bar charts so
the benchmark output is readable directly in a terminal.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def series_to_csv(x_name: str, x_values: Sequence[object],
                  columns: Dict[str, Sequence[float]], float_digits: int = 4) -> str:
    """Render named series as CSV text with ``x_name`` as the first column."""
    for name, values in columns.items():
        if len(values) != len(x_values):
            raise ValueError(f"column {name!r} length does not match x values")
    header = ",".join([x_name] + list(columns))
    lines = [header]
    for i, x in enumerate(x_values):
        cells = [str(x)] + [f"{columns[name][i]:.{float_digits}f}" for name in columns]
        lines.append(",".join(cells))
    return "\n".join(lines)


def ascii_bar_chart(labels: Sequence[object], values: Sequence[float],
                    width: int = 50, title: str = "", unit: str = "") -> str:
    """Render one series as a horizontal ASCII bar chart."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not values:
        return title
    max_value = max(values)
    scale = width / max_value if max_value > 0 else 0.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(value * scale)))
        lines.append(f"{str(label).rjust(label_width)} | {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def stacked_fraction_chart(x_values: Sequence[object],
                           fractions: Dict[str, Sequence[float]],
                           width: int = 60, title: str = "") -> str:
    """Render stacked runtime fractions (Figure 1 style) as ASCII rows.

    Each row shows one x value (sequence length); the row is ``width``
    characters split proportionally between the operator classes, each drawn
    with the first letter of its name.
    """
    lines = [title] if title else []
    legend = ", ".join(f"{name[0]}={name}" for name in fractions)
    lines.append(f"legend: {legend}")
    label_width = max(len(str(x)) for x in x_values)
    for i, x in enumerate(x_values):
        row_chars: List[str] = []
        for name, series in fractions.items():
            count = int(round(series[i] * width))
            row_chars.append(name[0] * count)
        row = "".join(row_chars)[:width].ljust(width)
        softmax_pct = fractions.get("softmax", [0.0] * len(x_values))[i] * 100.0
        lines.append(f"{str(x).rjust(label_width)} |{row}| softmax={softmax_pct:.1f}%")
    return "\n".join(lines)
