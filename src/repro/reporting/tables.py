"""Plain-text table formatting in the style of the paper's tables.

The benchmark harness prints its results through these helpers so that the
regenerated Table I/III/IV outputs are easy to compare side by side with the
paper.  Everything is pure string formatting (no plotting dependencies).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "", float_digits: int = 2) -> str:
    """Render a simple aligned text table.

    Parameters
    ----------
    headers:
        Column headers.
    rows:
        Iterable of rows; each row must have ``len(headers)`` cells.  Floats
        are rounded to ``float_digits``.
    title:
        Optional title line printed above the table.
    """
    headers = [str(h) for h in headers]
    formatted_rows: List[List[str]] = []
    for row in rows:
        cells = list(row)
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but there are {len(headers)} headers"
            )
        formatted_rows.append([_format_cell(cell, float_digits) for cell in cells])

    widths = [len(h) for h in headers]
    for row in formatted_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append("-+-".join("-" * w for w in widths))
    parts.extend(line(row) for row in formatted_rows)
    return "\n".join(parts)


def _format_cell(cell: object, float_digits: int) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return f"{cell:.{float_digits}f}"
    return str(cell)


def format_table1(config) -> str:
    """Paper Table I: the Softermax bitwidths."""
    from repro.core import SoftermaxConfig  # local import to avoid cycles

    if not isinstance(config, SoftermaxConfig):
        raise TypeError("format_table1 expects a SoftermaxConfig")
    headers = ["Inp.", "LocalMax", "Unnormed", "PowSum", "Recip.", "Outp."]
    row = [
        str(config.input_fmt),
        str(config.max_fmt),
        str(config.unnormed_fmt),
        str(config.sum_fmt),
        str(config.recip_fmt),
        str(config.output_fmt),
    ]
    return format_table(headers, [row],
                        title="Table I: Summary of Softermax Bitwidths, Q(Int., Frac.)")


def format_table3(comparisons: Dict[str, "object"]) -> str:
    """Paper Table III: accuracy of baseline vs Softermax per model size.

    ``comparisons`` maps a model label (e.g. ``"BERT-Base (tiny surrogate)"``)
    to an :class:`repro.eval.accuracy.AccuracyComparison`.
    """
    lines = []
    for model_label, comparison in comparisons.items():
        tasks = comparison.tasks
        headers = ["Variant"] + [task.upper() for task in tasks] + ["Avg Δ"]
        baseline_row = ["Baseline"] + [comparison.baseline[t] for t in tasks] + [0.0]
        softermax_row = (["Softermax"] + [comparison.softermax[t] for t in tasks]
                         + [comparison.average_delta()])
        lines.append(format_table(
            headers, [baseline_row, softermax_row],
            title=f"Table III ({model_label}): accuracy, higher is better",
        ))
        lines.append("")
    return "\n".join(lines).rstrip()


def format_table4(result) -> str:
    """Paper Table IV: Softermax vs DesignWare area/energy ratios."""
    headers = ["Component", "Area (Softermax/Baseline)", "Energy (Softermax/Baseline)"]
    rows = []
    for area_row, energy_row in zip(result.area_rows, result.energy_rows):
        rows.append([area_row.label, f"{area_row.ratio:.2f}x", f"{energy_row.ratio:.2f}x"])
    return format_table(headers, rows,
                        title="Table IV: Softermax comparison to DesignWare-based softmax baseline")
