"""Latency / throughput model for the softmax datapaths.

Besides area and energy, the paper motivates online normalization with the
*latency and memory overhead* of the explicit max pass (section II-B): the
numerically-stable softmax must traverse the score vector once to find the
maximum and a second time to exponentiate and accumulate, while Softermax's
online normalization does everything in a single pass and therefore can be
overlapped with the MAC datapath that produces the scores.

This module provides a simple cycle model for both designs integrated into a
MAGNet-style PE:

* the PE produces ``vector_size`` attention scores per cycle (one vector MAC
  result per lane),
* the softmax unit consumes ``vector_size`` scores per cycle once they are
  available, and
* the normalization stage streams the unnormalized outputs toward the global
  buffer at ``vector_size`` elements per cycle once the row's denominator is
  known.

The interesting output is the *latency per attention row* and the achievable
*throughput* (rows per 1000 cycles) as a function of sequence length -- the
quantities behind the paper's "off the critical path" integration argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.hardware.pe import PEConfig


@dataclass(frozen=True)
class SoftmaxLatencyModel:
    """Pipeline latencies (in cycles) of one softmax implementation."""

    #: Name used in reports.
    name: str
    #: Cycles of pipeline depth through the exponential path for one slice.
    exp_pipeline_depth: int
    #: Cycles of pipeline depth through the normalization/divide path.
    norm_pipeline_depth: int
    #: Number of passes over the score vector required before the
    #: denominator is known (1 for online normalization, 2 for explicit max).
    passes_over_scores: int

    def __post_init__(self) -> None:
        if self.exp_pipeline_depth < 1 or self.norm_pipeline_depth < 1:
            raise ValueError("pipeline depths must be >= 1")
        if self.passes_over_scores < 1:
            raise ValueError("passes_over_scores must be >= 1")


#: Softermax: single-pass, shallow fixed-point pipelines.
SOFTERMAX_LATENCY = SoftmaxLatencyModel(
    name="softermax", exp_pipeline_depth=3, norm_pipeline_depth=3, passes_over_scores=1
)
#: DesignWare-style baseline: explicit max pass plus deep FP16 pipelines.
BASELINE_LATENCY = SoftmaxLatencyModel(
    name="designware", exp_pipeline_depth=8, norm_pipeline_depth=12, passes_over_scores=2
)


@dataclass
class RowLatencyBreakdown:
    """Cycle counts for softmaxing one attention row of ``seq_len`` scores."""

    seq_len: int
    vector_size: int
    score_generation_cycles: int
    max_pass_cycles: int
    exponential_cycles: int
    normalization_cycles: int

    @property
    def softmax_cycles(self) -> int:
        """Cycles attributable to the softmax itself (excluding the MACs)."""
        return self.max_pass_cycles + self.exponential_cycles + self.normalization_cycles

    @property
    def total_cycles(self) -> int:
        return self.score_generation_cycles + self.softmax_cycles

    @property
    def softmax_overhead_fraction(self) -> float:
        """Fraction of the row latency spent in softmax stages."""
        return self.softmax_cycles / self.total_cycles

    def as_dict(self) -> Dict[str, int]:
        return {
            "score_generation": self.score_generation_cycles,
            "max_pass": self.max_pass_cycles,
            "exponential": self.exponential_cycles,
            "normalization": self.normalization_cycles,
        }


def row_latency(
    seq_len: int,
    model: SoftmaxLatencyModel,
    pe_config: PEConfig | None = None,
    head_dim: int = 64,
) -> RowLatencyBreakdown:
    """Latency to produce and softmax one attention row on the PE.

    Parameters
    ----------
    seq_len:
        Number of scores in the row (key positions).
    model:
        The softmax implementation's latency parameters.
    pe_config:
        PE geometry (vector width and lane count).
    head_dim:
        Inner dimension of the Q x K^T dot products.
    """
    if seq_len < 1:
        raise ValueError("seq_len must be >= 1")
    pe_config = pe_config or PEConfig.wide32()
    v = pe_config.vector_size
    slices = -(-seq_len // v)

    # The MAC array computes `num_lanes` scores in parallel, each needing
    # head_dim/vector_size accumulation steps.
    mac_steps_per_slice = -(-head_dim // v)
    score_generation = slices * mac_steps_per_slice

    # Explicit-max designs must re-read the whole row before exponentiating.
    max_pass = slices if model.passes_over_scores > 1 else 0

    # The exponential path is pipelined: one slice per cycle plus the depth.
    exponential = slices + model.exp_pipeline_depth

    # Normalization streams the row once more (numerator renorm + divide).
    normalization = slices + model.norm_pipeline_depth

    return RowLatencyBreakdown(
        seq_len=seq_len,
        vector_size=v,
        score_generation_cycles=int(score_generation),
        max_pass_cycles=int(max_pass),
        exponential_cycles=int(exponential),
        normalization_cycles=int(normalization),
    )


def attention_latency(
    seq_len: int,
    model: SoftmaxLatencyModel,
    pe_config: PEConfig | None = None,
    head_dim: int = 64,
    num_heads: int = 1,
) -> int:
    """Total cycles to score+softmax all rows of ``num_heads`` heads."""
    if num_heads < 1:
        raise ValueError("num_heads must be >= 1")
    per_row = row_latency(seq_len, model, pe_config, head_dim)
    # Rows are pipelined back to back; the per-row pipeline depths are paid
    # once per row in this simple (un-overlapped) model.
    return per_row.total_cycles * seq_len * num_heads


@dataclass
class LatencyComparison:
    """Softermax vs baseline latency at one sequence length."""

    seq_len: int
    softermax_cycles: int
    baseline_cycles: int

    @property
    def speedup(self) -> float:
        return self.baseline_cycles / self.softermax_cycles


def latency_sweep(
    seq_lens: Iterable[int] = (128, 256, 384, 512, 1024, 2048),
    pe_config: PEConfig | None = None,
    head_dim: int = 64,
) -> List[LatencyComparison]:
    """Softermax vs baseline row-latency sweep over sequence lengths."""
    results: List[LatencyComparison] = []
    for seq_len in seq_lens:
        soft = row_latency(seq_len, SOFTERMAX_LATENCY, pe_config, head_dim)
        base = row_latency(seq_len, BASELINE_LATENCY, pe_config, head_dim)
        results.append(LatencyComparison(
            seq_len=seq_len,
            softermax_cycles=soft.total_cycles,
            baseline_cycles=base.total_cycles,
        ))
    return results


@dataclass
class ThroughputReport:
    """Rows-per-kilocycle throughput of the two designs."""

    seq_len: int
    softermax_rows_per_kcycle: float
    baseline_rows_per_kcycle: float

    @property
    def improvement(self) -> float:
        return self.softermax_rows_per_kcycle / self.baseline_rows_per_kcycle


def throughput_sweep(
    seq_lens: Iterable[int] = (128, 384, 1024),
    pe_config: PEConfig | None = None,
) -> List[ThroughputReport]:
    """Throughput (softmaxed rows per 1000 cycles) for both designs."""
    reports: List[ThroughputReport] = []
    for seq_len in seq_lens:
        soft = row_latency(seq_len, SOFTERMAX_LATENCY, pe_config)
        base = row_latency(seq_len, BASELINE_LATENCY, pe_config)
        reports.append(ThroughputReport(
            seq_len=seq_len,
            softermax_rows_per_kcycle=1000.0 / soft.total_cycles,
            baseline_rows_per_kcycle=1000.0 / base.total_cycles,
        ))
    return reports
