"""MAGNet-style processing element (PE) model.

MAGNet (the paper's reference [17]) is a modular DNN-accelerator generator;
its PE contains a vector MAC datapath (``vector_size`` MACs per lane times
``num_lanes`` lanes), weight/input buffers, an accumulation collector and a
post-processing unit (PPU).  The paper integrates the Unnormed Softmax unit
into the PPU of each PE and the Normalization unit between the PEs and the
global buffer.

The PE model composes the technology primitives into an itemized area and
provides the per-operation energies the workload energy model needs.  Two
softmax implementations can be plugged in: ``"softermax"`` and
``"designware"`` (the FP16 baseline), mirroring Table II of the paper for
the PE parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.core.config import SoftermaxConfig
from repro.hardware.baseline_units import BaselineNormalizationUnit, BaselineUnnormedUnit
from repro.hardware.softermax_units import SoftermaxNormalizationUnit, SoftermaxUnnormedUnit
from repro.hardware.technology import Technology, DEFAULT_TECHNOLOGY
from repro.hardware.units import AreaBreakdown, EnergyBreakdown, HardwareUnit

#: Valid softmax implementation names for the PE.
SOFTMAX_IMPLEMENTATIONS = ("softermax", "designware")


@dataclass(frozen=True)
class PEConfig:
    """MAGNet PE design parameters (paper Table II).

    The paper evaluates 16-wide and 32-wide configurations; the buffer sizes
    listed in Table II are per configuration (16 KB/32 KB input buffer,
    32 KB/128 KB weight buffer, 6 KB/12 KB accumulation collector).
    """

    vector_size: int = 32
    num_lanes: int = 32
    weight_bits: int = 8
    activation_bits: int = 8
    accumulation_bits: int = 24
    input_buffer_bytes: int = 32 * 1024
    weight_buffer_bytes: int = 128 * 1024
    accum_collector_bytes: int = 12 * 1024

    def __post_init__(self) -> None:
        if self.vector_size < 1 or self.num_lanes < 1:
            raise ValueError("vector_size and num_lanes must be >= 1")

    @property
    def num_macs(self) -> int:
        return self.vector_size * self.num_lanes

    @classmethod
    def wide32(cls) -> "PEConfig":
        """The 32-wide configuration of paper Table II."""
        return cls()

    @classmethod
    def wide16(cls) -> "PEConfig":
        """The 16-wide configuration of paper Table II."""
        return cls(
            vector_size=16,
            num_lanes=16,
            input_buffer_bytes=16 * 1024,
            weight_buffer_bytes=32 * 1024,
            accum_collector_bytes=6 * 1024,
        )


@dataclass
class ProcessingElement(HardwareUnit):
    """A MAGNet-style PE with a pluggable softmax implementation."""

    config: PEConfig = field(default_factory=PEConfig.wide32)
    softmax_impl: str = "softermax"
    softermax_config: SoftermaxConfig = field(default_factory=SoftermaxConfig.paper_table1)
    tech: Technology = field(default_factory=lambda: DEFAULT_TECHNOLOGY)
    name: str = "magnet_pe"

    def __post_init__(self) -> None:
        if self.softmax_impl not in SOFTMAX_IMPLEMENTATIONS:
            raise ValueError(
                f"softmax_impl must be one of {SOFTMAX_IMPLEMENTATIONS}, got {self.softmax_impl!r}"
            )
        if self.softmax_impl == "softermax":
            self.unnormed_unit: HardwareUnit = SoftermaxUnnormedUnit(
                vector_size=self.config.vector_size,
                config=self.softermax_config,
                tech=self.tech,
            )
            self.normalization_unit = SoftermaxNormalizationUnit(
                vector_size=self.config.vector_size,
                config=self.softermax_config,
                tech=self.tech,
            )
        else:
            self.unnormed_unit = BaselineUnnormedUnit(
                vector_size=self.config.vector_size, tech=self.tech
            )
            self.normalization_unit = BaselineNormalizationUnit(
                vector_size=self.config.vector_size, tech=self.tech
            )

    # ------------------------------------------------------------------ #
    # area
    # ------------------------------------------------------------------ #
    def mac_array_area(self) -> float:
        cfg, tech = self.config, self.tech
        per_mac = tech.int_mac_area(cfg.weight_bits, cfg.activation_bits, cfg.accumulation_bits)
        return per_mac * cfg.num_macs

    def buffer_area(self) -> Tuple[float, float, float]:
        tech, cfg = self.tech, self.config
        return (
            tech.sram_area(cfg.input_buffer_bytes),
            tech.sram_area(cfg.weight_buffer_bytes),
            tech.sram_area(cfg.accum_collector_bytes),
        )

    def ppu_other_area(self) -> float:
        """Non-softmax post-processing (ReLU/pooling/scaling) per lane."""
        tech, cfg = self.tech, self.config
        per_lane = (
            tech.int_adder_area(cfg.accumulation_bits)
            + tech.int_multiplier_area(cfg.accumulation_bits, 8)
            + tech.register_area(cfg.accumulation_bits)
        )
        return per_lane * cfg.vector_size

    def area(self, include_normalization_unit: bool = True) -> AreaBreakdown:
        """Itemized PE area.

        The Normalization unit is architecturally shared between PEs and the
        global buffer; by default it is included (amortized entirely into
        this PE) so that "Full PE" comparisons account for both units, as
        the paper's Table IV does.
        """
        area = AreaBreakdown()
        area.add("mac_array", self.mac_array_area())
        input_b, weight_b, accum_b = self.buffer_area()
        area.add("input_buffer", input_b)
        area.add("weight_buffer", weight_b)
        area.add("accumulation_collector", accum_b)
        area.add("ppu_other", self.ppu_other_area())
        area.merge(self.unnormed_unit.area(), prefix="softmax_unnormed.")
        if include_normalization_unit:
            area.merge(self.normalization_unit.area(), prefix="softmax_norm.")
        return area

    # ------------------------------------------------------------------ #
    # per-operation energies (used by the workload energy model)
    # ------------------------------------------------------------------ #
    def mac_energy(self) -> float:
        """Energy of one 8-bit MAC with a 24-bit accumulator (pJ)."""
        cfg, tech = self.config, self.tech
        return tech.int_mac_energy(cfg.weight_bits, cfg.activation_bits, cfg.accumulation_bits)

    def operand_read_energy(self, bits: int) -> float:
        """Energy to read one operand from a PE-local buffer (pJ)."""
        return self.tech.sram_read_energy(bits)

    def operand_write_energy(self, bits: int) -> float:
        """Energy to write one value into a PE-local buffer (pJ)."""
        return self.tech.sram_write_energy(bits)

    def global_transfer_energy(self, bits: int) -> float:
        """Energy to move one value to/from the global buffer (pJ)."""
        return self.tech.global_buffer_energy(bits)

    def softmax_row_energy(self, seq_len: int) -> EnergyBreakdown:
        """Energy to softmax one attention row of length ``seq_len``."""
        energy = EnergyBreakdown()
        energy.merge(self.unnormed_unit.row_energy(seq_len), prefix="unnormed.")
        energy.merge(self.normalization_unit.row_energy(seq_len), prefix="norm.")
        return energy

    def softmax_output_bits(self) -> int:
        """Width of a softmax output element written back to the buffers."""
        if self.softmax_impl == "softermax":
            return self.softermax_config.output_fmt.total_bits
        return 16
