"""GPU operator-level runtime model (paper Figure 1).

Figure 1 of the paper profiles BERT-Large on a Volta GPU and shows that the
softmax (and the other non-matmul attention operations) account for a large
and growing fraction of runtime as the sequence length increases.  The
underlying reason is structural:

* the matrix multiplies run on tensor cores at very high throughput,
* softmax/dropout run on the general-purpose/special-function datapath at a
  throughput that is orders of magnitude lower per element, and
* the softmax work grows with ``seq_len**2`` (the attention score matrix)
  while the dominant matmul work grows with ``seq_len * hidden**2``.

This module reproduces that analysis with an explicit operator enumeration
of a Transformer layer and a simple throughput/bandwidth GPU model.  The
absolute milliseconds are not calibrated to a V100; the reproduced quantity
is the runtime *breakdown* (fractions per operator class) and its trend
with sequence length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.models.bert import BertConfig


#: Operator classes reported in the breakdown (mirroring Figure 1's legend).
OP_CLASSES = ("matmul", "softmax", "dropout", "norm_act_other")


@dataclass(frozen=True)
class GPUModel:
    """Throughput model of a Volta-class GPU.

    Numbers are deliberately round: 100 TFLOP/s of tensor-core matmul
    throughput (fp16), and elementwise/special-function pipelines that
    process on the order of 5-10 billion elements per second per operator
    pass once kernel launch and memory traffic are included.  Softmax is
    slower per element than dropout because it makes several passes (max,
    exponential+sum, divide) and uses the special-function unit.
    """

    name: str = "volta-like"
    #: Effective tensor-core throughput for large matmuls (FLOP/s).
    matmul_flops_per_second: float = 100e12
    #: Effective elements/second for a softmax pass (max+exp+sum+div).
    softmax_elements_per_second: float = 6e9
    #: Effective elements/second for dropout (mask generate + multiply).
    dropout_elements_per_second: float = 18e9
    #: Effective elements/second for layernorm/residual/activation traffic.
    elementwise_elements_per_second: float = 25e9
    #: Fixed per-kernel launch overhead in seconds.
    kernel_launch_overhead: float = 5e-6

    def matmul_time(self, flops: float, num_kernels: int = 1) -> float:
        return flops / self.matmul_flops_per_second + num_kernels * self.kernel_launch_overhead

    def softmax_time(self, elements: float, num_kernels: int = 1) -> float:
        return elements / self.softmax_elements_per_second + num_kernels * self.kernel_launch_overhead

    def dropout_time(self, elements: float, num_kernels: int = 1) -> float:
        return elements / self.dropout_elements_per_second + num_kernels * self.kernel_launch_overhead

    def elementwise_time(self, elements: float, num_kernels: int = 1) -> float:
        return (elements / self.elementwise_elements_per_second
                + num_kernels * self.kernel_launch_overhead)


@dataclass
class OperatorCount:
    """Work of one Transformer layer, split by operator class."""

    matmul_flops: float = 0.0
    softmax_elements: float = 0.0
    dropout_elements: float = 0.0
    elementwise_elements: float = 0.0
    matmul_kernels: int = 0
    softmax_kernels: int = 0
    dropout_kernels: int = 0
    elementwise_kernels: int = 0


def transformer_layer_counts(config: BertConfig, seq_len: int, batch: int = 1) -> OperatorCount:
    """Count the work of one Transformer encoder layer (paper Figure 2).

    Matmuls: Q/K/V projections, the score matmul, the context matmul, the
    attention output projection and the two feed-forward matmuls.  Softmax:
    one pass over the ``heads x seq x seq`` score tensor.  Dropout: applied
    to the attention probabilities and to both block outputs.  The
    "norm_act_other" class covers the layer norms, residual adds and the
    GELU activation.
    """
    if seq_len < 1 or batch < 1:
        raise ValueError("seq_len and batch must be >= 1")
    hidden = config.hidden_dim
    inter = config.intermediate_dim
    heads = config.num_heads

    counts = OperatorCount()

    # --- matmuls (2 * M * N * K FLOPs each) ----------------------------- #
    def add_matmul(m: float, n: float, k: float) -> None:
        counts.matmul_flops += 2.0 * m * n * k * batch
        counts.matmul_kernels += 1

    add_matmul(seq_len, hidden, hidden)                   # Q projection
    add_matmul(seq_len, hidden, hidden)                   # K projection
    add_matmul(seq_len, hidden, hidden)                   # V projection
    add_matmul(heads * seq_len, seq_len, hidden / heads)  # scores Q K^T
    add_matmul(heads * seq_len, hidden / heads, seq_len)  # probs x V
    add_matmul(seq_len, hidden, hidden)                   # attention output proj
    add_matmul(seq_len, inter, hidden)                    # FFN expand
    add_matmul(seq_len, hidden, inter)                    # FFN contract

    # --- softmax --------------------------------------------------------- #
    counts.softmax_elements += float(batch * heads * seq_len * seq_len)
    counts.softmax_kernels += 1

    # --- dropout --------------------------------------------------------- #
    counts.dropout_elements += float(batch * heads * seq_len * seq_len)  # attn probs
    counts.dropout_elements += 2.0 * batch * seq_len * hidden            # block outputs
    counts.dropout_kernels += 3

    # --- layer norms, residuals, activation ------------------------------ #
    counts.elementwise_elements += 2.0 * batch * seq_len * hidden  # two layer norms
    counts.elementwise_elements += 2.0 * batch * seq_len * hidden  # two residual adds
    counts.elementwise_elements += float(batch * seq_len * inter)  # GELU
    counts.elementwise_kernels += 5

    return counts


@dataclass
class RuntimeBreakdown:
    """Per-operator-class runtime of a full network at one sequence length."""

    seq_len: int
    times: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return float(sum(self.times.values()))

    def fractions(self) -> Dict[str, float]:
        total = self.total
        if total <= 0:
            raise ZeroDivisionError("runtime total must be positive")
        return {name: value / total for name, value in self.times.items()}

    @property
    def softmax_fraction(self) -> float:
        return self.fractions()["softmax"]


def model_runtime_breakdown(config: BertConfig, seq_len: int, batch: int = 1,
                            gpu: GPUModel | None = None) -> RuntimeBreakdown:
    """Runtime breakdown of a full encoder (all layers) at one sequence length."""
    gpu = gpu or GPUModel()
    layer = transformer_layer_counts(config, seq_len, batch=batch)
    layers = config.num_layers

    times = {
        "matmul": gpu.matmul_time(layer.matmul_flops * layers,
                                  layer.matmul_kernels * layers),
        "softmax": gpu.softmax_time(layer.softmax_elements * layers,
                                    layer.softmax_kernels * layers),
        "dropout": gpu.dropout_time(layer.dropout_elements * layers,
                                    layer.dropout_kernels * layers),
        "norm_act_other": gpu.elementwise_time(layer.elementwise_elements * layers,
                                               layer.elementwise_kernels * layers),
    }
    return RuntimeBreakdown(seq_len=seq_len, times=times)


def runtime_breakdown_sweep(
    config: BertConfig | None = None,
    seq_lens: Iterable[int] = (128, 256, 384, 512, 1024, 2048),
    batch: int = 1,
    gpu: GPUModel | None = None,
) -> List[RuntimeBreakdown]:
    """Reproduce Figure 1: breakdown vs sequence length for BERT-Large."""
    config = config or BertConfig.bert_large(max_seq_len=4096)
    return [model_runtime_breakdown(config, seq_len, batch=batch, gpu=gpu)
            for seq_len in seq_lens]
