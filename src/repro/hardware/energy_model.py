"""Workload energy model: self-attention + softmax on a MAGNet-style PE.

The paper's hardware evaluation (Table IV and Figure 5) measures the
"SELF+Softmax" workload: the ``Q x K^T`` score matrix computation followed
by the softmax over each row, for a given sequence length.  This module
counts the operations of that workload and prices them with the PE model:

* MACs for the score matrix (``seq_len^2 x head_dim`` multiply-accumulates),
* operand reads/writes against the PE-local buffers,
* the softmax itself (Unnormed Softmax + Normalization units), and
* writing the normalized probabilities back toward the global buffer.

The same accounting runs for the Softermax PE and the DesignWare baseline
PE, giving the area/energy ratios of Table IV and the sequence-length sweep
of Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.hardware.pe import PEConfig, ProcessingElement
from repro.hardware.technology import Technology, DEFAULT_TECHNOLOGY
from repro.hardware.units import EnergyBreakdown, ratio


@dataclass(frozen=True)
class AttentionWorkload:
    """One self-attention score+softmax workload (single head unless noted).

    Parameters
    ----------
    seq_len:
        Sequence length (number of query and key positions).
    head_dim:
        Feature dimension per head (64 for BERT).
    num_heads:
        Number of heads executed (1 for unit-level studies; the full-model
        sweeps multiply by the head and layer counts).
    """

    seq_len: int = 384
    head_dim: int = 64
    num_heads: int = 1

    def __post_init__(self) -> None:
        if self.seq_len < 1 or self.head_dim < 1 or self.num_heads < 1:
            raise ValueError("workload dimensions must be >= 1")

    @property
    def num_score_elements(self) -> int:
        """Total number of attention-score elements (softmax inputs)."""
        return self.num_heads * self.seq_len * self.seq_len

    @property
    def num_macs(self) -> int:
        """Total multiply-accumulates in the Q x K^T score computation."""
        return self.num_heads * self.seq_len * self.seq_len * self.head_dim

    @property
    def num_rows(self) -> int:
        """Number of softmax rows."""
        return self.num_heads * self.seq_len

    @classmethod
    def squad(cls) -> "AttentionWorkload":
        """The SQuAD workload of Table IV (sequence length 384)."""
        return cls(seq_len=384)


def attention_energy(pe: ProcessingElement, workload: AttentionWorkload) -> EnergyBreakdown:
    """Itemized energy of the SELF+Softmax workload on a PE (in pJ)."""
    cfg = pe.config
    energy = EnergyBreakdown()

    # --- score matrix (SELF): Q x K^T --------------------------------- #
    energy.add("self_mac", workload.num_macs * pe.mac_energy())
    # Operand traffic: with an output-stationary dataflow each Q row is read
    # once per output row and each K row once per output element slice; we
    # charge one 8-bit read per MAC operand pair amortized over the vector
    # width (the vector MAC shares one operand broadcast across lanes).
    operand_reads = workload.num_macs / cfg.vector_size * 2
    energy.add("self_operand_reads",
               operand_reads * pe.operand_read_energy(cfg.activation_bits))
    # Accumulator collector writes: one per score element.
    energy.add("self_score_writes",
               workload.num_score_elements * pe.operand_write_energy(cfg.accumulation_bits))

    # --- softmax -------------------------------------------------------- #
    per_row = pe.softmax_row_energy(workload.seq_len)
    energy.merge(per_row.scaled(workload.num_rows), prefix="softmax.")
    # Scores are read out of the accumulation collector into the softmax
    # unit once (Softermax) or effectively twice (baseline; the extra pass
    # is already charged inside the baseline unnormed unit model).
    energy.add("softmax_score_reads",
               workload.num_score_elements * pe.operand_read_energy(cfg.accumulation_bits))
    # Normalized probabilities stream toward the global buffer.
    energy.add("softmax_output_writes",
               workload.num_score_elements * pe.global_transfer_energy(pe.softmax_output_bits()))

    return energy


@dataclass
class ComparisonRow:
    """One row of a Softermax-vs-baseline comparison."""

    label: str
    softermax_value: float
    baseline_value: float

    @property
    def ratio(self) -> float:
        return ratio(self.softermax_value, self.baseline_value)

    @property
    def improvement(self) -> float:
        """Baseline / Softermax (how many times better Softermax is)."""
        return ratio(self.baseline_value, self.softermax_value)


@dataclass
class Table4Result:
    """The three comparisons of paper Table IV (area and energy)."""

    area_rows: List[ComparisonRow] = field(default_factory=list)
    energy_rows: List[ComparisonRow] = field(default_factory=list)

    def area_ratio(self, label: str) -> float:
        return _find(self.area_rows, label).ratio

    def energy_ratio(self, label: str) -> float:
        return _find(self.energy_rows, label).ratio

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            "area": {row.label: row.ratio for row in self.area_rows},
            "energy": {row.label: row.ratio for row in self.energy_rows},
        }


def _find(rows: List[ComparisonRow], label: str) -> ComparisonRow:
    for row in rows:
        if row.label == label:
            return row
    raise KeyError(f"no comparison row labelled {label!r}")


def compute_table4(
    pe_config: PEConfig | None = None,
    workload: AttentionWorkload | None = None,
    tech: Technology | None = None,
) -> Table4Result:
    """Reproduce paper Table IV: unit-level and PE-level area/energy ratios."""
    pe_config = pe_config or PEConfig.wide32()
    workload = workload or AttentionWorkload.squad()
    tech = tech or DEFAULT_TECHNOLOGY

    softermax_pe = ProcessingElement(config=pe_config, softmax_impl="softermax", tech=tech)
    baseline_pe = ProcessingElement(config=pe_config, softmax_impl="designware", tech=tech)

    result = Table4Result()

    # --- areas ---------------------------------------------------------- #
    result.area_rows.append(ComparisonRow(
        "Unnormed Softmax Unit",
        softermax_pe.unnormed_unit.total_area(),
        baseline_pe.unnormed_unit.total_area(),
    ))
    result.area_rows.append(ComparisonRow(
        "Normalization Unit",
        softermax_pe.normalization_unit.total_area(),
        baseline_pe.normalization_unit.total_area(),
    ))
    result.area_rows.append(ComparisonRow(
        "Full PE",
        softermax_pe.area().total,
        baseline_pe.area().total,
    ))

    # --- energies (SELF+Softmax on the SQuAD workload) ------------------ #
    softermax_unnormed = softermax_pe.unnormed_unit.row_energy(workload.seq_len).total
    baseline_unnormed = baseline_pe.unnormed_unit.row_energy(workload.seq_len).total
    result.energy_rows.append(ComparisonRow(
        "Unnormed Softmax Unit",
        softermax_unnormed * workload.num_rows,
        baseline_unnormed * workload.num_rows,
    ))
    softermax_norm = softermax_pe.normalization_unit.row_energy(workload.seq_len).total
    baseline_norm = baseline_pe.normalization_unit.row_energy(workload.seq_len).total
    result.energy_rows.append(ComparisonRow(
        "Normalization Unit",
        softermax_norm * workload.num_rows,
        baseline_norm * workload.num_rows,
    ))
    result.energy_rows.append(ComparisonRow(
        "Full PE",
        attention_energy(softermax_pe, workload).total,
        attention_energy(baseline_pe, workload).total,
    ))
    return result


@dataclass
class SweepPoint:
    """One point of the Figure 5 sequence-length sweep."""

    seq_len: int
    vector_size: int
    softermax_energy_uj: float
    baseline_energy_uj: float

    @property
    def ratio(self) -> float:
        return ratio(self.softermax_energy_uj, self.baseline_energy_uj)


def sequence_length_sweep(
    seq_lens: Iterable[int] = (128, 256, 384, 512, 1024, 2048, 4096),
    vector_sizes: Iterable[int] = (16, 32),
    head_dim: int = 64,
    tech: Technology | None = None,
) -> List[SweepPoint]:
    """Reproduce paper Figure 5: PE energy vs sequence length, 16/32-wide."""
    tech = tech or DEFAULT_TECHNOLOGY
    points: List[SweepPoint] = []
    for vector_size in vector_sizes:
        pe_config = PEConfig.wide32() if vector_size == 32 else PEConfig.wide16()
        if vector_size not in (16, 32):
            pe_config = PEConfig(vector_size=vector_size, num_lanes=vector_size)
        softermax_pe = ProcessingElement(config=pe_config, softmax_impl="softermax", tech=tech)
        baseline_pe = ProcessingElement(config=pe_config, softmax_impl="designware", tech=tech)
        for seq_len in seq_lens:
            workload = AttentionWorkload(seq_len=seq_len, head_dim=head_dim)
            points.append(SweepPoint(
                seq_len=seq_len,
                vector_size=vector_size,
                softermax_energy_uj=attention_energy(softermax_pe, workload).total_uj,
                baseline_energy_uj=attention_energy(baseline_pe, workload).total_uj,
            ))
    return points
