"""Analytic models of the DesignWare-style FP16 softmax baseline.

The paper's baseline implements the numerically-stable softmax with
DesignWare FP16 components: an explicit max pass, FP16 subtract, FP16
exponential (base e), FP16 accumulation and FP16 division.  These models
mirror :mod:`repro.hardware.softermax_units` -- including the surrounding
micro-architecture (operand conversion from the 24-bit MAC accumulators,
staging/pipeline registers, control overhead) -- so the two designs can be
compared like-for-like at the unit and PE level (paper Table IV and the
section VI.B text).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.softermax_units import CONTROL_OVERHEAD
from repro.hardware.technology import Technology, DEFAULT_TECHNOLOGY
from repro.hardware.units import AreaBreakdown, EnergyBreakdown, HardwareUnit


@dataclass
class BaselineUnnormedUnit(HardwareUnit):
    """FP16 max / exponential / accumulation datapath (per-PE baseline unit).

    Because the baseline uses the numerically stable two-pass softmax, every
    score element is touched twice: once by the max pass and once by the
    subtract-exponentiate-accumulate pass.  The extra pass shows up as extra
    operand staging energy per element (the scores must be re-read from the
    PE-local buffer), which is one of the two inefficiencies Softermax
    removes (the other being the expensive FP16 exponential itself).
    """

    vector_size: int = 32
    precision_bits: int = 16
    accumulator_bits: int = 24
    tech: Technology = field(default_factory=lambda: DEFAULT_TECHNOLOGY)
    name: str = "designware_unnormed"

    def __post_init__(self) -> None:
        if self.vector_size < 1:
            raise ValueError("vector_size must be >= 1")

    def area(self) -> AreaBreakdown:
        tech, v = self.tech, self.vector_size
        area = AreaBreakdown()
        # Convert the 24-bit integer accumulator scores to FP16 (normalize +
        # round: roughly an FP16 adder's datapath) and stage them.
        area.add("int_to_fp_converters", v * tech.fp16_adder_area)
        area.add("input_staging_registers", v * tech.register_area(self.accumulator_bits))
        area.add("max_compare_tree", max(0, v - 1) * tech.fp16_comparator_area)
        area.add("max_subtract", v * tech.fp16_adder_area)
        area.add("exp_units", v * tech.fp16_exp_area)
        area.add("accumulate_adder_tree", max(0, v - 1) * tech.fp16_adder_area)
        area.add("running_sum_adder", tech.fp16_adder_area)
        area.add("state_registers", tech.register_area(2 * self.precision_bits))
        area.add("pipeline_registers", v * tech.register_area(2 * self.precision_bits))
        area.add("output_registers", v * tech.register_area(self.precision_bits))
        area.add("control", CONTROL_OVERHEAD * area.total)
        return area

    def slice_energy(self) -> EnergyBreakdown:
        """Energy to process one ``vector_size``-wide slice of scores."""
        tech, v = self.tech, self.vector_size
        energy = EnergyBreakdown()
        energy.add("int_to_fp_converters", v * tech.fp16_adder_energy)
        energy.add("input_staging_registers", v * tech.register_energy(self.accumulator_bits))
        # Pass 1: find the max (and re-stage the operands for pass 2).
        energy.add("max_compare_tree", max(0, v - 1) * tech.fp16_comparator_energy)
        energy.add("second_pass_restage", v * tech.sram_read_energy(self.precision_bits))
        # Pass 2: subtract, exponentiate, accumulate.
        energy.add("max_subtract", v * tech.fp16_adder_energy)
        energy.add("exp_units", v * tech.fp16_exp_energy)
        energy.add("accumulate_adder_tree", max(0, v - 1) * tech.fp16_adder_energy)
        energy.add("running_sum_adder", tech.fp16_adder_energy)
        energy.add("state_registers", tech.register_energy(2 * self.precision_bits))
        energy.add("pipeline_registers", v * tech.register_energy(2 * self.precision_bits))
        energy.add("output_registers", v * tech.register_energy(self.precision_bits))
        energy.add("control", CONTROL_OVERHEAD * energy.total)
        return energy

    def row_energy(self, seq_len: int) -> EnergyBreakdown:
        """Energy to process one attention row of ``seq_len`` scores."""
        if seq_len < 1:
            raise ValueError("seq_len must be >= 1")
        num_slices = -(-seq_len // self.vector_size)
        return self.slice_energy().scaled(float(num_slices))

    def energy_per_element(self) -> float:
        return self.slice_energy().total / self.vector_size


@dataclass
class BaselineNormalizationUnit(HardwareUnit):
    """FP16 division datapath (the baseline's normalization stage)."""

    vector_size: int = 32
    precision_bits: int = 16
    output_bits: int = 16
    tech: Technology = field(default_factory=lambda: DEFAULT_TECHNOLOGY)
    name: str = "designware_normalization"

    def __post_init__(self) -> None:
        if self.vector_size < 1:
            raise ValueError("vector_size must be >= 1")

    def area(self) -> AreaBreakdown:
        tech, v = self.tech, self.vector_size
        area = AreaBreakdown()
        area.add("input_staging_registers", v * tech.register_area(self.precision_bits))
        area.add("dividers", v * tech.fp16_div_area)
        area.add("pipeline_registers", v * tech.register_area(2 * self.precision_bits))
        area.add("output_registers", v * tech.register_area(self.output_bits))
        area.add("denominator_register", tech.register_area(self.precision_bits))
        area.add("control", CONTROL_OVERHEAD * area.total)
        return area

    def reciprocal_energy(self) -> EnergyBreakdown:
        """Per-row setup energy (staging the denominator)."""
        energy = EnergyBreakdown()
        energy.add("denominator_register", self.tech.register_energy(self.precision_bits))
        return energy

    def element_energy(self) -> EnergyBreakdown:
        """Energy to divide one numerator element by the denominator."""
        tech = self.tech
        energy = EnergyBreakdown()
        energy.add("input_staging_registers", tech.register_energy(self.precision_bits))
        energy.add("dividers", tech.fp16_div_energy)
        energy.add("pipeline_registers", tech.register_energy(2 * self.precision_bits))
        energy.add("output_registers", tech.register_energy(self.output_bits))
        return energy

    def row_energy(self, seq_len: int) -> EnergyBreakdown:
        if seq_len < 1:
            raise ValueError("seq_len must be >= 1")
        energy = self.reciprocal_energy()
        energy.merge(self.element_energy().scaled(seq_len))
        energy.add("control", CONTROL_OVERHEAD * energy.total)
        return energy
