"""Analytic hardware cost models (area, energy, runtime).

These models reproduce the paper's hardware evaluation:

* :mod:`repro.hardware.technology` -- per-primitive area/energy constants
  for a 7 nm-class node.
* :mod:`repro.hardware.softermax_units` / :mod:`repro.hardware.baseline_units`
  -- the Softermax units and the DesignWare-style FP16 baseline.
* :mod:`repro.hardware.pe` -- a MAGNet-style PE with a pluggable softmax.
* :mod:`repro.hardware.energy_model` -- the SELF+Softmax workload accounting
  behind Table IV and Figure 5.
* :mod:`repro.hardware.runtime_model` -- the GPU operator runtime breakdown
  behind Figure 1.
"""

from repro.hardware.technology import Technology, DEFAULT_TECHNOLOGY
from repro.hardware.units import AreaBreakdown, EnergyBreakdown, HardwareUnit, ratio
from repro.hardware.softermax_units import SoftermaxUnnormedUnit, SoftermaxNormalizationUnit
from repro.hardware.baseline_units import BaselineUnnormedUnit, BaselineNormalizationUnit
from repro.hardware.pe import PEConfig, ProcessingElement, SOFTMAX_IMPLEMENTATIONS
from repro.hardware.energy_model import (
    AttentionWorkload,
    ComparisonRow,
    Table4Result,
    SweepPoint,
    attention_energy,
    compute_table4,
    sequence_length_sweep,
)
from repro.hardware.performance import (
    SoftmaxLatencyModel,
    SOFTERMAX_LATENCY,
    BASELINE_LATENCY,
    RowLatencyBreakdown,
    row_latency,
    attention_latency,
    LatencyComparison,
    latency_sweep,
    ThroughputReport,
    throughput_sweep,
)
from repro.hardware.attention_mapping import (
    AcceleratorConfig,
    ModelAttentionCost,
    ModelComparison,
    model_attention_cost,
    compare_model_attention,
    model_sweep,
)
from repro.hardware.runtime_model import (
    GPUModel,
    OperatorCount,
    RuntimeBreakdown,
    OP_CLASSES,
    transformer_layer_counts,
    model_runtime_breakdown,
    runtime_breakdown_sweep,
)

__all__ = [
    "Technology",
    "DEFAULT_TECHNOLOGY",
    "AreaBreakdown",
    "EnergyBreakdown",
    "HardwareUnit",
    "ratio",
    "SoftermaxUnnormedUnit",
    "SoftermaxNormalizationUnit",
    "BaselineUnnormedUnit",
    "BaselineNormalizationUnit",
    "PEConfig",
    "ProcessingElement",
    "SOFTMAX_IMPLEMENTATIONS",
    "AttentionWorkload",
    "ComparisonRow",
    "Table4Result",
    "SweepPoint",
    "attention_energy",
    "compute_table4",
    "sequence_length_sweep",
    "GPUModel",
    "OperatorCount",
    "RuntimeBreakdown",
    "OP_CLASSES",
    "transformer_layer_counts",
    "model_runtime_breakdown",
    "runtime_breakdown_sweep",
    "SoftmaxLatencyModel",
    "SOFTERMAX_LATENCY",
    "BASELINE_LATENCY",
    "RowLatencyBreakdown",
    "row_latency",
    "attention_latency",
    "LatencyComparison",
    "latency_sweep",
    "ThroughputReport",
    "throughput_sweep",
    "AcceleratorConfig",
    "ModelAttentionCost",
    "ModelComparison",
    "model_attention_cost",
    "compare_model_attention",
    "model_sweep",
]
