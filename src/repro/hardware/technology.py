"""Technology model: per-primitive area and energy constants.

The paper implements its units with HLS + Synopsys synthesis in TSMC 7 nm at
0.67 V and reports *relative* area and energy.  Offline we cannot synthesize
RTL, so this module provides an analytic technology model: every datapath
primitive (integer adder, multiplier, shifter, comparator, LUT, register,
floating-point operators, SRAM access) gets an area estimate in µm² and an
energy-per-operation estimate in pJ, with simple and well-documented scaling
rules (linear in bit-width for adders/shifters/comparators, quadratic in
operand widths for multipliers, and published relative costs for FP
operators and special functions).

The absolute values are round numbers in the right order of magnitude for a
7 nm-class process (derived by scaling the widely used 45 nm energy tables
by roughly an order of magnitude); every result reported by this library is
a *ratio* between two designs evaluated under the same model, which is the
quantity the paper reports as well.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Technology:
    """Area/energy primitive costs for a 7 nm-class logic process.

    Area is reported in µm², energy in pJ.  The per-bit / per-partial-product
    constants are the calibration points; the methods below derive every
    datapath primitive from them.
    """

    name: str = "tsmc7nm-0.67v"

    # --- logic primitives (per bit / per partial-product bit) ------------- #
    #: Area of one bit of a ripple/carry-select adder datapath.
    adder_area_per_bit: float = 0.9
    #: Energy of one bit of integer addition.
    adder_energy_per_bit: float = 0.0004
    #: Area of one partial-product bit of an integer array multiplier.
    multiplier_area_per_pp_bit: float = 0.55
    #: Energy of one partial-product bit of an integer multiply.
    multiplier_energy_per_pp_bit: float = 0.0002
    #: Area of one bit of one mux stage of a barrel shifter.
    shifter_area_per_bit_stage: float = 0.45
    #: Energy of one bit of one mux stage of a barrel shifter.
    shifter_energy_per_bit_stage: float = 0.0004
    #: Area per bit of a comparator (max/ge).
    comparator_area_per_bit: float = 0.75
    #: Energy per bit of a comparison.
    comparator_energy_per_bit: float = 0.0006
    #: Area per bit of a flip-flop/register.
    register_area_per_bit: float = 1.1
    #: Energy per bit of a register write.
    register_energy_per_bit: float = 0.0008
    #: Area per bit of a small combinational LUT/ROM.
    lut_area_per_bit: float = 0.28
    #: Energy per bit read from a small LUT/ROM.
    lut_energy_per_bit: float = 0.0003

    # --- floating point (relative to integer primitives) ------------------ #
    #: FP16 adder: alignment shifters + mantissa adder + normalization.
    fp16_adder_area: float = 60.0
    fp16_adder_energy: float = 0.10
    #: FP16 multiplier: 11x11 mantissa multiplier + exponent logic.
    fp16_multiplier_area: float = 110.0
    fp16_multiplier_energy: float = 0.20
    #: DesignWare-style FP16 exponential (LUT + range reduction + polynomial).
    #: General-purpose exp units use 64-128 entry tables plus a multiplier
    #: and adder tree, hence the large constant.
    fp16_exp_area: float = 1000.0
    fp16_exp_energy: float = 1.25
    #: DesignWare-style FP16 divider (iterative/mantissa LUT based).
    fp16_div_area: float = 180.0
    fp16_div_energy: float = 0.32
    #: FP16 comparator (max): roughly an FP16 adder's front end.
    fp16_comparator_area: float = 30.0
    fp16_comparator_energy: float = 0.03

    # --- memory ------------------------------------------------------------ #
    #: SRAM array area per bit (register-file style macros).
    sram_area_per_bit: float = 0.18
    #: Energy per bit of an SRAM read (small buffer).
    sram_read_energy_per_bit: float = 0.0015
    #: Energy per bit of an SRAM write (small buffer).
    sram_write_energy_per_bit: float = 0.002
    #: Energy per bit to move data to/from the global buffer (longer wires).
    global_buffer_energy_per_bit: float = 0.008

    # ------------------------------------------------------------------ #
    # integer datapath primitives
    # ------------------------------------------------------------------ #
    def int_adder_area(self, bits: int) -> float:
        """Area of an integer adder with ``bits``-wide operands."""
        self._check_bits(bits)
        return self.adder_area_per_bit * bits

    def int_adder_energy(self, bits: int) -> float:
        self._check_bits(bits)
        return self.adder_energy_per_bit * bits

    def int_multiplier_area(self, bits_a: int, bits_b: int) -> float:
        """Area of an integer array multiplier (``bits_a`` x ``bits_b``)."""
        self._check_bits(bits_a)
        self._check_bits(bits_b)
        return self.multiplier_area_per_pp_bit * bits_a * bits_b

    def int_multiplier_energy(self, bits_a: int, bits_b: int) -> float:
        self._check_bits(bits_a)
        self._check_bits(bits_b)
        return self.multiplier_energy_per_pp_bit * bits_a * bits_b

    def int_mac_energy(self, bits_a: int, bits_b: int, acc_bits: int) -> float:
        """Energy of one multiply-accumulate (multiply + accumulator add)."""
        return self.int_multiplier_energy(bits_a, bits_b) + self.int_adder_energy(acc_bits)

    def int_mac_area(self, bits_a: int, bits_b: int, acc_bits: int) -> float:
        return self.int_multiplier_area(bits_a, bits_b) + self.int_adder_area(acc_bits)

    def shifter_area(self, bits: int, max_shift: int) -> float:
        """Barrel shifter over ``bits`` with ``max_shift`` positions."""
        self._check_bits(bits)
        stages = max(1, int.bit_length(max(1, max_shift - 1)))
        return self.shifter_area_per_bit_stage * bits * stages

    def shifter_energy(self, bits: int, max_shift: int) -> float:
        self._check_bits(bits)
        stages = max(1, int.bit_length(max(1, max_shift - 1)))
        return self.shifter_energy_per_bit_stage * bits * stages

    def comparator_area(self, bits: int) -> float:
        self._check_bits(bits)
        return self.comparator_area_per_bit * bits

    def comparator_energy(self, bits: int) -> float:
        self._check_bits(bits)
        return self.comparator_energy_per_bit * bits

    def register_area(self, bits: int) -> float:
        self._check_bits(bits)
        return self.register_area_per_bit * bits

    def register_energy(self, bits: int) -> float:
        self._check_bits(bits)
        return self.register_energy_per_bit * bits

    def lut_area(self, entries: int, bits_per_entry: int) -> float:
        """Area of a small combinational LUT with the given geometry."""
        if entries < 1:
            raise ValueError("LUT needs at least one entry")
        self._check_bits(bits_per_entry)
        return self.lut_area_per_bit * entries * bits_per_entry

    def lut_read_energy(self, entries: int, bits_per_entry: int) -> float:
        if entries < 1:
            raise ValueError("LUT needs at least one entry")
        self._check_bits(bits_per_entry)
        # Read energy scales with the output width and weakly with depth.
        depth_factor = 1.0 + 0.1 * max(0, int.bit_length(entries) - 1)
        return self.lut_energy_per_bit * bits_per_entry * depth_factor

    # ------------------------------------------------------------------ #
    # memory
    # ------------------------------------------------------------------ #
    def sram_area(self, size_bytes: int) -> float:
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        return self.sram_area_per_bit * size_bytes * 8

    def sram_read_energy(self, bits: int) -> float:
        self._check_bits(bits)
        return self.sram_read_energy_per_bit * bits

    def sram_write_energy(self, bits: int) -> float:
        self._check_bits(bits)
        return self.sram_write_energy_per_bit * bits

    def global_buffer_energy(self, bits: int) -> float:
        self._check_bits(bits)
        return self.global_buffer_energy_per_bit * bits

    @staticmethod
    def _check_bits(bits: int) -> None:
        if bits < 1:
            raise ValueError(f"bit width must be >= 1, got {bits}")


#: The default technology instance used throughout the hardware models.
DEFAULT_TECHNOLOGY = Technology()
