"""Analytic models of the Softermax hardware units (paper section IV).

Two units are modelled:

* :class:`SoftermaxUnnormedUnit` -- the per-PE unit with the IntMax,
  Power-of-Two and Reduction sub-units.  It processes one ``vector_size``
  wide slice of attention scores per invocation, producing unnormalized
  exponentials and maintaining the per-row running (integer max, sum).
* :class:`SoftermaxNormalizationUnit` -- the shared unit between the PE and
  the global buffer: shift-renormalization of the numerator, linear
  piece-wise reciprocal of the denominator and the final integer multiply.

Besides the arithmetic described in the paper, both models include the
surrounding micro-architecture any synthesized implementation carries:
conversion of the 24-bit MAC-accumulator scores into the softmax input
format (a scale multiplier in the PPU), operand staging and pipeline
registers, a small register file for the per-row running (max, sum) state,
and a fixed fractional overhead for control logic.  The DesignWare baseline
models in :mod:`repro.hardware.baseline_units` carry the equivalent
components so the comparison stays like-for-like.

Both units expose an itemized :meth:`area` and per-event energies so the PE
model and the Table IV / Figure 5 benchmarks can compose them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SoftermaxConfig
from repro.hardware.technology import Technology, DEFAULT_TECHNOLOGY
from repro.hardware.units import AreaBreakdown, EnergyBreakdown, HardwareUnit

#: Fraction of datapath area/energy charged for control logic (FSMs,
#: handshaking, configuration registers) in an HLS-generated unit.
CONTROL_OVERHEAD = 0.15


@dataclass
class SoftermaxUnnormedUnit(HardwareUnit):
    """The Unnormed Softmax unit (IntMax + Power-of-Two + Reduction).

    Parameters
    ----------
    vector_size:
        Number of score elements processed per cycle (one per vector lane of
        the PE's post-processing unit).
    config:
        Softermax operating point; supplies the datapath bit-widths.
    accumulator_bits:
        Width of the MAC accumulator delivering the raw attention scores
        (24 in paper Table II); the unit converts these into the Q(6,2)
        softmax input format with a scale multiplier.
    rows_in_flight:
        Number of attention rows whose running (max, sum) state is kept
        resident in the unit's state register file.
    tech:
        Technology cost model.
    """

    vector_size: int = 32
    config: SoftermaxConfig = field(default_factory=SoftermaxConfig.paper_table1)
    accumulator_bits: int = 24
    rows_in_flight: int = 8
    tech: Technology = field(default_factory=lambda: DEFAULT_TECHNOLOGY)
    name: str = "softermax_unnormed"

    def __post_init__(self) -> None:
        if self.vector_size < 1:
            raise ValueError("vector_size must be >= 1")
        if self.rows_in_flight < 1:
            raise ValueError("rows_in_flight must be >= 1")
        self._in_bits = self.config.input_fmt.total_bits
        self._in_int_bits = self.config.input_fmt.int_bits
        self._unnormed_bits = self.config.unnormed_fmt.total_bits
        self._sum_bits = self.config.sum_fmt.total_bits
        self._lpw_entries = self.config.pow2_segments
        # The power-of-two shifter must cover the full dynamic range of the
        # unnormalized output (shifting right by up to frac_bits positions).
        self._pow2_shift_range = self.config.unnormed_fmt.frac_bits + 1
        self._state_bits = self._sum_bits + self._in_bits

    # ------------------------------------------------------------------ #
    # area
    # ------------------------------------------------------------------ #
    def area(self) -> AreaBreakdown:
        tech, v = self.tech, self.vector_size
        area = AreaBreakdown()
        # Input conversion: scale the 24-bit accumulator score into Q(6,2)
        # (an 8-bit scale multiplier per lane) and stage it in a register.
        area.add("input_scale_multiplier",
                 v * tech.int_multiplier_area(self.accumulator_bits, self._in_bits))
        area.add("input_staging_registers", v * tech.register_area(self.accumulator_bits))
        # IntMax: a ceil incrementer per lane plus a comparator tree.
        area.add("intmax_ceil", v * tech.int_adder_area(self._in_int_bits))
        area.add("intmax_compare_tree", max(0, v - 1) * tech.comparator_area(self._in_bits))
        # Subtract the (integer) max from every element before the pow2.
        area.add("max_subtract", v * tech.int_adder_area(self._in_bits))
        # Power-of-two unit per lane: m/c LUTs + fraction multiplier is
        # unused at Q(6,2) input (paper), so only the c LUT + barrel shifter.
        lut_bits = self._unnormed_bits
        area.add("pow2_lut", v * tech.lut_area(self._lpw_entries, lut_bits))
        area.add("pow2_shifter", v * tech.shifter_area(self._unnormed_bits, self._pow2_shift_range))
        # Reduction: adder tree over the slice, the running-sum merge adder,
        # the renormalization shifter and the per-row state register file.
        area.add("reduction_adder_tree", max(0, v - 1) * tech.int_adder_area(self._sum_bits))
        area.add("running_sum_adder", tech.int_adder_area(self._sum_bits))
        area.add("renorm_shifter", tech.shifter_area(self._sum_bits, self._sum_bits))
        area.add("running_max_comparator", tech.comparator_area(self._in_bits))
        area.add("row_state_regfile",
                 tech.register_area(self.rows_in_flight * self._state_bits))
        # Pipeline and output staging registers.
        area.add("pipeline_registers", v * tech.register_area(2 * self._unnormed_bits))
        area.add("output_registers", v * tech.register_area(self._unnormed_bits))
        area.add("control", CONTROL_OVERHEAD * area.total)
        return area

    # ------------------------------------------------------------------ #
    # energy
    # ------------------------------------------------------------------ #
    def slice_energy(self) -> EnergyBreakdown:
        """Energy to process one ``vector_size``-wide slice of scores."""
        tech, v = self.tech, self.vector_size
        energy = EnergyBreakdown()
        energy.add("input_scale_multiplier",
                   v * tech.int_multiplier_energy(self.accumulator_bits, self._in_bits))
        energy.add("input_staging_registers", v * tech.register_energy(self.accumulator_bits))
        energy.add("intmax_ceil", v * tech.int_adder_energy(self._in_int_bits))
        energy.add("intmax_compare_tree", max(0, v - 1) * tech.comparator_energy(self._in_bits))
        energy.add("max_subtract", v * tech.int_adder_energy(self._in_bits))
        energy.add("pow2_lut", v * tech.lut_read_energy(self._lpw_entries, self._unnormed_bits))
        energy.add("pow2_shifter", v * tech.shifter_energy(self._unnormed_bits, self._pow2_shift_range))
        energy.add("reduction_adder_tree", max(0, v - 1) * tech.int_adder_energy(self._sum_bits))
        energy.add("running_sum_adder", tech.int_adder_energy(self._sum_bits))
        energy.add("renorm_shifter", tech.shifter_energy(self._sum_bits, self._sum_bits))
        energy.add("running_max_comparator", tech.comparator_energy(self._in_bits))
        # One read-modify-write of the per-row (max, sum) state per slice.
        energy.add("row_state_regfile", 2.0 * tech.register_energy(self._state_bits))
        energy.add("pipeline_registers", v * tech.register_energy(2 * self._unnormed_bits))
        energy.add("output_registers", v * tech.register_energy(self._unnormed_bits))
        energy.add("control", CONTROL_OVERHEAD * energy.total)
        return energy

    def row_energy(self, seq_len: int) -> EnergyBreakdown:
        """Energy to process one full attention row of ``seq_len`` scores.

        Softermax is single-pass: the row is covered once, slice by slice.
        """
        if seq_len < 1:
            raise ValueError("seq_len must be >= 1")
        num_slices = -(-seq_len // self.vector_size)
        return self.slice_energy().scaled(float(num_slices))

    def energy_per_element(self) -> float:
        """Average energy per score element (pJ)."""
        return self.slice_energy().total / self.vector_size


@dataclass
class SoftermaxNormalizationUnit(HardwareUnit):
    """The Normalization unit (shift renorm + LPW reciprocal + multiply)."""

    vector_size: int = 32
    config: SoftermaxConfig = field(default_factory=SoftermaxConfig.paper_table1)
    tech: Technology = field(default_factory=lambda: DEFAULT_TECHNOLOGY)
    name: str = "softermax_normalization"

    def __post_init__(self) -> None:
        if self.vector_size < 1:
            raise ValueError("vector_size must be >= 1")
        self._unnormed_bits = self.config.unnormed_fmt.total_bits
        self._sum_bits = self.config.sum_fmt.total_bits
        self._recip_bits = self.config.recip_fmt.total_bits
        self._out_bits = self.config.output_fmt.total_bits
        self._lpw_entries = self.config.recip_segments

    def area(self) -> AreaBreakdown:
        tech, v = self.tech, self.vector_size
        area = AreaBreakdown()
        # Per-lane numerator datapath: staging register, renormalization
        # shifter, integer multiply by the reciprocal, output rounding and
        # the output register.
        area.add("input_staging_registers", v * tech.register_area(self._unnormed_bits))
        area.add("numerator_shifter", v * tech.shifter_area(self._unnormed_bits, self._unnormed_bits))
        area.add("numerator_multiplier",
                 v * tech.int_multiplier_area(self._unnormed_bits, self._recip_bits))
        area.add("output_round", v * tech.int_adder_area(self._out_bits))
        area.add("pipeline_registers", v * tech.register_area(2 * self._unnormed_bits))
        area.add("output_registers", v * tech.register_area(self._out_bits))
        # Shared per-row reciprocal: leading-one detect (a comparator chain),
        # normalization shifter, the reciprocal LUT and a small multiplier.
        area.add("recip_leading_one", tech.comparator_area(self._sum_bits))
        area.add("recip_normalize_shifter", tech.shifter_area(self._sum_bits, self._sum_bits))
        area.add("recip_lut", tech.lut_area(self._lpw_entries, 2 * self._recip_bits))
        area.add("recip_multiplier", tech.int_multiplier_area(self._recip_bits, self._recip_bits))
        area.add("recip_register", tech.register_area(self._recip_bits))
        area.add("control", CONTROL_OVERHEAD * area.total)
        return area

    def reciprocal_energy(self) -> EnergyBreakdown:
        """Energy to produce the reciprocal of one row's denominator."""
        tech = self.tech
        energy = EnergyBreakdown()
        energy.add("recip_leading_one", tech.comparator_energy(self._sum_bits))
        energy.add("recip_normalize_shifter", tech.shifter_energy(self._sum_bits, self._sum_bits))
        energy.add("recip_lut", tech.lut_read_energy(self._lpw_entries, 2 * self._recip_bits))
        energy.add("recip_multiplier", tech.int_multiplier_energy(self._recip_bits, self._recip_bits))
        energy.add("recip_register", tech.register_energy(self._recip_bits))
        return energy

    def element_energy(self) -> EnergyBreakdown:
        """Energy to renormalize and divide one numerator element."""
        tech = self.tech
        energy = EnergyBreakdown()
        energy.add("input_staging_registers", tech.register_energy(self._unnormed_bits))
        energy.add("numerator_shifter", tech.shifter_energy(self._unnormed_bits, self._unnormed_bits))
        energy.add("numerator_multiplier",
                   tech.int_multiplier_energy(self._unnormed_bits, self._recip_bits))
        energy.add("output_round", tech.int_adder_energy(self._out_bits))
        energy.add("pipeline_registers", tech.register_energy(2 * self._unnormed_bits))
        energy.add("output_registers", tech.register_energy(self._out_bits))
        return energy

    def row_energy(self, seq_len: int) -> EnergyBreakdown:
        """Energy to normalize one full attention row."""
        if seq_len < 1:
            raise ValueError("seq_len must be >= 1")
        energy = self.reciprocal_energy()
        energy.merge(self.element_energy().scaled(seq_len))
        energy.add("control", CONTROL_OVERHEAD * energy.total)
        return energy
