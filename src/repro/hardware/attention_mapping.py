"""Full-model attention mapping: energy and latency for BERT configurations.

Figure 5 of the paper evaluates a single PE on one attention workload; this
module scales that analysis to a whole network: it maps every self-attention
block of a BERT-style configuration onto an accelerator with one or more
MAGNet-style PEs and accumulates the SELF+Softmax energy (and, with the
latency model, the cycle count) across heads and layers.

This is the view a deployment engineer cares about ("how many microjoules
does Softermax save me per BERT-Large inference at sequence length 512?"),
and it is a direct composition of the per-PE models that reproduce the
paper's Table IV / Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.hardware.energy_model import AttentionWorkload, attention_energy
from repro.hardware.pe import PEConfig, ProcessingElement
from repro.hardware.performance import (
    BASELINE_LATENCY,
    SOFTERMAX_LATENCY,
    attention_latency,
)
from repro.hardware.technology import Technology
from repro.models.bert import BertConfig


@dataclass(frozen=True)
class AcceleratorConfig:
    """A small accelerator: several PEs sharing a global buffer."""

    pe_config: PEConfig
    num_pes: int = 16

    def __post_init__(self) -> None:
        if self.num_pes < 1:
            raise ValueError("num_pes must be >= 1")

    @classmethod
    def default(cls) -> "AcceleratorConfig":
        return cls(pe_config=PEConfig.wide32(), num_pes=16)


@dataclass
class ModelAttentionCost:
    """Energy/latency of all self-attention score+softmax work in a model."""

    model_name: str
    seq_len: int
    softmax_impl: str
    energy_uj: float
    cycles: int
    per_layer_energy_uj: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "model": self.model_name,
            "seq_len": self.seq_len,
            "softmax_impl": self.softmax_impl,
            "energy_uj": self.energy_uj,
            "cycles": self.cycles,
            "per_layer_energy_uj": self.per_layer_energy_uj,
        }


def model_attention_cost(
    model_config: BertConfig,
    seq_len: int,
    softmax_impl: str = "softermax",
    accelerator: AcceleratorConfig | None = None,
    tech: Technology | None = None,
) -> ModelAttentionCost:
    """Energy and cycles for all SELF+Softmax work of one forward pass.

    The attention heads of each layer are distributed across the
    accelerator's PEs; energy adds up regardless of the distribution, while
    the cycle count assumes perfect head-level parallelism across PEs
    (heads mapped round-robin, the slowest PE determines the latency).
    """
    if seq_len < 1:
        raise ValueError("seq_len must be >= 1")
    accelerator = accelerator or AcceleratorConfig.default()
    pe = ProcessingElement(config=accelerator.pe_config, softmax_impl=softmax_impl,
                           tech=tech or Technology())

    head_dim = model_config.head_dim
    per_layer_workload = AttentionWorkload(
        seq_len=seq_len, head_dim=head_dim, num_heads=model_config.num_heads
    )
    per_layer_energy = attention_energy(pe, per_layer_workload).total_uj
    total_energy = per_layer_energy * model_config.num_layers

    latency_model = SOFTERMAX_LATENCY if softmax_impl == "softermax" else BASELINE_LATENCY
    heads_per_pe = -(-model_config.num_heads // accelerator.num_pes)
    per_layer_cycles = attention_latency(
        seq_len, latency_model, accelerator.pe_config,
        head_dim=head_dim, num_heads=heads_per_pe,
    )
    total_cycles = per_layer_cycles * model_config.num_layers

    return ModelAttentionCost(
        model_name=model_config.name,
        seq_len=seq_len,
        softmax_impl=softmax_impl,
        energy_uj=total_energy,
        cycles=int(total_cycles),
        per_layer_energy_uj=per_layer_energy,
    )


@dataclass
class ModelComparison:
    """Softermax vs baseline attention cost for one model/sequence length."""

    softermax: ModelAttentionCost
    baseline: ModelAttentionCost

    @property
    def energy_ratio(self) -> float:
        return self.softermax.energy_uj / self.baseline.energy_uj

    @property
    def cycle_ratio(self) -> float:
        return self.softermax.cycles / self.baseline.cycles

    @property
    def energy_saved_uj(self) -> float:
        return self.baseline.energy_uj - self.softermax.energy_uj


def compare_model_attention(
    model_config: BertConfig,
    seq_len: int,
    accelerator: AcceleratorConfig | None = None,
) -> ModelComparison:
    """Softermax-vs-baseline comparison of a full model's attention cost."""
    return ModelComparison(
        softermax=model_attention_cost(model_config, seq_len, "softermax", accelerator),
        baseline=model_attention_cost(model_config, seq_len, "designware", accelerator),
    )


def model_sweep(
    model_configs: Iterable[BertConfig],
    seq_lens: Iterable[int] = (128, 384, 512, 1024, 2048),
    accelerator: AcceleratorConfig | None = None,
) -> List[ModelComparison]:
    """Sweep Softermax-vs-baseline attention cost over models and seq lens."""
    comparisons: List[ModelComparison] = []
    for config in model_configs:
        for seq_len in seq_lens:
            comparisons.append(compare_model_attention(config, seq_len, accelerator))
    return comparisons
