"""Hardware unit composition framework.

A hardware unit is described by a bill of materials: named sub-components
with an area, plus per-event energies.  Units compose (a PE contains MAC
lanes, buffers and a softmax unit), and every unit can report an itemized
area/energy breakdown -- which is what the Table IV benchmark prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class AreaBreakdown:
    """Itemized area of a unit in µm²."""

    items: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, area: float) -> None:
        if area < 0:
            raise ValueError(f"negative area for {name}")
        self.items[name] = self.items.get(name, 0.0) + area

    def merge(self, other: "AreaBreakdown", prefix: str = "") -> None:
        for name, area in other.items.items():
            self.add(f"{prefix}{name}", area)

    @property
    def total(self) -> float:
        return float(sum(self.items.values()))

    def as_dict(self) -> Dict[str, float]:
        return dict(self.items)


@dataclass
class EnergyBreakdown:
    """Itemized energy of a workload execution in pJ."""

    items: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, energy: float) -> None:
        if energy < 0:
            raise ValueError(f"negative energy for {name}")
        self.items[name] = self.items.get(name, 0.0) + energy

    def merge(self, other: "EnergyBreakdown", prefix: str = "") -> None:
        for name, energy in other.items.items():
            self.add(f"{prefix}{name}", energy)

    def scaled(self, factor: float) -> "EnergyBreakdown":
        """Return a copy with every item multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return EnergyBreakdown({name: e * factor for name, e in self.items.items()})

    @property
    def total(self) -> float:
        return float(sum(self.items.values()))

    @property
    def total_uj(self) -> float:
        """Total energy in µJ (the unit the paper's Table IV uses)."""
        return self.total * 1e-6

    def as_dict(self) -> Dict[str, float]:
        return dict(self.items)


class HardwareUnit:
    """Base class for analytic hardware unit models."""

    name: str = "unit"

    def area(self) -> AreaBreakdown:
        """Itemized silicon area of the unit."""
        raise NotImplementedError

    def total_area(self) -> float:
        return self.area().total


def ratio(softermax_value: float, baseline_value: float) -> float:
    """Softermax / baseline ratio with a defensive division check."""
    if baseline_value <= 0:
        raise ZeroDivisionError("baseline value must be positive to form a ratio")
    return softermax_value / baseline_value
