"""Neural-network layers built on the autograd :class:`Tensor`.

The layer/module system intentionally mirrors the small subset of a typical
deep-learning framework that the paper's experiments need: parameter
registration and traversal, train/eval modes, and the layers a BERT-style
encoder is made of (Linear, Embedding, LayerNorm, Dropout).

Quantization hooks: a :class:`Linear` layer optionally carries weight and
activation :class:`~repro.quant.qat.FakeQuantizer` objects.  When attached
(by :func:`repro.quant.qat.attach_quantizers`) the layer fake-quantizes its
operands in the forward pass, which is how the paper's 8-bit
quantization-aware fine-tuning baseline is modelled.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor


def frozen_array_snapshot(array: np.ndarray) -> np.ndarray:
    """Snapshot a parameter array for a compiled inference plan.

    Plans freeze their weights at compile time, which normally means a
    private copy (the live parameter may be mutated by training or
    ``load_state_dict`` later).  A **read-only** array is already frozen
    -- in particular the zero-copy shared-memory views a sharded serving
    worker binds via :func:`repro.infer.plan.bind_snapshot_arrays` -- so
    it is shared as-is: N worker processes compile N plans over ONE copy
    of the weights, keeping RSS O(1) in the worker count.
    """
    return array.copy() if array.flags.writeable else array


class Module:
    """Base class providing parameter registration and train/eval modes."""

    def __init__(self) -> None:
        self._parameters: Dict[str, Tensor] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training = True

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register_parameter(self, name: str, tensor: Tensor) -> Tensor:
        tensor.requires_grad = True
        tensor.name = name
        self._parameters[name] = tensor
        return tensor

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Module):
            self.__dict__.setdefault("_modules", {})[name] = value
        super().__setattr__(name, value)

    def add_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        super().__setattr__(name, module)
        return module

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def parameters(self) -> List[Tensor]:
        """All trainable parameters of this module and its children."""
        return [tensor for _, tensor in self.named_parameters()]

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        for name, tensor in self._parameters.items():
            yield (f"{prefix}{name}", tensor)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    # ------------------------------------------------------------------ #
    # modes & utilities
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return int(sum(p.size for p in self.parameters()))

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter array, keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameter arrays previously produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            if own[name].shape != values.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {own[name].shape} vs {values.shape}"
                )
            own[name].data = np.asarray(values, dtype=np.float64).copy()
        # Parameters are rebound by dotted name, so submodule overrides of
        # this method never run; notify every module in the tree instead
        # (compiled-state caches -- e.g. inference plans -- hook this).
        for module in self.modules():
            module._on_state_loaded()

    def _on_state_loaded(self) -> None:
        """Called on every module in the tree after a state-dict load."""

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with optional fake quantization."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register_parameter(
            "weight", Tensor(init.xavier_uniform((in_features, out_features), rng))
        )
        self.bias = (
            self.register_parameter("bias", Tensor(np.zeros(out_features)))
            if bias
            else None
        )
        #: Optional weight fake-quantizer (set by ``attach_quantizers``).
        self.weight_quantizer = None
        #: Optional input-activation fake-quantizer.
        self.input_quantizer = None

    def forward(self, x: Tensor) -> Tensor:
        weight = self.weight
        if self.weight_quantizer is not None:
            weight = self.weight_quantizer(weight)
        if self.input_quantizer is not None:
            x = self.input_quantizer(x)
        return F.linear(x, weight, self.bias)

    # ------------------------------------------------------------------ #
    # plan export (graph-free inference)
    # ------------------------------------------------------------------ #
    def plan_weight(self) -> np.ndarray:
        """Snapshot of the effective GEMM weight for an inference plan.

        A frozen weight quantizer is *pre-applied* here: the weight is
        static, so fake-quantizing once at compile time is bitwise
        identical to the graph path's per-forward fake-quantization.  An
        unconfigured or disabled quantizer is a pass-through (exactly as
        in :meth:`forward`); a calibrating one is a compile error -- plan
        execution must not mutate calibration statistics.
        """
        quantizer = self.weight_quantizer
        if quantizer is not None and quantizer.calibrating:
            raise RuntimeError(
                "cannot compile an inference plan while a weight quantizer "
                "is calibrating; freeze() it first")
        weight = self.weight.data
        if quantizer is not None:
            weight = np.asarray(quantizer(weight), dtype=np.float64)
        return frozen_array_snapshot(weight)

    def plan_bias(self) -> Optional[np.ndarray]:
        """Snapshot of the bias (``None`` for bias-free layers)."""
        return None if self.bias is None \
            else frozen_array_snapshot(self.bias.data)

    def plan_input_quant_params(self):
        """Frozen input-quantizer params to replay per call (or ``None``)."""
        quantizer = self.input_quantizer
        if quantizer is None or not quantizer.enabled:
            return None
        if quantizer.calibrating:
            raise RuntimeError(
                "cannot compile an inference plan while an input quantizer "
                "is calibrating; freeze() it first")
        return quantizer.params  # None (pass-through) until frozen

    def export_plan(self, builder, x_reg: str, prefix: str = "linear") -> str:
        """Emit this layer's ops onto ``builder``; returns the output reg."""
        from repro.quant.quantizer import fake_quantize_array

        weight = self.plan_weight()
        bias = self.plan_bias()
        quant_params = self.plan_input_quant_params()
        out_features = self.out_features
        out_reg = builder.reg(prefix)

        def op(ctx) -> None:
            x = ctx.regs[x_reg]
            if quant_params is not None:
                x = fake_quantize_array(x, quant_params)
            out = ctx.acquire(x.shape[:-1] + (out_features,))
            F.linear_infer(x, weight, bias, out=out)
            ctx.put(out_reg, out)

        builder.emit(prefix, op)
        return out_reg


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = self.register_parameter(
            "weight", Tensor(init.truncated_normal((num_embeddings, embedding_dim), rng))
        )

    def forward(self, ids: np.ndarray) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.min(initial=0) < 0 or ids.max(initial=0) >= self.num_embeddings:
            raise IndexError("embedding id out of range")
        return self.weight.gather_rows(ids)

    def plan_weight(self) -> np.ndarray:
        """Snapshot of the lookup table for an inference plan."""
        return frozen_array_snapshot(self.weight.data)


class LayerNorm(Module):
    """Layer normalization over the last dimension with learnable affine."""

    def __init__(self, normalized_dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.weight = self.register_parameter("weight", Tensor(np.ones(normalized_dim)))
        self.bias = self.register_parameter("bias", Tensor(np.zeros(normalized_dim)))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, self.eps)

    def export_plan(self, builder, x_reg: str, prefix: str = "norm") -> str:
        """Emit the layer-norm op; ``out``/``scratch`` come from the arena."""
        weight = frozen_array_snapshot(self.weight.data)
        bias = frozen_array_snapshot(self.bias.data)
        eps = self.eps
        out_reg = builder.reg(prefix)

        def op(ctx) -> None:
            x = ctx.regs[x_reg]
            out = ctx.acquire(x.shape)
            scratch = ctx.acquire(x.shape)
            F.layer_norm_infer(x, weight, bias, eps, out=out, scratch=scratch)
            ctx.arena.release(scratch)
            ctx.put(out_reg, out)

        builder.emit(prefix, op)
        return out_reg


class Dropout(Module):
    """Inverted dropout layer; a no-op in eval mode."""

    def __init__(self, p: float = 0.1, seed: Optional[int] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)

    def export_plan(self, builder, x_reg: str, prefix: str = "dropout") -> str:
        """Inference plans replay eval mode: dropout is the identity."""
        return x_reg


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._ordered: List[Module] = []
        for idx, module in enumerate(modules):
            self.add_module(str(idx), module)
            self._ordered.append(module)

    def forward(self, x):
        for module in self._ordered:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self._ordered)

    def __len__(self) -> int:
        return len(self._ordered)
