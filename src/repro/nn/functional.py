"""Differentiable functional operations for the NumPy autograd substrate.

These functions operate on :class:`~repro.nn.tensor.Tensor` objects and are
the building blocks used by :mod:`repro.nn.layers` and
:mod:`repro.nn.attention`.  The attention softmax is *pluggable*: the
:class:`SoftmaxVariant` registry maps a name (``"reference"``, ``"base2"``,
``"softermax"``, ...) to a forward function and the gradient surrogate used
in the backward pass, which is how Softermax-aware fine-tuning (bit-accurate
forward, straight-through backward) is expressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.core import (
    SoftermaxConfig,
    softermax as softermax_forward,
    softermax_float,
    softmax_reference,
    base2_softmax,
    softmax_jacobian_vector_product,
    log_softmax_reference,
)
from repro.nn.tensor import Tensor


# --------------------------------------------------------------------------- #
# simple activations
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as used by BERT)."""
    c = np.sqrt(2.0 / np.pi)
    inner = (x + (x * x * x) * 0.044715) * c
    return x * 0.5 * (inner.tanh() + 1.0)


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return 1.0 / ((-x).exp() + 1.0)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)`` at train time."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalized = centered / (variance + eps).sqrt()
    return normalized * weight + bias


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight + bias`` (weight stored as in_dim x out_dim)."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def prefix_mask_lengths(mask: np.ndarray) -> np.ndarray:
    """Per-sequence valid-token counts of a right-padded attention mask.

    The exact-masking attention path excludes padded keys *exactly* (their
    probability is zero by construction, not an additive penalty), which is
    only well-defined when every sequence is a prefix of valid tokens
    followed by padding.  Raises :class:`ValueError` for interior holes,
    non-0/1 values, or all-padding rows.
    """
    mask = np.asarray(mask, dtype=np.float64)
    lengths = np.rint(mask.sum(axis=-1)).astype(np.int64)
    expected = (np.arange(mask.shape[-1]) < lengths[..., None]).astype(
        np.float64)
    if not np.array_equal(mask, expected):
        raise ValueError(
            "exact masking requires right-padded 0/1 prefix masks "
            "(all 1s followed by all 0s per sequence)")
    if (lengths < 1).any():
        raise ValueError("exact masking requires at least one valid token "
                         "per sequence")
    return lengths


# --------------------------------------------------------------------------- #
# softmax variants (the pluggable attention softmax)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SoftmaxVariant:
    """A named softmax implementation usable inside attention.

    Attributes
    ----------
    name:
        Registry key.
    forward_fn:
        ``forward_fn(scores) -> probabilities`` on raw NumPy arrays (may be
        non-differentiable, e.g. the bit-accurate Softermax pipeline).
    surrogate_fn:
        Smooth float function whose Jacobian is used in the backward pass
        (the straight-through estimator).  For exact float softmaxes this is
        the same function as ``forward_fn``.
    base:
        Exponential base of the surrogate (needed for the Jacobian scale).
    """

    name: str
    forward_fn: Callable[[np.ndarray], np.ndarray]
    surrogate_fn: Callable[[np.ndarray], np.ndarray]
    base: float


def _registry() -> Dict[str, SoftmaxVariant]:
    return dict(_SOFTMAX_VARIANTS)


_SOFTMAX_VARIANTS: Dict[str, SoftmaxVariant] = {}


def register_softmax_variant(variant: SoftmaxVariant) -> None:
    """Register (or replace) a softmax variant by name."""
    _SOFTMAX_VARIANTS[variant.name] = variant


def get_softmax_variant(name: str) -> SoftmaxVariant:
    """Look up a registered softmax variant."""
    try:
        return _SOFTMAX_VARIANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown softmax variant {name!r}; available: {sorted(_SOFTMAX_VARIANTS)}"
        ) from None


def available_softmax_variants() -> list:
    """Names of all registered softmax variants."""
    return sorted(_SOFTMAX_VARIANTS)


def make_softermax_variant(config: SoftermaxConfig | None = None,
                           name: str = "softermax",
                           kernel: str = "auto",
                           kernel_options: dict | None = None) -> SoftmaxVariant:
    """Create a Softermax variant bound to a specific operating point.

    Parameters
    ----------
    config:
        Operating point (paper Table I when omitted).
    name:
        Registry key of the resulting variant.
    kernel:
        Named implementation from :mod:`repro.kernels` (``"auto"`` selects
        the adaptive fused/blocked/parallel dispatcher; every kernel in
        the bit-accurate family matches the ``"softermax-bit-accurate"``
        oracle bit for bit).
    kernel_options:
        Engine knobs forwarded to the kernel factory (e.g. ``workers``,
        ``block_rows``).
    """
    from repro.kernels import resolve_kernel

    cfg = config or SoftermaxConfig.paper_table1()
    kernel_fn = resolve_kernel(kernel, cfg, **(kernel_options or {}))

    def forward(scores: np.ndarray) -> np.ndarray:
        return kernel_fn(scores, axis=-1)

    return SoftmaxVariant(
        name=name,
        forward_fn=forward,
        surrogate_fn=lambda s: softermax_float(s, axis=-1),
        base=2.0,
    )


register_softmax_variant(
    SoftmaxVariant(
        name="reference",
        forward_fn=lambda s: softmax_reference(s, axis=-1),
        surrogate_fn=lambda s: softmax_reference(s, axis=-1),
        base=np.e,
    )
)
register_softmax_variant(
    SoftmaxVariant(
        name="base2",
        forward_fn=lambda s: base2_softmax(s, axis=-1),
        surrogate_fn=lambda s: base2_softmax(s, axis=-1),
        base=2.0,
    )
)
register_softmax_variant(make_softermax_variant())


def attention_softmax(scores: Tensor, variant: SoftmaxVariant) -> Tensor:
    """Apply a softmax variant along the last axis of ``scores``.

    Forward: the variant's (possibly bit-accurate fixed-point) forward
    function.  Backward: straight-through estimator -- the gradient of the
    smooth surrogate evaluated at the same input, which is exactly the
    scheme the paper uses for Softermax-aware fine-tuning.
    """

    def forward_fn(data: np.ndarray) -> np.ndarray:
        return variant.forward_fn(data)

    def backward_fn(grad_out: np.ndarray, input_data: np.ndarray,
                    output_data: np.ndarray) -> np.ndarray:
        surrogate_probs = variant.surrogate_fn(input_data)
        return softmax_jacobian_vector_product(
            surrogate_probs, grad_out, axis=-1, base=variant.base
        )

    return scores.apply(forward_fn, backward_fn)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Plain differentiable base-e softmax (used outside attention)."""
    if axis != -1:
        raise ValueError("softmax currently supports only the last axis")

    def forward_fn(data: np.ndarray) -> np.ndarray:
        return softmax_reference(data, axis=-1)

    def backward_fn(grad_out: np.ndarray, input_data: np.ndarray,
                    output_data: np.ndarray) -> np.ndarray:
        return softmax_jacobian_vector_product(output_data, grad_out, axis=-1, base=np.e)

    return x.apply(forward_fn, backward_fn)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable differentiable log-softmax."""
    if axis != -1:
        raise ValueError("log_softmax currently supports only the last axis")

    def forward_fn(data: np.ndarray) -> np.ndarray:
        return log_softmax_reference(data, axis=-1)

    def backward_fn(grad_out: np.ndarray, input_data: np.ndarray,
                    output_data: np.ndarray) -> np.ndarray:
        probs = np.exp(output_data)
        return grad_out - probs * np.sum(grad_out, axis=-1, keepdims=True)

    return x.apply(forward_fn, backward_fn)
