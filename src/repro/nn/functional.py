"""Differentiable functional operations for the NumPy autograd substrate.

These functions operate on :class:`~repro.nn.tensor.Tensor` objects and are
the building blocks used by :mod:`repro.nn.layers` and
:mod:`repro.nn.attention`.  The attention softmax is *pluggable*: the
:class:`SoftmaxVariant` registry maps a name (``"reference"``, ``"base2"``,
``"softermax"``, ...) to a forward function and the gradient surrogate used
in the backward pass, which is how Softermax-aware fine-tuning (bit-accurate
forward, straight-through backward) is expressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.core import (
    SoftermaxConfig,
    softermax as softermax_forward,
    softermax_float,
    softmax_reference,
    base2_softmax,
    softmax_jacobian_vector_product,
    log_softmax_reference,
)
from repro.nn.tensor import Tensor


# --------------------------------------------------------------------------- #
# simple activations
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as used by BERT)."""
    c = np.sqrt(2.0 / np.pi)
    inner = (x + (x * x * x) * 0.044715) * c
    return x * 0.5 * (inner.tanh() + 1.0)


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return 1.0 / ((-x).exp() + 1.0)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)`` at train time."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalized = centered / (variance + eps).sqrt()
    return normalized * weight + bias


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight + bias`` (weight stored as in_dim x out_dim)."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def prefix_mask_lengths(mask: np.ndarray) -> np.ndarray:
    """Per-sequence valid-token counts of a right-padded attention mask.

    The exact-masking attention path excludes padded keys *exactly* (their
    probability is zero by construction, not an additive penalty), which is
    only well-defined when every sequence is a prefix of valid tokens
    followed by padding.  Raises :class:`ValueError` for interior holes,
    non-0/1 values, or all-padding rows.
    """
    mask = np.asarray(mask, dtype=np.float64)
    lengths = np.rint(mask.sum(axis=-1)).astype(np.int64)
    expected = (np.arange(mask.shape[-1]) < lengths[..., None]).astype(
        np.float64)
    if not np.array_equal(mask, expected):
        raise ValueError(
            "exact masking requires right-padded 0/1 prefix masks "
            "(all 1s followed by all 0s per sequence)")
    if (lengths < 1).any():
        raise ValueError("exact masking requires at least one valid token "
                         "per sequence")
    return lengths


# --------------------------------------------------------------------------- #
# graph-free inference variants (raw ndarrays, ``out=`` threading)
# --------------------------------------------------------------------------- #
# These mirror the Tensor ops above *bit for bit* -- same NumPy calls in the
# same order, so an :class:`repro.infer.InferencePlan` built from them
# replays the exact float64 sequence the autograd path would, just without
# Tensor wrapping, backward closures, or fresh large temporaries.  The
# ``out=``/``scratch=`` parameters accept arena buffers; when omitted the
# functions allocate (useful standalone and in tests).
#
# Bitwise-critical details, pinned by tests/infer/test_plan.py:
# * ``Tensor.mean`` is ``sum * (1.0 / count)`` -- NOT ``np.mean`` (which
#   divides); ``layer_norm_infer`` replays the multiply-by-reciprocal.
# * ``Tensor.__sub__`` is ``a + (-b)``; IEEE-754 addition of a negated
#   operand is bitwise identical to subtraction, so ``np.subtract`` is safe.
# * GELU's association order ``(x * 0.5) * (tanh(...) + 1.0)`` is kept.

def linear_infer(x: np.ndarray, weight: np.ndarray,
                 bias: Optional[np.ndarray] = None,
                 out: Optional[np.ndarray] = None) -> np.ndarray:
    """Affine transform on raw arrays; bitwise equal to :func:`linear`."""
    out = np.matmul(x, weight, out=out)
    if bias is not None:
        np.add(out, bias, out=out)
    return out


def layer_norm_infer(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
                     eps: float = 1e-5,
                     out: Optional[np.ndarray] = None,
                     scratch: Optional[np.ndarray] = None) -> np.ndarray:
    """Layer norm on raw arrays; bitwise equal to :func:`layer_norm`.

    ``out`` doubles as the centered buffer, ``scratch`` holds the squared
    deviations; the per-row statistics are a small fresh ``(..., 1)``
    allocation.
    """
    if out is None:
        out = np.empty_like(x)
    if scratch is None:
        scratch = np.empty_like(x)
    count = x.shape[-1]
    stat = np.sum(x, axis=-1, keepdims=True)
    np.multiply(stat, 1.0 / count, out=stat)          # mean
    np.subtract(x, stat, out=out)                     # centered
    np.multiply(out, out, out=scratch)
    np.sum(scratch, axis=-1, keepdims=True, out=stat)
    np.multiply(stat, 1.0 / count, out=stat)          # variance
    np.add(stat, eps, out=stat)
    np.sqrt(stat, out=stat)
    np.divide(out, stat, out=out)                     # normalized
    np.multiply(out, weight, out=out)
    np.add(out, bias, out=out)
    return out


def gelu_infer(x: np.ndarray, out: Optional[np.ndarray] = None,
               scratch: Optional[np.ndarray] = None) -> np.ndarray:
    """Tanh-approximation GELU on raw arrays; bitwise equal to :func:`gelu`."""
    if out is None:
        out = np.empty_like(x)
    if scratch is None:
        scratch = np.empty_like(x)
    c = np.sqrt(2.0 / np.pi)
    np.multiply(x, x, out=scratch)
    np.multiply(scratch, x, out=scratch)
    np.multiply(scratch, 0.044715, out=scratch)
    np.add(x, scratch, out=scratch)
    np.multiply(scratch, c, out=scratch)
    np.tanh(scratch, out=scratch)
    np.add(scratch, 1.0, out=scratch)
    np.multiply(x, 0.5, out=out)
    np.multiply(out, scratch, out=out)
    return out


def embedding_infer(weight: np.ndarray, ids: np.ndarray,
                    out: Optional[np.ndarray] = None) -> np.ndarray:
    """Row gather on a raw table; bitwise equal to ``Tensor.gather_rows``."""
    return np.take(weight, np.asarray(ids, dtype=np.int64), axis=0, out=out)


def exact_masked_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                           lengths: np.ndarray, scale: float,
                           softmax_forward: Callable[[np.ndarray], np.ndarray],
                           out: Optional[np.ndarray] = None,
                           arena=None, scratch=None) -> np.ndarray:
    """Length-grouped attention with padded keys excluded exactly.

    Sequences are grouped by valid length; each group's scores, softmax and
    context are computed on the ``[:length]`` slices only, in one kernel
    call per group.  Per-sequence results are therefore bitwise identical
    to running that sequence alone (rows are independent in every
    bit-accurate kernel, and the per-(batch, head) GEMM operands have
    identical shapes either way).  Padded positions come back as exact
    zeros.

    Shared by the graph path (:class:`~repro.nn.attention.
    MultiHeadSelfAttention`) and the plan engine; ``out`` may be an arena
    buffer (it is zero-filled here).

    ``arena``/``scratch`` switch the helper to its allocation-free mode,
    used by the plan executor: every per-group temporary -- the gathered
    Q/K/V slices, the score matrix, and crucially the softmax *output* --
    lives in the caller's :class:`~repro.kernels.workspace.KernelWorkspace`
    (itself arena-backed in the plan), and the kernel is invoked through
    the workspace-aware contract (``out=`` pointing at the staged buffer,
    ``scratch=`` forwarding the same workspace).  Callers passing
    ``arena``/``scratch`` must pass an out-capable ``softmax_forward``
    (see :func:`softmax_forward_with_out`).  Without them the per-group
    temporaries are ordinary allocations and ``softmax_forward`` is called
    with scores only, so plain graph-path variants keep working.
    """
    if out is None:
        out = np.zeros_like(v)
    else:
        out.fill(0.0)
    transient = None
    if scratch is None and arena is not None:
        # Arena without a workspace: wrap it so the group staging below
        # still draws from (and is accounted to) the caller's pool; the
        # transient wrapper returns its buffers on the way out.
        from repro.kernels.workspace import KernelWorkspace

        scratch = transient = KernelWorkspace(arena=arena)
    try:
        return _exact_masked_attention_groups(q, k, v, lengths, scale,
                                              softmax_forward, out, scratch)
    finally:
        if transient is not None:
            transient.clear()


def _exact_masked_attention_groups(q, k, v, lengths, scale, softmax_forward,
                                   out, scratch) -> np.ndarray:
    heads, head_dim = q.shape[1], q.shape[-1]
    for length in np.unique(lengths):
        idx = np.nonzero(lengths == length)[0]
        length = int(length)
        if scratch is None:
            qb = np.ascontiguousarray(q[idx][:, :, :length, :])
            kb = np.ascontiguousarray(k[idx][:, :, :length, :])
            vb = np.ascontiguousarray(v[idx][:, :, :length, :])
            scores = (qb @ kb.swapaxes(-1, -2)) * scale
            probs = softmax_forward(scores)
            ctx = probs @ vb
            for j, b in enumerate(idx):
                out[b, :, :length, :] = ctx[j]
            continue
        group = (len(idx), heads, length, head_dim)
        qb = scratch.take_shaped("attn.qb", group)
        kb = scratch.take_shaped("attn.kb", group)
        vb = scratch.take_shaped("attn.vb", group)
        for j, b in enumerate(idx):
            np.copyto(qb[j], q[b, :, :length, :])
            np.copyto(kb[j], k[b, :, :length, :])
            np.copyto(vb[j], v[b, :, :length, :])
        scores = scratch.take_shaped("attn.scores",
                                     (len(idx), heads, length, length))
        np.matmul(qb, kb.swapaxes(-1, -2), out=scores)
        np.multiply(scores, scale, out=scores)
        probs = scratch.take_shaped("attn.probs", scores.shape)
        softmax_forward(scores, out=probs, scratch=scratch)
        # qb's data is consumed; its buffer doubles as the context target.
        ctx = qb
        np.matmul(probs, vb, out=ctx)
        for j, b in enumerate(idx):
            np.copyto(out[b, :, :length, :], ctx[j])
    return out


# --------------------------------------------------------------------------- #
# softmax variants (the pluggable attention softmax)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SoftmaxVariant:
    """A named softmax implementation usable inside attention.

    Attributes
    ----------
    name:
        Registry key.
    forward_fn:
        ``forward_fn(scores) -> probabilities`` on raw NumPy arrays (may be
        non-differentiable, e.g. the bit-accurate Softermax pipeline).
    surrogate_fn:
        Smooth float function whose Jacobian is used in the backward pass
        (the straight-through estimator).  For exact float softmaxes this is
        the same function as ``forward_fn``.
    base:
        Exponential base of the surrogate (needed for the Jacobian scale).
    supports_out:
        Whether ``forward_fn`` accepts the workspace-aware keywords
        (``out=``, ``scratch=``) of the kernel contract.  The built-in
        variants all do; custom variants registered with a plain
        single-argument forward are adapted by
        :func:`softmax_forward_with_out` where needed.
    """

    name: str
    forward_fn: Callable[[np.ndarray], np.ndarray]
    surrogate_fn: Callable[[np.ndarray], np.ndarray]
    base: float
    supports_out: bool = False


def _registry() -> Dict[str, SoftmaxVariant]:
    return dict(_SOFTMAX_VARIANTS)


_SOFTMAX_VARIANTS: Dict[str, SoftmaxVariant] = {}


def register_softmax_variant(variant: SoftmaxVariant) -> None:
    """Register (or replace) a softmax variant by name."""
    _SOFTMAX_VARIANTS[variant.name] = variant


def get_softmax_variant(name: str) -> SoftmaxVariant:
    """Look up a registered softmax variant."""
    try:
        return _SOFTMAX_VARIANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown softmax variant {name!r}; available: {sorted(_SOFTMAX_VARIANTS)}"
        ) from None


def available_softmax_variants() -> list:
    """Names of all registered softmax variants."""
    return sorted(_SOFTMAX_VARIANTS)


def softmax_forward_with_out(variant: SoftmaxVariant) -> Callable:
    """A uniform ``fn(scores, out=None, scratch=None)`` over any variant.

    Out-capable variants return their forward unchanged; plain forwards
    are adapted with copy-out semantics so callers that thread arena
    buffers (the plan executor) work with custom variants too.
    """
    if variant.supports_out:
        return variant.forward_fn
    forward = variant.forward_fn

    def adapted(scores: np.ndarray, out: Optional[np.ndarray] = None,
                scratch=None) -> np.ndarray:
        probs = forward(scores)
        if out is None:
            return probs
        np.copyto(out, probs)
        return out

    return adapted


def make_softermax_variant(config: SoftermaxConfig | None = None,
                           name: str = "softermax",
                           kernel: str = "auto",
                           kernel_options: dict | None = None) -> SoftmaxVariant:
    """Create a Softermax variant bound to a specific operating point.

    Parameters
    ----------
    config:
        Operating point (paper Table I when omitted).
    name:
        Registry key of the resulting variant.
    kernel:
        Named implementation from :mod:`repro.kernels` (``"auto"`` selects
        the adaptive fused/blocked/parallel dispatcher; every kernel in
        the bit-accurate family matches the ``"softermax-bit-accurate"``
        oracle bit for bit).
    kernel_options:
        Engine knobs forwarded to the kernel factory (e.g. ``workers``,
        ``block_rows``).
    """
    from repro.kernels import resolve_kernel

    cfg = config or SoftermaxConfig.paper_table1()
    kernel_fn = resolve_kernel(kernel, cfg, **(kernel_options or {}))

    def forward(scores: np.ndarray, out: Optional[np.ndarray] = None,
                scratch=None) -> np.ndarray:
        return kernel_fn(scores, axis=-1, out=out, scratch=scratch)

    return SoftmaxVariant(
        name=name,
        forward_fn=forward,
        surrogate_fn=lambda s: softermax_float(s, axis=-1),
        base=2.0,
        supports_out=True,
    )


def _float_variant(name: str, fn: Callable, base: float) -> SoftmaxVariant:
    """A float-reference variant with copy-out contract support."""

    def forward(scores: np.ndarray, out: Optional[np.ndarray] = None,
                scratch=None) -> np.ndarray:
        probs = fn(scores, axis=-1)
        if out is None:
            return probs
        np.copyto(out, probs)
        return out

    return SoftmaxVariant(
        name=name,
        forward_fn=forward,
        surrogate_fn=lambda s: fn(s, axis=-1),
        base=base,
        supports_out=True,
    )


register_softmax_variant(_float_variant("reference", softmax_reference, np.e))
register_softmax_variant(_float_variant("base2", base2_softmax, 2.0))
register_softmax_variant(make_softermax_variant())


def attention_softmax(scores: Tensor, variant: SoftmaxVariant) -> Tensor:
    """Apply a softmax variant along the last axis of ``scores``.

    Forward: the variant's (possibly bit-accurate fixed-point) forward
    function.  Backward: straight-through estimator -- the gradient of the
    smooth surrogate evaluated at the same input, which is exactly the
    scheme the paper uses for Softermax-aware fine-tuning.
    """

    def forward_fn(data: np.ndarray) -> np.ndarray:
        return variant.forward_fn(data)

    def backward_fn(grad_out: np.ndarray, input_data: np.ndarray,
                    output_data: np.ndarray) -> np.ndarray:
        surrogate_probs = variant.surrogate_fn(input_data)
        return softmax_jacobian_vector_product(
            surrogate_probs, grad_out, axis=-1, base=variant.base
        )

    return scores.apply(forward_fn, backward_fn)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Plain differentiable base-e softmax (used outside attention)."""
    if axis != -1:
        raise ValueError("softmax currently supports only the last axis")

    def forward_fn(data: np.ndarray) -> np.ndarray:
        return softmax_reference(data, axis=-1)

    def backward_fn(grad_out: np.ndarray, input_data: np.ndarray,
                    output_data: np.ndarray) -> np.ndarray:
        return softmax_jacobian_vector_product(output_data, grad_out, axis=-1, base=np.e)

    return x.apply(forward_fn, backward_fn)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable differentiable log-softmax."""
    if axis != -1:
        raise ValueError("log_softmax currently supports only the last axis")

    def forward_fn(data: np.ndarray) -> np.ndarray:
        return log_softmax_reference(data, axis=-1)

    def backward_fn(grad_out: np.ndarray, input_data: np.ndarray,
                    output_data: np.ndarray) -> np.ndarray:
        probs = np.exp(output_data)
        return grad_out - probs * np.sum(grad_out, axis=-1, keepdims=True)

    return x.apply(forward_fn, backward_fn)
