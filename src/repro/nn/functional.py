"""Differentiable functional operations for the NumPy autograd substrate.

These functions operate on :class:`~repro.nn.tensor.Tensor` objects and are
the building blocks used by :mod:`repro.nn.layers` and
:mod:`repro.nn.attention`.  The attention softmax is *pluggable*: the
:class:`SoftmaxVariant` registry maps a name (``"reference"``, ``"base2"``,
``"softermax"``, ...) to a forward function and the gradient surrogate used
in the backward pass, which is how Softermax-aware fine-tuning (bit-accurate
forward, straight-through backward) is expressed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.core import (
    OnlineNormalizerState,
    SoftermaxConfig,
    integer_max,
    softermax as softermax_forward,
    softermax_float,
    softmax_reference,
    base2_softmax,
    softmax_jacobian_vector_product,
    log_softmax_reference,
)
from repro.fixedpoint import RoundingMode, quantize
from repro.nn.tensor import Tensor


# --------------------------------------------------------------------------- #
# simple activations
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation, as used by BERT)."""
    c = np.sqrt(2.0 / np.pi)
    inner = (x + (x * x * x) * 0.044715) * c
    return x * 0.5 * (inner.tanh() + 1.0)


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def sigmoid(x: Tensor) -> Tensor:
    return 1.0 / ((-x).exp() + 1.0)


def dropout(x: Tensor, p: float, training: bool, rng: np.random.Generator) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)`` at train time."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def layer_norm(x: Tensor, weight: Tensor, bias: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalization over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    variance = (centered * centered).mean(axis=-1, keepdims=True)
    normalized = centered / (variance + eps).sqrt()
    return normalized * weight + bias


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight + bias`` (weight stored as in_dim x out_dim)."""
    out = x @ weight
    if bias is not None:
        out = out + bias
    return out


def prefix_mask_lengths(mask: np.ndarray) -> np.ndarray:
    """Per-sequence valid-token counts of a right-padded attention mask.

    The exact-masking attention path excludes padded keys *exactly* (their
    probability is zero by construction, not an additive penalty), which is
    only well-defined when every sequence is a prefix of valid tokens
    followed by padding.  Raises :class:`ValueError` for interior holes,
    non-0/1 values, or all-padding rows.
    """
    mask = np.asarray(mask, dtype=np.float64)
    lengths = np.rint(mask.sum(axis=-1)).astype(np.int64)
    expected = (np.arange(mask.shape[-1]) < lengths[..., None]).astype(
        np.float64)
    if not np.array_equal(mask, expected):
        raise ValueError(
            "exact masking requires right-padded 0/1 prefix masks "
            "(all 1s followed by all 0s per sequence)")
    if (lengths < 1).any():
        raise ValueError("exact masking requires at least one valid token "
                         "per sequence")
    return lengths


# --------------------------------------------------------------------------- #
# graph-free inference variants (raw ndarrays, ``out=`` threading)
# --------------------------------------------------------------------------- #
# These mirror the Tensor ops above *bit for bit* -- same NumPy calls in the
# same order, so an :class:`repro.infer.InferencePlan` built from them
# replays the exact float64 sequence the autograd path would, just without
# Tensor wrapping, backward closures, or fresh large temporaries.  The
# ``out=``/``scratch=`` parameters accept arena buffers; when omitted the
# functions allocate (useful standalone and in tests).
#
# Bitwise-critical details, pinned by tests/infer/test_plan.py:
# * ``Tensor.mean`` is ``sum * (1.0 / count)`` -- NOT ``np.mean`` (which
#   divides); ``layer_norm_infer`` replays the multiply-by-reciprocal.
# * ``Tensor.__sub__`` is ``a + (-b)``; IEEE-754 addition of a negated
#   operand is bitwise identical to subtraction, so ``np.subtract`` is safe.
# * GELU's association order ``(x * 0.5) * (tanh(...) + 1.0)`` is kept.

def linear_infer(x: np.ndarray, weight: np.ndarray,
                 bias: Optional[np.ndarray] = None,
                 out: Optional[np.ndarray] = None) -> np.ndarray:
    """Affine transform on raw arrays; bitwise equal to :func:`linear`."""
    out = np.matmul(x, weight, out=out)
    if bias is not None:
        np.add(out, bias, out=out)
    return out


def layer_norm_infer(x: np.ndarray, weight: np.ndarray, bias: np.ndarray,
                     eps: float = 1e-5,
                     out: Optional[np.ndarray] = None,
                     scratch: Optional[np.ndarray] = None) -> np.ndarray:
    """Layer norm on raw arrays; bitwise equal to :func:`layer_norm`.

    ``out`` doubles as the centered buffer, ``scratch`` holds the squared
    deviations; the per-row statistics are a small fresh ``(..., 1)``
    allocation.
    """
    if out is None:
        out = np.empty_like(x)
    if scratch is None:
        scratch = np.empty_like(x)
    count = x.shape[-1]
    stat = np.sum(x, axis=-1, keepdims=True)
    np.multiply(stat, 1.0 / count, out=stat)          # mean
    np.subtract(x, stat, out=out)                     # centered
    np.multiply(out, out, out=scratch)
    np.sum(scratch, axis=-1, keepdims=True, out=stat)
    np.multiply(stat, 1.0 / count, out=stat)          # variance
    np.add(stat, eps, out=stat)
    np.sqrt(stat, out=stat)
    np.divide(out, stat, out=out)                     # normalized
    np.multiply(out, weight, out=out)
    np.add(out, bias, out=out)
    return out


def gelu_infer(x: np.ndarray, out: Optional[np.ndarray] = None,
               scratch: Optional[np.ndarray] = None) -> np.ndarray:
    """Tanh-approximation GELU on raw arrays; bitwise equal to :func:`gelu`."""
    if out is None:
        out = np.empty_like(x)
    if scratch is None:
        scratch = np.empty_like(x)
    c = np.sqrt(2.0 / np.pi)
    np.multiply(x, x, out=scratch)
    np.multiply(scratch, x, out=scratch)
    np.multiply(scratch, 0.044715, out=scratch)
    np.add(x, scratch, out=scratch)
    np.multiply(scratch, c, out=scratch)
    np.tanh(scratch, out=scratch)
    np.add(scratch, 1.0, out=scratch)
    np.multiply(x, 0.5, out=out)
    np.multiply(out, scratch, out=out)
    return out


def embedding_infer(weight: np.ndarray, ids: np.ndarray,
                    out: Optional[np.ndarray] = None) -> np.ndarray:
    """Row gather on a raw table; bitwise equal to ``Tensor.gather_rows``."""
    return np.take(weight, np.asarray(ids, dtype=np.int64), axis=0, out=out)


def exact_masked_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                           lengths: np.ndarray, scale: float,
                           softmax_forward: Callable[[np.ndarray], np.ndarray],
                           out: Optional[np.ndarray] = None,
                           arena=None, scratch=None) -> np.ndarray:
    """Length-grouped attention with padded keys excluded exactly.

    Sequences are grouped by valid length; each group's scores, softmax and
    context are computed on the ``[:length]`` slices only, in one kernel
    call per group.  Per-sequence results are therefore bitwise identical
    to running that sequence alone (rows are independent in every
    bit-accurate kernel, and the per-(batch, head) GEMM operands have
    identical shapes either way).  Padded positions come back as exact
    zeros.

    Shared by the graph path (:class:`~repro.nn.attention.
    MultiHeadSelfAttention`) and the plan engine; ``out`` may be an arena
    buffer (it is zero-filled here).

    ``arena``/``scratch`` switch the helper to its allocation-free mode,
    used by the plan executor: every per-group temporary -- the gathered
    Q/K/V slices, the score matrix, and crucially the softmax *output* --
    lives in the caller's :class:`~repro.kernels.workspace.KernelWorkspace`
    (itself arena-backed in the plan), and the kernel is invoked through
    the workspace-aware contract (``out=`` pointing at the staged buffer,
    ``scratch=`` forwarding the same workspace).  Callers passing
    ``arena``/``scratch`` must pass an out-capable ``softmax_forward``
    (see :func:`softmax_forward_with_out`).  Without them the per-group
    temporaries are ordinary allocations and ``softmax_forward`` is called
    with scores only, so plain graph-path variants keep working.
    """
    if out is None:
        out = np.zeros_like(v)
    else:
        out.fill(0.0)
    transient = None
    if scratch is None and arena is not None:
        # Arena without a workspace: wrap it so the group staging below
        # still draws from (and is accounted to) the caller's pool; the
        # transient wrapper returns its buffers on the way out.
        from repro.kernels.workspace import KernelWorkspace

        scratch = transient = KernelWorkspace(arena=arena)
    try:
        return _exact_masked_attention_groups(q, k, v, lengths, scale,
                                              softmax_forward, out, scratch)
    finally:
        if transient is not None:
            transient.clear()


def _exact_masked_attention_groups(q, k, v, lengths, scale, softmax_forward,
                                   out, scratch) -> np.ndarray:
    for length in np.unique(lengths):
        idx = np.nonzero(lengths == length)[0]
        _attend_group_dense(q, k, v, idx, int(length), scale,
                            softmax_forward, out, scratch)
    return out


def _attend_group_dense(q, k, v, idx, length, scale, softmax_forward,
                        out, scratch) -> None:
    """Dense attention over one length group (full scores/probs matrices)."""
    heads, head_dim = q.shape[1], q.shape[-1]
    if scratch is None:
        qb = np.ascontiguousarray(q[idx][:, :, :length, :])
        kb = np.ascontiguousarray(k[idx][:, :, :length, :])
        vb = np.ascontiguousarray(v[idx][:, :, :length, :])
        scores = (qb @ kb.swapaxes(-1, -2)) * scale
        probs = softmax_forward(scores)
        ctx = probs @ vb
        for j, b in enumerate(idx):
            out[b, :, :length, :] = ctx[j]
        return
    group = (len(idx), heads, length, head_dim)
    qb = scratch.take_shaped("attn.qb", group)
    kb = scratch.take_shaped("attn.kb", group)
    vb = scratch.take_shaped("attn.vb", group)
    for j, b in enumerate(idx):
        np.copyto(qb[j], q[b, :, :length, :])
        np.copyto(kb[j], k[b, :, :length, :])
        np.copyto(vb[j], v[b, :, :length, :])
    scores = scratch.take_shaped("attn.scores",
                                 (len(idx), heads, length, length))
    np.matmul(qb, kb.swapaxes(-1, -2), out=scores)
    np.multiply(scores, scale, out=scores)
    probs = scratch.take_shaped("attn.probs", scores.shape)
    softmax_forward(scores, out=probs, scratch=scratch)
    # qb's data is consumed; its buffer doubles as the context target.
    ctx = qb
    np.matmul(probs, vb, out=ctx)
    for j, b in enumerate(idx):
        np.copyto(out[b, :, :length, :], ctx[j])


# --------------------------------------------------------------------------- #
# chunked O(block)-memory attention on the online-normalizer recurrence
# --------------------------------------------------------------------------- #
#: Tolerance contract of the chunked whole-row merge for the float softmax
#: variants (``"reference"``, ``"base2"``): chunked output vs the dense
#: engine on shapes both can run.  Every cross-block renormalization is an
#: exact power of two (the integer running max of the paper's recurrence),
#: so the only deviation is float summation order across blocks.
CHUNKED_MERGE_RTOL = 1e-9
CHUNKED_MERGE_ATOL = 1e-12


class _ExactChunkRule:
    """Per-query-block streaming softmax state for the float variants.

    Rides :class:`~repro.core.OnlineNormalizerState` in exact mode, one
    :meth:`update` per key/value block.  The integer running max makes
    every cross-block renormalization factor ``2**(old_max - new_max)`` an
    exact power of two, so merging accumulates no rounding beyond float
    summation order (see :data:`CHUNKED_MERGE_RTOL`).  Base-e variants are
    handled upstream by folding ``log2(e)`` into the score scale:
    ``e**x == 2**(x * log2(e))``.
    """

    def __init__(self, rows_shape) -> None:
        self._state = OnlineNormalizerState(rows_shape, exact=True)
        self._prev_max = None

    def feed(self, scores: np.ndarray):
        """Consume one key/value block of scaled scores.

        Returns ``(weights, ctx_shift)``: unnormalized weights relative to
        the *new* running max, and the factor (or ``None`` when it is
        identically one) that rescales the partial context accumulated so
        far onto the new max.
        """
        state = self._state
        prev_max = self._prev_max
        local_max = integer_max(scores, axis=-1)
        unnormed = state.update(scores)
        new_max = state.running_max
        np.multiply(unnormed,
                    np.power(2.0, local_max - new_max)[..., None],
                    out=unnormed)
        self._prev_max = new_max
        if prev_max is None:
            return unnormed, None
        shift = np.power(2.0, prev_max - new_max)
        if np.all(shift == 1.0):
            return unnormed, None
        return unnormed, shift

    def finalize_(self, ctx: np.ndarray) -> None:
        """Divide the accumulated context by the merged denominator."""
        np.divide(ctx, self._state.running_sum[..., None], out=ctx)


class _SoftermaxChunkRule:
    """Per-query-block streaming state for bit-accurate Softermax variants.

    Per-block statistics come from the fused kernel front end
    (:meth:`~repro.kernels.fused.FusedSoftermaxKernel.online_stats`),
    bitwise-pinned to the slice-loop pipeline; blocks are then merged with
    the paper's own hardware recurrence at block granularity -- power-of-two
    shifts on the integer running max plus a ``sum_fmt`` round-to-nearest
    on the running sum -- and the final division uses the bit-accurate
    reciprocal unit.  The whole bit-accurate kernel family shares one
    oracle, so the chunked statistics are identical whichever kernel the
    variant itself selected.
    """

    def __init__(self, config: SoftermaxConfig, ws) -> None:
        from repro.kernels.fused import get_fused_kernel

        self._kernel = get_fused_kernel(config)
        self._config = config
        self._ws = ws
        self._max = None
        self._sum = None

    def feed(self, scores: np.ndarray):
        cfg = self._config
        unnormed, slice_maxes, bmax, bsum = self._kernel.online_stats(
            scores, ws=self._ws)
        if self._max is None:
            new_max = bmax
            self._sum = bsum
            shift = None
        else:
            new_max = np.maximum(self._max, bmax)
            run_shift = np.power(2.0, self._max - new_max)
            loc_shift = np.power(2.0, bmax - new_max)
            merged = self._sum * run_shift + bsum * loc_shift
            self._sum = quantize(merged, cfg.sum_fmt, RoundingMode.NEAREST)
            shift = None if np.all(run_shift == 1.0) else run_shift
        # Rescale the per-slice-relative numerators onto the running max;
        # the exponents are integers, so the factors are exact.
        exp = np.repeat(slice_maxes - new_max[..., None],
                        cfg.slice_width, axis=-1)
        np.multiply(unnormed,
                    np.power(2.0, exp[..., :scores.shape[-1]]),
                    out=unnormed)
        self._max = new_max
        return unnormed, shift

    def finalize_(self, ctx: np.ndarray) -> None:
        recip = self._kernel.reciprocal_unit(self._sum)
        np.multiply(ctx, recip[..., None], out=ctx)


def _chunk_rule(variant: "SoftmaxVariant", rows_shape, scratch):
    if variant.chunk_kind == "softermax":
        cfg = variant.config or SoftermaxConfig.paper_table1()
        return _SoftermaxChunkRule(cfg, scratch)
    return _ExactChunkRule(rows_shape)


def _chunk_scale(variant: "SoftmaxVariant", scale: float) -> float:
    """Score scale for the chunked path (folds base-e onto base 2)."""
    if variant.chunk_kind == "exact" and variant.base != 2.0:
        return scale * np.log2(variant.base)
    return scale


def chunked_masked_attention(q: np.ndarray, k: np.ndarray, v: np.ndarray,
                             lengths: np.ndarray, scale: float,
                             variant: "SoftmaxVariant", block_kv: int,
                             out: Optional[np.ndarray] = None,
                             arena=None, scratch=None) -> np.ndarray:
    """Length-grouped attention in O(block) peak memory.

    Same contract and masking semantics as :func:`exact_masked_attention`,
    but nothing quadratic in the sequence length is ever materialized:
    both the query and the key/value axes are processed in blocks of
    ``block_kv`` (blocking only the keys would still leave an
    ``seq x block`` score strip per query row -- at 32k queries that is
    hundreds of megabytes), carrying ``(running_max, running_sum, partial
    context)`` through the online-normalizer merge.  Peak extra memory per
    group is the staged Q/K/V slices (linear in the sequence) plus
    ``O(block_kv**2)`` score/weight temporaries.

    Length groups not longer than ``block_kv`` delegate to the dense group
    path and are therefore *bitwise identical* to
    :func:`exact_masked_attention`.  Longer groups follow the documented
    tolerance contract (the same opt-in rule as ``fuse_qkv``):

    * float variants (``chunk_kind == "exact"``): within
      :data:`CHUNKED_MERGE_RTOL`/:data:`CHUNKED_MERGE_ATOL` of the dense
      engine -- all cross-block renormalizations are exact powers of two,
      only float summation order differs;
    * bit-accurate Softermax variants (``chunk_kind == "softermax"``):
      per-block statistics stay bitwise-pinned to the slice-loop oracle
      (via :meth:`~repro.kernels.fused.FusedSoftermaxKernel.online_stats`)
      and blocks merge with the paper's hardware recurrence, but the
      streaming path cannot apply the dense back end's two output-side
      roundings (the FLOOR requantize of renormalized numerators and the
      NEAREST ``output_fmt`` rounding), so whole-row results differ from
      the dense engine by a few output resolutions per probability --
      bounded in practice by ``~output_fmt.resolution * sqrt(L) *
      max|V|`` per context element (pinned by the chunked test suite).

    Variants without a declared ``chunk_kind`` (custom registrations) are
    rejected: their forward is a black box with no streaming recurrence.

    ``out``/``arena``/``scratch`` follow the PR 5 allocation-free contract:
    block buffers are staged on the caller's workspace (arena-backed in the
    plan executor), so steady-state executions allocate nothing.

    Tolerance: bitwise vs exact_masked_attention for groups <= block_kv;
    longer groups: float variants within CHUNKED_MERGE_RTOL /
    CHUNKED_MERGE_ATOL, Softermax variants within ~output_fmt.resolution
    * sqrt(L) * max|V| per context element (pinned by
    tests/nn/test_chunked_attention.py).
    """
    block_kv = int(block_kv)
    if block_kv < 1:
        raise ValueError(f"block_kv must be >= 1, got {block_kv}")
    if getattr(variant, "chunk_kind", None) is None:
        raise ValueError(
            f"softmax variant {variant.name!r} does not define a chunked "
            "(online-merge) recurrence; chunked attention supports the "
            "float reference variants and Softermax variants built by "
            "make_softermax_variant")
    if out is None:
        out = np.zeros_like(v)
    else:
        out.fill(0.0)
    softmax_fwd = softmax_forward_with_out(variant)
    transient = None
    if scratch is None and arena is not None:
        from repro.kernels.workspace import KernelWorkspace

        scratch = transient = KernelWorkspace(arena=arena)
    try:
        for length in np.unique(lengths):
            idx = np.nonzero(lengths == length)[0]
            length = int(length)
            if length <= block_kv:
                # Single-block groups degenerate to the dense path: bitwise
                # identical to exact_masked_attention by construction.
                _attend_group_dense(q, k, v, idx, length, scale,
                                    softmax_fwd, out, scratch)
            else:
                _attend_group_chunked(q, k, v, idx, length, scale, variant,
                                      block_kv, out, scratch)
        return out
    finally:
        if transient is not None:
            transient.clear()


def _attend_group_chunked(q, k, v, idx, length, scale, variant, block,
                          out, scratch) -> None:
    """Blocked attention over one length group (O(block**2) temporaries)."""
    heads, head_dim = q.shape[1], q.shape[-1]
    g = len(idx)

    def take(key, shape):
        if scratch is None:
            return np.empty(shape, dtype=np.float64)
        return scratch.take_shaped(key, shape)

    # Staged contiguous group slices (linear in the sequence length --
    # the same staging the dense path does).
    qb = take("chunk.qb", (g, heads, length, head_dim))
    kb = take("chunk.kb", (g, heads, length, head_dim))
    vb = take("chunk.vb", (g, heads, length, head_dim))
    for j, b in enumerate(idx):
        np.copyto(qb[j], q[b, :, :length, :])
        np.copyto(kb[j], k[b, :, :length, :])
        np.copyto(vb[j], v[b, :, :length, :])
    eff_scale = _chunk_scale(variant, scale)
    for qs in range(0, length, block):
        qe = min(qs + block, length)
        qw = qe - qs
        rule = _chunk_rule(variant, (g, heads, qw), scratch)
        ctx = take("chunk.ctx", (g, heads, qw, head_dim))
        qview = qb[:, :, qs:qe, :]
        for ks in range(0, length, block):
            ke = min(ks + block, length)
            kw = ke - ks
            scores = take("chunk.scores", (g, heads, qw, kw))
            np.matmul(qview, kb[:, :, ks:ke, :].swapaxes(-1, -2), out=scores)
            np.multiply(scores, eff_scale, out=scores)
            weights, ctx_shift = rule.feed(scores)
            if ks == 0:
                np.matmul(weights, vb[:, :, ks:ke, :], out=ctx)
                continue
            if ctx_shift is not None:
                np.multiply(ctx, ctx_shift[..., None], out=ctx)
            part = take("chunk.part", (g, heads, qw, head_dim))
            np.matmul(weights, vb[:, :, ks:ke, :], out=part)
            np.add(ctx, part, out=ctx)
        rule.finalize_(ctx)
        for j, b in enumerate(idx):
            np.copyto(out[b, :, qs:qe, :], ctx[j])


# --------------------------------------------------------------------------- #
# softmax variants (the pluggable attention softmax)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SoftmaxVariant:
    """A named softmax implementation usable inside attention.

    Attributes
    ----------
    name:
        Registry key.
    forward_fn:
        ``forward_fn(scores) -> probabilities`` on raw NumPy arrays (may be
        non-differentiable, e.g. the bit-accurate Softermax pipeline).
    surrogate_fn:
        Smooth float function whose Jacobian is used in the backward pass
        (the straight-through estimator).  For exact float softmaxes this is
        the same function as ``forward_fn``.
    base:
        Exponential base of the surrogate (needed for the Jacobian scale).
    supports_out:
        Whether ``forward_fn`` accepts the workspace-aware keywords
        (``out=``, ``scratch=``) of the kernel contract.  The built-in
        variants all do; custom variants registered with a plain
        single-argument forward are adapted by
        :func:`softmax_forward_with_out` where needed.
    config:
        Softermax operating point the variant is bound to (``None`` for
        float variants); consulted by the chunked attention path.
    chunk_kind:
        Which streaming recurrence :func:`chunked_masked_attention` may
        use for this variant: ``"exact"`` (float online-normalizer merge),
        ``"softermax"`` (bit-accurate block statistics merged with the
        hardware recurrence), or ``None`` (not chunkable -- the forward is
        a black box).
    """

    name: str
    forward_fn: Callable[[np.ndarray], np.ndarray]
    surrogate_fn: Callable[[np.ndarray], np.ndarray]
    base: float
    supports_out: bool = False
    config: Optional[SoftermaxConfig] = None
    chunk_kind: Optional[str] = None


def _registry() -> Dict[str, SoftmaxVariant]:
    return dict(_SOFTMAX_VARIANTS)


_SOFTMAX_VARIANTS: Dict[str, SoftmaxVariant] = {}


def register_softmax_variant(variant: SoftmaxVariant) -> None:
    """Register (or replace) a softmax variant by name."""
    _SOFTMAX_VARIANTS[variant.name] = variant


def get_softmax_variant(name: str) -> SoftmaxVariant:
    """Look up a registered softmax variant."""
    try:
        return _SOFTMAX_VARIANTS[name]
    except KeyError:
        raise KeyError(
            f"unknown softmax variant {name!r}; available: {sorted(_SOFTMAX_VARIANTS)}"
        ) from None


def available_softmax_variants() -> list:
    """Names of all registered softmax variants."""
    return sorted(_SOFTMAX_VARIANTS)


def softmax_forward_with_out(variant: SoftmaxVariant) -> Callable:
    """A uniform ``fn(scores, out=None, scratch=None)`` over any variant.

    Out-capable variants return their forward unchanged; plain forwards
    are adapted with copy-out semantics so callers that thread arena
    buffers (the plan executor) work with custom variants too.
    """
    if variant.supports_out:
        return variant.forward_fn
    forward = variant.forward_fn

    def adapted(scores: np.ndarray, out: Optional[np.ndarray] = None,
                scratch=None) -> np.ndarray:
        probs = forward(scores)
        if out is None:
            return probs
        np.copyto(out, probs)
        return out

    return adapted


def make_softermax_variant(config: SoftermaxConfig | None = None,
                           name: str = "softermax",
                           kernel: str = "auto",
                           kernel_options: dict | None = None) -> SoftmaxVariant:
    """Create a Softermax variant bound to a specific operating point.

    Parameters
    ----------
    config:
        Operating point (paper Table I when omitted).
    name:
        Registry key of the resulting variant.
    kernel:
        Named implementation from :mod:`repro.kernels` (``"auto"`` selects
        the adaptive fused/blocked/parallel dispatcher; every kernel in
        the bit-accurate family matches the ``"softermax-bit-accurate"``
        oracle bit for bit).
    kernel_options:
        Engine knobs forwarded to the kernel factory (e.g. ``workers``,
        ``block_rows``).
    """
    from repro.kernels import resolve_kernel

    cfg = config or SoftermaxConfig.paper_table1()
    kernel_fn = resolve_kernel(kernel, cfg, **(kernel_options or {}))

    def forward(scores: np.ndarray, out: Optional[np.ndarray] = None,
                scratch=None) -> np.ndarray:
        return kernel_fn(scores, axis=-1, out=out, scratch=scratch)

    return SoftmaxVariant(
        name=name,
        forward_fn=forward,
        surrogate_fn=lambda s: softermax_float(s, axis=-1),
        base=2.0,
        supports_out=True,
        config=cfg,
        chunk_kind="softermax",
    )


def _float_variant(name: str, fn: Callable, base: float) -> SoftmaxVariant:
    """A float-reference variant with copy-out contract support."""

    def forward(scores: np.ndarray, out: Optional[np.ndarray] = None,
                scratch=None) -> np.ndarray:
        probs = fn(scores, axis=-1)
        if out is None:
            return probs
        np.copyto(out, probs)
        return out

    return SoftmaxVariant(
        name=name,
        forward_fn=forward,
        surrogate_fn=lambda s: fn(s, axis=-1),
        base=base,
        supports_out=True,
        chunk_kind="exact",
    )


register_softmax_variant(_float_variant("reference", softmax_reference, np.e))
register_softmax_variant(_float_variant("base2", base2_softmax, 2.0))
register_softmax_variant(make_softermax_variant())


def attention_softmax(scores: Tensor, variant: SoftmaxVariant) -> Tensor:
    """Apply a softmax variant along the last axis of ``scores``.

    Forward: the variant's (possibly bit-accurate fixed-point) forward
    function.  Backward: straight-through estimator -- the gradient of the
    smooth surrogate evaluated at the same input, which is exactly the
    scheme the paper uses for Softermax-aware fine-tuning.
    """

    def forward_fn(data: np.ndarray) -> np.ndarray:
        return variant.forward_fn(data)

    def backward_fn(grad_out: np.ndarray, input_data: np.ndarray,
                    output_data: np.ndarray) -> np.ndarray:
        surrogate_probs = variant.surrogate_fn(input_data)
        return softmax_jacobian_vector_product(
            surrogate_probs, grad_out, axis=-1, base=variant.base
        )

    return scores.apply(forward_fn, backward_fn)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Plain differentiable base-e softmax (used outside attention)."""
    if axis != -1:
        raise ValueError("softmax currently supports only the last axis")

    def forward_fn(data: np.ndarray) -> np.ndarray:
        return softmax_reference(data, axis=-1)

    def backward_fn(grad_out: np.ndarray, input_data: np.ndarray,
                    output_data: np.ndarray) -> np.ndarray:
        return softmax_jacobian_vector_product(output_data, grad_out, axis=-1, base=np.e)

    return x.apply(forward_fn, backward_fn)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable differentiable log-softmax."""
    if axis != -1:
        raise ValueError("log_softmax currently supports only the last axis")

    def forward_fn(data: np.ndarray) -> np.ndarray:
        return log_softmax_reference(data, axis=-1)

    def backward_fn(grad_out: np.ndarray, input_data: np.ndarray,
                    output_data: np.ndarray) -> np.ndarray:
        probs = np.exp(output_data)
        return grad_out - probs * np.sum(grad_out, axis=-1, keepdims=True)

    return x.apply(forward_fn, backward_fn)
