"""Multi-headed self-attention with a pluggable softmax.

This is the module the paper cares about: the attention block computes
``softmax(Q K^T / sqrt(d_head)) V`` per head, and Softermax replaces the
softmax while the rest of the block is untouched.  The softmax is selected
by name through :func:`repro.nn.functional.get_softmax_variant`, so the same
model can be evaluated with the reference softmax, the base-2 softmax or the
bit-accurate Softermax pipeline (with straight-through gradients) simply by
switching the variant.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.functional import SoftmaxVariant, get_softmax_variant
from repro.nn.layers import Dropout, Linear, Module
from repro.nn.tensor import Tensor


class MultiHeadSelfAttention(Module):
    """Multi-headed self-attention (the paper's Figure 2 attention block).

    Parameters
    ----------
    hidden_dim:
        Model width (must be divisible by ``num_heads``).
    num_heads:
        Number of attention heads.
    dropout:
        Dropout probability applied to the attention probabilities.
    softmax_variant:
        Either a registered variant name (``"reference"``, ``"base2"``,
        ``"softermax"``) or a :class:`SoftmaxVariant` instance.
    kernel:
        Softermax kernel selector (see :mod:`repro.kernels`): when the
        variant is the string ``"softermax"``, pick the named implementation
        (``"auto"`` resolves to the adaptive fused/blocked/parallel
        dispatcher; pass ``"softermax-bit-accurate"`` to force the
        slice-loop oracle).  Ignored for other variants.
    kernel_options:
        Engine knobs forwarded to the kernel factory (``workers``,
        ``block_rows``); ignored for non-Softermax variants.
    rng:
        Generator for weight initialization.
    """

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        dropout: float = 0.1,
        softmax_variant: str | SoftmaxVariant = "reference",
        kernel: str = "auto",
        kernel_options: Optional[dict] = None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        if hidden_dim % num_heads != 0:
            raise ValueError(
                f"hidden_dim ({hidden_dim}) must be divisible by num_heads ({num_heads})"
            )
        rng = rng or np.random.default_rng(seed)
        self.hidden_dim = hidden_dim
        self.num_heads = num_heads
        self.head_dim = hidden_dim // num_heads

        self.query = Linear(hidden_dim, hidden_dim, rng=rng)
        self.key = Linear(hidden_dim, hidden_dim, rng=rng)
        self.value = Linear(hidden_dim, hidden_dim, rng=rng)
        self.output = Linear(hidden_dim, hidden_dim, rng=rng)
        self.attn_dropout = Dropout(dropout, seed=seed)

        self.set_softmax_variant(softmax_variant, kernel=kernel,
                                 kernel_options=kernel_options)
        #: Populated by :meth:`forward` when ``capture_scores`` is enabled:
        #: the raw scaled attention scores of the last call (for calibration
        #: and for feeding the hardware cost model with realistic data).
        self.last_scores: Optional[np.ndarray] = None
        self.capture_scores = False

    def set_softmax_variant(self, variant: str | SoftmaxVariant,
                            kernel: str = "auto",
                            kernel_options: Optional[dict] = None) -> None:
        """Switch the attention softmax implementation.

        ``kernel`` (and the engine knobs in ``kernel_options``) select the
        Softermax implementation when ``variant`` is the string
        ``"softermax"`` (every kernel in the registry's bit-accurate
        family produces identical outputs, so this only affects speed).
        """
        if isinstance(variant, str):
            if variant == "softermax" and (kernel != "auto" or kernel_options):
                from repro.nn.functional import make_softermax_variant

                variant = make_softermax_variant(kernel=kernel,
                                                 kernel_options=kernel_options)
            else:
                variant = get_softmax_variant(variant)
        self.softmax_variant = variant

    def _split_heads(self, x: Tensor, batch: int, seq_len: int) -> Tensor:
        # (batch, seq, hidden) -> (batch, heads, seq, head_dim)
        return x.reshape(batch, seq_len, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: Tensor, batch: int, seq_len: int) -> Tensor:
        # (batch, heads, seq, head_dim) -> (batch, seq, hidden)
        return x.transpose(0, 2, 1, 3).reshape(batch, seq_len, self.hidden_dim)

    def forward(self, hidden: Tensor, attention_mask: Optional[np.ndarray] = None,
                exact_mask: bool = False,
                block_kv: Optional[int] = None) -> Tensor:
        """Apply self-attention.

        Parameters
        ----------
        hidden:
            Input of shape ``(batch, seq_len, hidden_dim)``.
        attention_mask:
            Optional boolean/0-1 array of shape ``(batch, seq_len)`` where 1
            marks valid tokens.  Masked (padding) positions receive a large
            negative score before the softmax.
        exact_mask:
            Inference-only alternative masking scheme for ragged batches:
            instead of an additive penalty (which leaves padded keys a tiny
            but nonzero probability), padded keys are excluded *exactly* --
            each sequence's softmax runs over only its valid prefix, so a
            request's attention output is bitwise identical whether it rides
            alone or inside a coalesced padded batch.  Requires a
            right-padded prefix mask and eval mode.
        block_kv:
            Opt-in chunked long-context path (inference-only): attention
            runs in ``block_kv``-sized query/key blocks through the
            online-normalizer merge, never materializing the full
            ``seq x seq`` score matrix (see :func:`repro.nn.functional.
            chunked_masked_attention` for the tolerance contract).  Uses
            exact masking; with a mask it therefore requires
            ``exact_mask=True``, and with no mask it attends over the full
            sequence.
        """
        batch, seq_len, _ = hidden.shape
        if block_kv is not None and attention_mask is not None \
                and not exact_mask:
            raise ValueError(
                "block_kv (chunked attention) uses exact masking and "
                "cannot honor the additive -30.0 mask penalty; pass "
                "exact_mask=True with a prefix mask, or no mask")

        q = self._split_heads(self.query(hidden), batch, seq_len)
        k = self._split_heads(self.key(hidden), batch, seq_len)
        v = self._split_heads(self.value(hidden), batch, seq_len)

        if (exact_mask and attention_mask is not None) or block_kv is not None:
            if self.training:
                raise RuntimeError(
                    "exact masking is an inference-only path (it bypasses "
                    "the autograd graph); call eval() first")
            if attention_mask is not None:
                mask = np.asarray(attention_mask, dtype=np.float64)
                if mask.shape != (batch, seq_len):
                    raise ValueError(
                        f"attention_mask shape {mask.shape} does not match "
                        f"(batch, seq)={batch, seq_len}")
                lengths = F.prefix_mask_lengths(mask)
            else:
                # Chunked attention without a mask: every key is valid.
                lengths = np.full(batch, seq_len, dtype=np.int64)
            context = Tensor(self._exact_masked_attention(
                q.data, k.data, v.data, lengths, block_kv=block_kv))
            merged = self._merge_heads(context, batch, seq_len)
            return self.output(merged)

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.head_dim))

        if attention_mask is not None:
            mask = np.asarray(attention_mask, dtype=np.float64)
            if mask.shape != (batch, seq_len):
                raise ValueError(
                    f"attention_mask shape {mask.shape} does not match (batch, seq)={batch, seq_len}"
                )
            # Broadcast to (batch, 1, 1, seq): padding keys are suppressed.
            additive = (1.0 - mask)[:, None, None, :] * (-30.0)
            scores = scores + Tensor(additive)

        if self.capture_scores:
            # repro: allow(R1): opt-in debug capture; the copy is the snapshot
            self.last_scores = scores.data.copy()

        probs = F.attention_softmax(scores, self.softmax_variant)
        probs = self.attn_dropout(probs)

        context = probs @ v
        merged = self._merge_heads(context, batch, seq_len)
        return self.output(merged)

    def _exact_masked_attention(self, q: np.ndarray, k: np.ndarray,
                                v: np.ndarray, lengths: np.ndarray,
                                block_kv: Optional[int] = None) -> np.ndarray:
        """Length-grouped exact-mask attention (see
        :func:`repro.nn.functional.exact_masked_attention`, shared with the
        plan engine); ``block_kv`` selects the chunked O(block) path.

        Tolerance: block_kv=None (and groups <= block_kv) is bitwise;
        longer groups inherit chunked_masked_attention's merge contract.
        """
        if block_kv is not None:
            return F.chunked_masked_attention(
                q, k, v, lengths, 1.0 / np.sqrt(self.head_dim),
                self.softmax_variant, block_kv)
        return F.exact_masked_attention(
            q, k, v, lengths, 1.0 / np.sqrt(self.head_dim),
            self.softmax_variant.forward_fn)

    # ------------------------------------------------------------------ #
    # plan export (graph-free inference)
    # ------------------------------------------------------------------ #
    def export_plan(self, builder, x_reg: str, prefix: str = "attention",
                    fuse_qkv: bool = False,
                    block_kv: Optional[int] = None) -> str:
        """Emit this attention block's ops onto ``builder``.

        The emitted ops replay the eval-mode forward bit for bit: Q/K/V
        projections, head split (views), the attention core (additive-mask
        scores + pluggable softmax, or the exact-mask length-grouped path
        when the execution context carries ``lengths``), head merge, and
        the output projection.  The softmax variant's forward function and
        all weights are snapshotted at export time.

        ``fuse_qkv`` replaces the three projection GEMMs with one GEMM
        against the column-concatenated ``[Wq | Wk | Wv]`` weight.  The
        result is mathematically identical but *not* guaranteed bitwise
        equal (BLAS may block the wider GEMM differently), which is why it
        is opt-in; quantized projections cannot be fused (each projection
        carries its own input-quantizer scale).

        ``block_kv`` compiles the attention core to the chunked O(block)
        exact-mask path (:func:`repro.nn.functional.
        chunked_masked_attention`): with ``lengths`` on the execution
        context it chunks each length group, without lengths or mask it
        attends over the full sequence; block buffers are staged on the
        plan's arena-backed workspace.  Additive masks are rejected at the
        plan level (see :meth:`repro.infer.plan.InferencePlan.run`).

        Tolerance: fuse_qkv trades bitwise equality for one wide GEMM
        (BLAS blocking order; pinned by tests/infer/test_plan.py);
        block_kv inherits chunked_masked_attention's merge contract.
        Both default off = bitwise.
        """
        heads, head_dim = self.num_heads, self.head_dim
        hidden_dim = self.hidden_dim
        scale = 1.0 / np.sqrt(self.head_dim)
        variant = self.softmax_variant
        # Uniform workspace-aware surface (custom variants with a plain
        # forward get copy-out semantics): the core op threads the arena
        # buffer and the plan's kernel workspace through the softmax.
        softmax_forward = F.softmax_forward_with_out(self.softmax_variant)

        def split(x: np.ndarray) -> np.ndarray:
            batch, seq_len, _ = x.shape
            return x.reshape(batch, seq_len, heads,
                             head_dim).transpose(0, 2, 1, 3)

        if fuse_qkv:
            projections = (self.query, self.key, self.value)
            if any(p.plan_input_quant_params() is not None
                   for p in projections):
                raise ValueError(
                    "fuse_qkv cannot fuse quantized projections (each "
                    "carries its own input-quantizer scale); compile with "
                    "fuse_qkv=False")
            # repro: allow(R1): plan export is compile-time, not per-call
            fused_weight = np.concatenate(
                [p.plan_weight() for p in projections], axis=1)
            # repro: allow(R1): plan export is compile-time, not per-call
            fused_bias = np.concatenate(
                [p.plan_bias() for p in projections])
            qkv_reg = builder.reg(f"{prefix}.qkv_fused")
            core_in = (qkv_reg,)

            def project_op(ctx) -> None:
                x = ctx.regs[x_reg]
                batch, seq_len, _ = x.shape
                qkv = ctx.acquire((batch, seq_len, 3 * hidden_dim))
                F.linear_infer(x, fused_weight, fused_bias, out=qkv)
                ctx.put(qkv_reg, qkv)

            def heads_of(ctx):
                qkv = ctx.regs[qkv_reg]
                batch, seq_len, _ = qkv.shape
                by_proj = qkv.reshape(batch, seq_len, 3, heads, head_dim)
                return tuple(by_proj[:, :, i].transpose(0, 2, 1, 3)
                             for i in range(3))

            builder.emit(f"{prefix}.qkv_fused", project_op)
        else:
            q_reg = self.query.export_plan(builder, x_reg, f"{prefix}.query")
            k_reg = self.key.export_plan(builder, x_reg, f"{prefix}.key")
            v_reg = self.value.export_plan(builder, x_reg, f"{prefix}.value")
            core_in = (q_reg, k_reg, v_reg)

            def heads_of(ctx):
                return (split(ctx.regs[q_reg]), split(ctx.regs[k_reg]),
                        split(ctx.regs[v_reg]))

        context_reg = builder.reg(f"{prefix}.context")

        def core_op(ctx) -> None:
            q, k, v = heads_of(ctx)
            batch, _, seq_len, _ = q.shape
            context = ctx.acquire((batch, heads, seq_len, head_dim))
            # A chunked plan takes the blocked path whenever exact masking
            # applies: ragged runs carry ``lengths`` (run_ragged sets the
            # prefix mask alongside them), unmasked runs synthesize full
            # lengths.  Additive masks never reach here -- ``run`` rejects
            # them on block_kv plans.
            if block_kv is not None and (ctx.lengths is not None
                                         or ctx.mask is None):
                lengths = ctx.lengths
                if lengths is None:
                    lengths = np.full(batch, seq_len, dtype=np.int64)
                F.chunked_masked_attention(q, k, v, lengths, scale, variant,
                                           block_kv, out=context,
                                           arena=ctx.arena,
                                           scratch=ctx.scratch)
            elif ctx.lengths is not None:
                F.exact_masked_attention(q, k, v, ctx.lengths, scale,
                                         softmax_forward, out=context,
                                         arena=ctx.arena, scratch=ctx.scratch)
            else:
                scores = ctx.acquire((batch, heads, seq_len, seq_len))
                np.matmul(q, k.swapaxes(-1, -2), out=scores)
                np.multiply(scores, scale, out=scores)
                if ctx.mask is not None:
                    additive = (1.0 - ctx.mask)[:, None, None, :] * (-30.0)
                    np.add(scores, additive, out=scores)
                # The probabilities land in an arena buffer and the kernel
                # draws its scratch from the plan's workspace: the softmax
                # stage -- the paper's hot spot -- performs no per-call
                # allocation at all in steady state.
                probs = ctx.acquire(scores.shape)
                softmax_forward(scores, out=probs, scratch=ctx.scratch)
                ctx.arena.release(scores)
                np.matmul(probs, v, out=context)
                ctx.arena.release(probs)
            ctx.put(context_reg, context)
            for reg in core_in:
                ctx.pop_release(reg)

        builder.emit(f"{prefix}.core", core_op)

        merged_reg = builder.reg(f"{prefix}.merge")

        def merge_op(ctx) -> None:
            context = ctx.regs[context_reg]
            batch, _, seq_len, _ = context.shape
            merged = ctx.acquire((batch, seq_len, hidden_dim))
            np.copyto(merged.reshape(batch, seq_len, heads, head_dim),
                      context.transpose(0, 2, 1, 3))
            ctx.put(merged_reg, merged)
            ctx.pop_release(context_reg)

        builder.emit(f"{prefix}.merge", merge_op)
        out_reg = self.output.export_plan(builder, merged_reg,
                                          f"{prefix}.output")
        builder.emit_release(f"{prefix}.merge.free", merged_reg)
        return out_reg
