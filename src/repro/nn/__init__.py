"""NumPy deep-learning substrate (autograd, layers, attention, optimizers).

This subpackage stands in for the PyTorch/HuggingFace stack the paper used:
it provides just enough of a framework to fine-tune small Transformer
encoders with a pluggable attention softmax, which is what the accuracy
experiments (paper Table III) require.
"""

from repro.nn.tensor import Tensor, stack, concatenate, unbroadcast
from repro.nn import functional
from repro.nn.functional import (
    SoftmaxVariant,
    register_softmax_variant,
    get_softmax_variant,
    available_softmax_variants,
    make_softermax_variant,
    attention_softmax,
)
from repro.nn.layers import Module, Linear, Embedding, LayerNorm, Dropout, Sequential
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.transformer import FeedForward, TransformerLayer, TransformerEncoder
from repro.nn.losses import cross_entropy, mse_loss, span_cross_entropy
from repro.nn.optim import SGD, Adam, LinearWarmupSchedule, Optimizer, clip_grad_norm
from repro.nn import init

__all__ = [
    "Tensor",
    "stack",
    "concatenate",
    "unbroadcast",
    "functional",
    "SoftmaxVariant",
    "register_softmax_variant",
    "get_softmax_variant",
    "available_softmax_variants",
    "make_softermax_variant",
    "attention_softmax",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "MultiHeadSelfAttention",
    "FeedForward",
    "TransformerLayer",
    "TransformerEncoder",
    "cross_entropy",
    "mse_loss",
    "span_cross_entropy",
    "SGD",
    "Adam",
    "LinearWarmupSchedule",
    "Optimizer",
    "clip_grad_norm",
    "init",
]
