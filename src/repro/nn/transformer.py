"""Transformer encoder layers (paper Figure 2).

A Transformer layer is a multi-headed self-attention block followed by a
position-wise feed-forward block, each wrapped in dropout + residual +
layer-norm (the post-norm arrangement used by BERT).  The attention softmax
is pluggable via the ``softmax_variant`` argument, which is how Softermax is
dropped into a full network.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.functional import SoftmaxVariant
from repro.nn.layers import Dropout, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor


class FeedForward(Module):
    """Position-wise feed-forward block (Linear -> GELU -> Linear)."""

    def __init__(self, hidden_dim: int, intermediate_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.expand = Linear(hidden_dim, intermediate_dim, rng=rng)
        self.contract = Linear(intermediate_dim, hidden_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.contract(F.gelu(self.expand(x)))


class TransformerLayer(Module):
    """One encoder layer: self-attention block + feed-forward block."""

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        intermediate_dim: int,
        dropout: float = 0.1,
        softmax_variant: str | SoftmaxVariant = "reference",
        kernel: str = "auto",
        kernel_options: Optional[dict] = None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(seed)
        self.attention = MultiHeadSelfAttention(
            hidden_dim, num_heads, dropout=dropout,
            softmax_variant=softmax_variant, kernel=kernel,
            kernel_options=kernel_options, rng=rng, seed=seed,
        )
        self.attention_norm = LayerNorm(hidden_dim)
        self.attention_dropout = Dropout(dropout, seed=seed)
        self.feed_forward = FeedForward(hidden_dim, intermediate_dim, rng=rng)
        self.output_norm = LayerNorm(hidden_dim)
        self.output_dropout = Dropout(dropout, seed=seed)

    def forward(self, hidden: Tensor, attention_mask: Optional[np.ndarray] = None,
                exact_mask: bool = False) -> Tensor:
        attended = self.attention(hidden, attention_mask, exact_mask=exact_mask)
        hidden = self.attention_norm(hidden + self.attention_dropout(attended))
        transformed = self.feed_forward(hidden)
        hidden = self.output_norm(hidden + self.output_dropout(transformed))
        return hidden

    def set_softmax_variant(self, variant: str | SoftmaxVariant,
                            kernel: str = "auto",
                            kernel_options: Optional[dict] = None) -> None:
        self.attention.set_softmax_variant(variant, kernel=kernel,
                                           kernel_options=kernel_options)


class TransformerEncoder(Module):
    """A stack of :class:`TransformerLayer` modules."""

    def __init__(
        self,
        num_layers: int,
        hidden_dim: int,
        num_heads: int,
        intermediate_dim: int,
        dropout: float = 0.1,
        softmax_variant: str | SoftmaxVariant = "reference",
        kernel: str = "auto",
        kernel_options: Optional[dict] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.layers: List[TransformerLayer] = []
        for i in range(num_layers):
            layer = TransformerLayer(
                hidden_dim, num_heads, intermediate_dim, dropout=dropout,
                softmax_variant=softmax_variant, kernel=kernel,
                kernel_options=kernel_options, rng=rng,
                seed=None if seed is None else seed + i,
            )
            self.add_module(f"layer_{i}", layer)
            self.layers.append(layer)

    def forward(self, hidden: Tensor, attention_mask: Optional[np.ndarray] = None,
                exact_mask: bool = False) -> Tensor:
        for layer in self.layers:
            hidden = layer(hidden, attention_mask, exact_mask=exact_mask)
        return hidden

    def set_softmax_variant(self, variant: str | SoftmaxVariant,
                            kernel: str = "auto",
                            kernel_options: Optional[dict] = None) -> None:
        """Switch the attention softmax of every layer at once."""
        for layer in self.layers:
            layer.set_softmax_variant(variant, kernel=kernel,
                                      kernel_options=kernel_options)
