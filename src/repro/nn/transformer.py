"""Transformer encoder layers (paper Figure 2).

A Transformer layer is a multi-headed self-attention block followed by a
position-wise feed-forward block, each wrapped in dropout + residual +
layer-norm (the post-norm arrangement used by BERT).  The attention softmax
is pluggable via the ``softmax_variant`` argument, which is how Softermax is
dropped into a full network.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.functional import SoftmaxVariant
from repro.nn.layers import Dropout, LayerNorm, Linear, Module
from repro.nn.tensor import Tensor


class FeedForward(Module):
    """Position-wise feed-forward block (Linear -> GELU -> Linear)."""

    def __init__(self, hidden_dim: int, intermediate_dim: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng()
        self.expand = Linear(hidden_dim, intermediate_dim, rng=rng)
        self.contract = Linear(intermediate_dim, hidden_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.contract(F.gelu(self.expand(x)))

    def export_plan(self, builder, x_reg: str, prefix: str = "ffn") -> str:
        """Emit expand -> GELU -> contract; intermediates go back to the
        arena as soon as they are dead."""
        expanded_reg = self.expand.export_plan(builder, x_reg,
                                               f"{prefix}.expand")
        gelu_reg = builder.reg(f"{prefix}.gelu")

        def gelu_op(ctx) -> None:
            expanded = ctx.regs[expanded_reg]
            out = ctx.acquire(expanded.shape)
            scratch = ctx.acquire(expanded.shape)
            F.gelu_infer(expanded, out=out, scratch=scratch)
            ctx.arena.release(scratch)
            ctx.put(gelu_reg, out)
            ctx.pop_release(expanded_reg)

        builder.emit(f"{prefix}.gelu", gelu_op)
        out_reg = self.contract.export_plan(builder, gelu_reg,
                                            f"{prefix}.contract")
        builder.emit_release(f"{prefix}.gelu.free", gelu_reg)
        return out_reg


class TransformerLayer(Module):
    """One encoder layer: self-attention block + feed-forward block."""

    def __init__(
        self,
        hidden_dim: int,
        num_heads: int,
        intermediate_dim: int,
        dropout: float = 0.1,
        softmax_variant: str | SoftmaxVariant = "reference",
        kernel: str = "auto",
        kernel_options: Optional[dict] = None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(seed)
        self.attention = MultiHeadSelfAttention(
            hidden_dim, num_heads, dropout=dropout,
            softmax_variant=softmax_variant, kernel=kernel,
            kernel_options=kernel_options, rng=rng, seed=seed,
        )
        self.attention_norm = LayerNorm(hidden_dim)
        self.attention_dropout = Dropout(dropout, seed=seed)
        self.feed_forward = FeedForward(hidden_dim, intermediate_dim, rng=rng)
        self.output_norm = LayerNorm(hidden_dim)
        self.output_dropout = Dropout(dropout, seed=seed)

    def forward(self, hidden: Tensor, attention_mask: Optional[np.ndarray] = None,
                exact_mask: bool = False,
                block_kv: Optional[int] = None) -> Tensor:
        attended = self.attention(hidden, attention_mask, exact_mask=exact_mask,
                                  block_kv=block_kv)
        hidden = self.attention_norm(hidden + self.attention_dropout(attended))
        transformed = self.feed_forward(hidden)
        hidden = self.output_norm(hidden + self.output_dropout(transformed))
        return hidden

    def set_softmax_variant(self, variant: str | SoftmaxVariant,
                            kernel: str = "auto",
                            kernel_options: Optional[dict] = None) -> None:
        self.attention.set_softmax_variant(variant, kernel=kernel,
                                           kernel_options=kernel_options)

    def export_plan(self, builder, hidden_reg: str, prefix: str = "layer",
                    fuse_qkv: bool = False,
                    block_kv: Optional[int] = None) -> str:
        """Emit one encoder layer (attention block + feed-forward block).

        Residual sums are computed in place into the newer operand's
        buffer (bitwise equal: ``np.add(h, a, out=a)`` is ``h + a``), and
        every buffer goes back to the arena the op after its last read.
        """
        attended_reg = self.attention.export_plan(
            builder, hidden_reg, f"{prefix}.attention", fuse_qkv=fuse_qkv,
            block_kv=block_kv)
        sum1_reg = builder.reg(f"{prefix}.residual1")

        def residual1_op(ctx) -> None:
            hidden = ctx.regs[hidden_reg]
            attended = ctx.regs[attended_reg]
            np.add(hidden, attended, out=attended)
            ctx.transfer(attended_reg, sum1_reg)
            ctx.pop_release(hidden_reg)

        builder.emit(f"{prefix}.residual1", residual1_op)
        normed_reg = self.attention_norm.export_plan(
            builder, sum1_reg, f"{prefix}.attention_norm")
        builder.emit_release(f"{prefix}.residual1.free", sum1_reg)

        transformed_reg = self.feed_forward.export_plan(
            builder, normed_reg, f"{prefix}.ffn")
        sum2_reg = builder.reg(f"{prefix}.residual2")

        def residual2_op(ctx) -> None:
            normed = ctx.regs[normed_reg]
            transformed = ctx.regs[transformed_reg]
            np.add(normed, transformed, out=transformed)
            ctx.transfer(transformed_reg, sum2_reg)
            ctx.pop_release(normed_reg)

        builder.emit(f"{prefix}.residual2", residual2_op)
        out_reg = self.output_norm.export_plan(
            builder, sum2_reg, f"{prefix}.output_norm")
        builder.emit_release(f"{prefix}.residual2.free", sum2_reg)
        return out_reg


class TransformerEncoder(Module):
    """A stack of :class:`TransformerLayer` modules."""

    def __init__(
        self,
        num_layers: int,
        hidden_dim: int,
        num_heads: int,
        intermediate_dim: int,
        dropout: float = 0.1,
        softmax_variant: str | SoftmaxVariant = "reference",
        kernel: str = "auto",
        kernel_options: Optional[dict] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.layers: List[TransformerLayer] = []
        for i in range(num_layers):
            layer = TransformerLayer(
                hidden_dim, num_heads, intermediate_dim, dropout=dropout,
                softmax_variant=softmax_variant, kernel=kernel,
                kernel_options=kernel_options, rng=rng,
                seed=None if seed is None else seed + i,
            )
            self.add_module(f"layer_{i}", layer)
            self.layers.append(layer)

    def forward(self, hidden: Tensor, attention_mask: Optional[np.ndarray] = None,
                exact_mask: bool = False,
                block_kv: Optional[int] = None) -> Tensor:
        for layer in self.layers:
            hidden = layer(hidden, attention_mask, exact_mask=exact_mask,
                           block_kv=block_kv)
        return hidden

    def set_softmax_variant(self, variant: str | SoftmaxVariant,
                            kernel: str = "auto",
                            kernel_options: Optional[dict] = None) -> None:
        """Switch the attention softmax of every layer at once."""
        for layer in self.layers:
            layer.set_softmax_variant(variant, kernel=kernel,
                                      kernel_options=kernel_options)

    #: Inference plans compiled from a bare encoder take pre-embedded
    #: hidden states as their runtime input (see ``InferencePlan.run``).
    plan_input_kind = "hidden"

    def export_plan(self, builder, hidden_reg: str, prefix: str = "encoder",
                    fuse_qkv: bool = False,
                    block_kv: Optional[int] = None) -> str:
        """Emit the whole layer stack; returns the final hidden register."""
        for i, layer in enumerate(self.layers):
            hidden_reg = layer.export_plan(builder, hidden_reg,
                                           f"{prefix}.layer_{i}",
                                           fuse_qkv=fuse_qkv,
                                           block_kv=block_kv)
        return hidden_reg
