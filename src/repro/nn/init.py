"""Weight initializers for the NumPy deep-learning substrate."""

from __future__ import annotations

import numpy as np


def xavier_uniform(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization for a (fan_in, fan_out) weight."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def xavier_normal(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier normal initialization."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def kaiming_normal(shape: tuple, rng: np.random.Generator) -> np.ndarray:
    """He initialization (appropriate for ReLU fan-in)."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def truncated_normal(shape: tuple, rng: np.random.Generator, std: float = 0.02,
                     bound: float = 2.0) -> np.ndarray:
    """BERT-style truncated normal initialization (values within ±bound·std)."""
    values = rng.normal(0.0, std, size=shape)
    while True:
        outside = np.abs(values) > bound * std
        if not outside.any():
            return values
        values[outside] = rng.normal(0.0, std, size=int(outside.sum()))


def _fans(shape: tuple) -> tuple:
    if len(shape) < 1:
        raise ValueError("cannot compute fans of a scalar shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = int(shape[-1])
    return fan_in, fan_out
