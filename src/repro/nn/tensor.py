"""A small reverse-mode autograd engine over NumPy arrays.

The paper's accuracy experiments require *fine-tuning* Transformer models
with Softermax in the forward pass; since no deep-learning framework is
available offline, this module provides the minimal-but-complete autograd
substrate the rest of :mod:`repro.nn` is built on.

Design notes
------------
* A :class:`Tensor` wraps a ``float64`` NumPy array, an optional gradient
  and a closure that propagates gradients to its parents.  Graphs are built
  eagerly by the arithmetic methods and freed after :meth:`Tensor.backward`.
* Broadcasting follows NumPy semantics; gradients are un-broadcast by
  summing over the broadcast axes (:func:`unbroadcast`).
* Only the operations needed by Transformer training are implemented, but
  each is implemented completely (forward + backward) and tested against
  numerical differentiation in ``tests/nn/test_autograd.py``.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

import numpy as np


Array = np.ndarray


def _as_array(value) -> Array:
    if isinstance(value, Tensor):
        raise TypeError("expected a raw array, got a Tensor")
    return np.asarray(value, dtype=np.float64)


def unbroadcast(grad: Array, shape: tuple) -> Array:
    """Reduce ``grad`` back to ``shape`` by summing over broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were 1 in the original shape.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A NumPy-backed tensor that records operations for backpropagation."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "name")
    __array_priority__ = 100  # make NumPy defer to our __r*__ operators

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        _backward_fn: Optional[Callable[[Array], None]] = None,
        name: str = "",
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: Optional[Array] = None
        self.requires_grad = bool(requires_grad)
        self._parents = tuple(_parents)
        self._backward_fn = _backward_fn
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> Array:
        """Return the underlying array (not a copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new leaf tensor sharing the same data."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _lift(value) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        return Tensor(np.asarray(value, dtype=np.float64))

    def _make(self, data: Array, parents: Sequence["Tensor"],
              backward_fn: Callable[[Array], None]) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        return Tensor(
            data,
            requires_grad=requires,
            _parents=parents if requires else (),
            _backward_fn=backward_fn if requires else None,
        )

    def _accumulate(self, grad: Array) -> None:
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data)
        self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = Tensor._lift(other)
        out_data = self.data + other.data

        def backward(grad: Array) -> None:
            self._accumulate(unbroadcast(grad, self.shape))
            other._accumulate(unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: Array) -> None:
            self._accumulate(-grad)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-Tensor._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return Tensor._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = Tensor._lift(other)
        out_data = self.data * other.data

        def backward(grad: Array) -> None:
            self._accumulate(unbroadcast(grad * other.data, self.shape))
            other._accumulate(unbroadcast(grad * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = Tensor._lift(other)
        out_data = self.data / other.data

        def backward(grad: Array) -> None:
            self._accumulate(unbroadcast(grad / other.data, self.shape))
            other._accumulate(
                unbroadcast(-grad * self.data / (other.data**2), other.shape)
            )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data**exponent

        def backward(grad: Array) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor._lift(other)
        out_data = self.data @ other.data

        def backward(grad: Array) -> None:
            if self.requires_grad:
                grad_self = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(unbroadcast(grad_self, self.shape))
            if other.requires_grad:
                grad_other = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(unbroadcast(grad_other, other.shape))

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: Array) -> None:
            self._accumulate(grad * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: Array) -> None:
            self._accumulate(grad / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: Array) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: Array) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        out_data = np.maximum(self.data, 0.0)

        def backward(grad: Array) -> None:
            self._accumulate(grad * (self.data > 0.0))

        return self._make(out_data, (self,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        """Clamp values; gradient is passed only where not clipped."""
        out_data = np.clip(self.data, lo, hi)

        def backward(grad: Array) -> None:
            inside = (self.data >= lo) & (self.data <= hi)
            self._accumulate(grad * inside)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # reductions and shape ops
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: Array) -> None:
            grad = np.asarray(grad)
            if axis is None:
                expanded = np.broadcast_to(grad, self.shape)
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis)
                expanded = np.broadcast_to(grad, self.shape)
            self._accumulate(expanded.astype(np.float64))

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centered = self - mean
        result = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return result

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward(grad: Array) -> None:
            self._accumulate(grad.reshape(original_shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(grad: Array) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: Array) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def gather_rows(self, indices: Array) -> "Tensor":
        """Select rows of a 2-D table by integer indices (embedding lookup)."""
        indices = np.asarray(indices, dtype=np.int64)
        out_data = self.data[indices]

        def backward(grad: Array) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, indices.reshape(-1), grad.reshape(-1, self.shape[-1]))
            self._accumulate(full)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # custom ops
    # ------------------------------------------------------------------ #
    def apply(
        self,
        forward_fn: Callable[[Array], Array],
        backward_fn: Callable[[Array, Array, Array], Array],
    ) -> "Tensor":
        """Apply a custom elementwise-or-not op with an explicit backward.

        Parameters
        ----------
        forward_fn:
            Maps the input array to the output array.
        backward_fn:
            ``backward_fn(grad_out, input_data, output_data)`` returns the
            gradient with respect to the input.  This is the hook used for
            straight-through estimators (fake quantization, Softermax).
        """
        out_data = forward_fn(self.data)

        def backward(grad: Array) -> None:
            self._accumulate(backward_fn(grad, self.data, out_data))

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[Array] = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()

        # Iterative DFS to avoid recursion-depth issues on deep graphs.
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if id(node) in visited or not node.requires_grad:
                continue
            if processed:
                visited.add(id(node))
                topo.append(node)
                continue
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(shape, scale: float = 1.0, seed: Optional[int] = None,
              requires_grad: bool = False) -> "Tensor":
        rng = np.random.default_rng(seed)
        return Tensor(rng.normal(0.0, scale, size=shape), requires_grad=requires_grad)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis (differentiable)."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: Array) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for t, piece in zip(tensors, pieces):
            t._accumulate(np.squeeze(piece, axis=axis))

    requires = any(t.requires_grad for t in tensors)
    return Tensor(out_data, requires_grad=requires,
                  _parents=tuple(tensors) if requires else (),
                  _backward_fn=backward if requires else None)


def concatenate(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along an existing axis (differentiable)."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: Array) -> None:
        for i, t in enumerate(tensors):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            t._accumulate(grad[tuple(slicer)])

    requires = any(t.requires_grad for t in tensors)
    return Tensor(out_data, requires_grad=requires,
                  _parents=tuple(tensors) if requires else (),
                  _backward_fn=backward if requires else None)
