"""Loss functions for training the NumPy Transformer models."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits and integer class targets.

    Parameters
    ----------
    logits:
        Tensor of shape ``(batch, num_classes)`` (or ``(batch, seq, C)``;
        all leading dims are flattened).
    targets:
        Integer array matching the leading dimensions of ``logits``.
    """
    targets = np.asarray(targets, dtype=np.int64)
    num_classes = logits.shape[-1]
    flat_logits = logits.reshape(-1, num_classes)
    flat_targets = targets.reshape(-1)
    if flat_targets.shape[0] != flat_logits.shape[0]:
        raise ValueError(
            f"target count {flat_targets.shape[0]} does not match logits rows {flat_logits.shape[0]}"
        )
    if flat_targets.min(initial=0) < 0 or flat_targets.max(initial=0) >= num_classes:
        raise ValueError("target class index out of range")

    log_probs = F.log_softmax(flat_logits, axis=-1)
    one_hot = np.zeros((flat_targets.shape[0], num_classes))
    one_hot[np.arange(flat_targets.shape[0]), flat_targets] = 1.0
    picked = log_probs * Tensor(one_hot)
    return -picked.sum() * (1.0 / flat_targets.shape[0])


def mse_loss(predictions: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error against a float target array."""
    targets = np.asarray(targets, dtype=np.float64)
    diff = predictions - Tensor(targets)
    return (diff * diff).mean()


def span_cross_entropy(start_logits: Tensor, end_logits: Tensor,
                       start_targets: np.ndarray, end_targets: np.ndarray) -> Tensor:
    """SQuAD-style loss: average of start-position and end-position CE."""
    start_loss = cross_entropy(start_logits, start_targets)
    end_loss = cross_entropy(end_logits, end_targets)
    return (start_loss + end_loss) * 0.5
