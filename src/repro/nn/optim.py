"""Optimizers for the NumPy autograd substrate."""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param.data = param.data - self.lr * update


class Adam(Optimizer):
    """Adam optimizer (the fine-tuning optimizer used for BERT-style models)."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0) -> None:
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LinearWarmupSchedule:
    """Linear warmup followed by linear decay of the learning rate.

    Mirrors the schedule normally used when fine-tuning BERT for a few
    epochs on a downstream task.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int,
                 base_lr: Optional[float] = None) -> None:
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if warmup_steps < 0 or warmup_steps > total_steps:
            raise ValueError("warmup_steps must be in [0, total_steps]")
        self.optimizer = optimizer
        self.warmup_steps = warmup_steps
        self.total_steps = total_steps
        self.base_lr = base_lr if base_lr is not None else optimizer.lr
        self.step_count = 0

    def current_lr(self) -> float:
        step = self.step_count
        if self.warmup_steps and step < self.warmup_steps:
            return self.base_lr * (step + 1) / self.warmup_steps
        remaining = max(self.total_steps - step, 0)
        denom = max(self.total_steps - self.warmup_steps, 1)
        return self.base_lr * remaining / denom

    def step(self) -> float:
        """Advance the schedule and write the new LR into the optimizer."""
        lr = self.current_lr()
        self.optimizer.lr = lr
        self.step_count += 1
        return lr


def clip_grad_norm(parameters: Iterable[Tensor], max_norm: float) -> float:
    """Clip gradients to a global L2 norm; returns the pre-clip norm."""
    params = [p for p in parameters if p.grad is not None]
    if not params:
        return 0.0
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total
