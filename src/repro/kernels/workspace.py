"""Caller-owned scratch workspaces and the kernel allocation counters.

The kernel call contract (see :mod:`repro.kernels.registry`) is
``fn(x, axis=-1, out=None, scratch=None)``:

* ``out`` is the output buffer -- when given, the probabilities are written
  in place (bitwise identical to the allocate mode) and no output array is
  allocated by the kernel;
* ``scratch`` is a :class:`KernelWorkspace`, the home for every sizeable
  internal temporary (quantization buffers, gather indices, unnormalized
  codes).  One workspace serves every engine: the buffers are keyed by a
  namespaced string, grown monotonically, and reused across calls, so a
  steady-state caller (the inference-plan executor, the blocked kernel's
  built-in workspace) performs no per-call scratch allocation either.

The module also owns the **output-allocation counter**: every kernel that
allocates the array it hands back (no ``out=``, or an implementation
without native in-place support) records the allocation here, so serving
benchmarks can assert that the hot path performs *zero* steady-state
kernel-output allocations (``benchmarks/bench_encoder.py`` pins this).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


class KernelWorkspace:
    """Named, dtype-aware scratch buffers shared across kernel calls.

    Buffers are keyed by an arbitrary string (kernels namespace their keys,
    e.g. ``"blocked.icodes"``), grown monotonically (a smaller request
    reuses the larger buffer) and replaced when the dtype changes.  The
    workspace can be *arena-backed*: pass any allocator exposing
    ``acquire(shape, dtype)`` / ``release(buffer)`` (in practice a
    :class:`repro.infer.arena.WorkspaceArena`) and the workspace draws its
    buffers from -- and returns outgrown ones to -- that pool, so all
    pooling statistics and byte budgets live in one place.

    A workspace is not thread-safe; give each concurrent executor its own
    (the plan executor serializes executions with a lock).
    """

    def __init__(self, arena=None) -> None:
        self._arena = arena
        self._buffers: Dict[str, np.ndarray] = {}
        # Shaped views handed out by take_shaped, keyed (key, shape): the
        # steady-state fast path is one dict hit instead of a slice +
        # reshape per take.  Entries self-invalidate when the underlying
        # buffer is replaced (checked via ``view.base``).
        self._views: Dict[tuple, np.ndarray] = {}
        #: Number of ``take`` calls that had to (re)allocate a buffer.
        self.reallocs = 0
        #: Number of ``take`` calls served by an existing buffer.
        self.reuses = 0

    def take(self, key: str, size: int, dtype=np.float64) -> np.ndarray:
        """A flat buffer of at least ``size`` elements of ``dtype``.

        Returns a length-``size`` view; contents are unspecified (callers
        fully overwrite their scratch).  The underlying buffer persists
        under ``key`` until a bigger or differently-typed request replaces
        it.
        """
        dtype = np.dtype(dtype)
        size = int(size)
        buffer = self._buffers.get(key)
        if buffer is not None and buffer.dtype == dtype and buffer.size >= size:
            self.reuses += 1
            return buffer[:size]
        if buffer is not None:
            if self._arena is not None:
                self._arena.release(buffer)
            # Drop cached views of the outgrown buffer: a stale view would
            # pin the old memory invisibly to the arena's byte budget.
            self._views = {ck: view for ck, view in self._views.items()
                           if ck[0] != key}
        self.reallocs += 1
        if self._arena is not None:
            buffer = self._arena.acquire((max(size, 1),), dtype=dtype)
        else:
            buffer = np.empty(max(size, 1), dtype=dtype)
        self._buffers[key] = buffer
        return buffer[:size]

    def take_shaped(self, key: str, shape, dtype=np.float64) -> np.ndarray:
        """Like :meth:`take`, reshaped to ``shape`` (C order)."""
        view = self._views.get((key, shape))
        if view is not None and view.base is self._buffers.get(key) \
                and view.dtype == dtype:
            self.reuses += 1
            return view
        size = 1
        for dim in shape:
            size *= dim
        view = self.take(key, size, dtype).reshape(shape)
        self._views[(key, shape)] = view
        return view

    def clear(self) -> None:
        """Drop every buffer (returning arena-backed ones to the pool)."""
        if self._arena is not None:
            for buffer in self._buffers.values():
                self._arena.release(buffer)
        self._buffers.clear()
        self._views.clear()

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the workspace."""
        return sum(buffer.nbytes for buffer in self._buffers.values())

    def stats(self) -> dict:
        """Buffer inventory and reuse counters (for tests and benchmarks)."""
        return {
            "buffers": len(self._buffers),
            "nbytes": self.nbytes,
            "reallocs": self.reallocs,
            "reuses": self.reuses,
            "keys": sorted(self._buffers),
        }

    def __repr__(self) -> str:
        return (f"KernelWorkspace(buffers={len(self._buffers)}, "
                f"nbytes={self.nbytes}, reallocs={self.reallocs})")


def check_out_buffer(out: Optional[np.ndarray], shape) -> None:
    """Validate a caller-provided ``out=`` buffer against the contract.

    The output buffer must be a float64 :class:`numpy.ndarray` of exactly
    the input's shape; anything else is a usage error, raised eagerly so a
    wrong buffer can never be silently ignored or partially filled.
    """
    if out is None:
        return
    if not isinstance(out, np.ndarray):
        raise ValueError(
            f"out= must be a numpy array, got {type(out).__name__}")
    if out.dtype != np.float64:
        raise ValueError(f"out= must be float64, got dtype {out.dtype}")
    if tuple(out.shape) != tuple(shape):
        raise ValueError(
            f"out= shape {tuple(out.shape)} does not match input shape "
            f"{tuple(shape)}")


# --------------------------------------------------------------------------- #
# output-allocation accounting
# --------------------------------------------------------------------------- #
_OUTPUT_ALLOCATIONS = 0


def record_output_allocation(count: int = 1) -> None:
    """Note that a kernel allocated the output array it returned."""
    global _OUTPUT_ALLOCATIONS
    _OUTPUT_ALLOCATIONS += count


def output_allocation_count() -> int:
    """Process-lifetime count of kernel output allocations."""
    return _OUTPUT_ALLOCATIONS


def reset_output_allocations() -> None:
    """Reset the counter (benchmarks scope their steady-state windows)."""
    global _OUTPUT_ALLOCATIONS
    _OUTPUT_ALLOCATIONS = 0
