"""Multi-worker Softermax backend: row blocks fanned out over processes.

The blocked kernel removes the allocation/bandwidth overhead of the fused
whole-tensor path but still runs on one core.  This backend completes the
engine for the huge-tensor regime: the flattened row view is split into
contiguous row ranges and dispatched to a persistent ``multiprocessing``
pool, with the input and output living in POSIX shared memory so no tensor
data ever travels through pickling -- workers read their rows in place and
write their probabilities in place.

Design points:

* **LUTs are built once per worker.**  The pool initializer constructs a
  :class:`~repro.kernels.blocked.BlockedSoftermaxKernel` (which builds or
  inherits the fused kernel's tables) before the first task arrives; tasks
  carry only shared-memory names and row ranges.
* **Bitwise equivalence is structural.**  Rows are independent and every
  worker runs the same blocked engine, so the multi-worker result is the
  blocked result, which is the oracle result.  The equivalence suite pins
  the worker path (including ``workers > rows``) against the oracle.
* **Graceful degradation.**  With one worker, fewer than two rows, or an
  operating point too wide to tabulate, the call runs the in-process
  blocked engine -- same bits, no IPC.

The pool is created lazily on the first parallel call and reused for the
kernel's lifetime (workers are daemonic, so they never outlive the parent).
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
from functools import lru_cache
from multiprocessing import shared_memory
from typing import Optional

import numpy as np

from repro.core.config import SoftermaxConfig, DEFAULT_CONFIG
from repro.core.softermax import SoftermaxResult
from repro.kernels.blocked import BlockedSoftermaxKernel
from repro.kernels.shm import attach_shared_memory
from repro.kernels.workspace import (
    KernelWorkspace,
    check_out_buffer,
    record_output_allocation,
)

#: Fallback worker count when ``workers`` is not given.
DEFAULT_WORKERS = os.cpu_count() or 1

# ------------------------------------------------------------------------- #
# worker side
# ------------------------------------------------------------------------- #
_WORKER_KERNEL: Optional[BlockedSoftermaxKernel] = None


def _init_worker(config, block_rows, lpw_method) -> None:
    """Pool initializer: build the blocked engine (and its LUTs) once."""
    global _WORKER_KERNEL
    _WORKER_KERNEL = BlockedSoftermaxKernel(config, block_rows=block_rows,
                                            lpw_method=lpw_method)


def _attach(name: str) -> shared_memory.SharedMemory:
    # Attach without ownership; under spawn the helper unregisters the
    # segment from the child's resource tracker so child exit cannot
    # unlink the parent's segment (see repro.kernels.shm).
    return attach_shared_memory(name)


def _run_rows(task) -> int:
    """Process one contiguous row range of the shared input in place."""
    in_name, out_name, rows, length, start, stop = task
    shm_in = _attach(in_name)
    shm_out = _attach(out_name)
    try:
        x = np.ndarray((rows, length), dtype=np.float64, buffer=shm_in.buf)
        out = np.ndarray((rows, length), dtype=np.float64, buffer=shm_out.buf)
        _WORKER_KERNEL.forward_rows_into(x[start:stop], out[start:stop])
    finally:
        shm_in.close()
        shm_out.close()
    return stop - start


# ------------------------------------------------------------------------- #
# parent side
# ------------------------------------------------------------------------- #
#: Pools owned by this process, as ``(owner_pid, pool)``.  The pid matters:
#: after ``os.fork()`` the child inherits this list, but the worker
#: processes belong to the parent -- terminating them from the child would
#: kill the parent's pool out from under it.
_LIVE_POOLS = []


def _shutdown_pools() -> None:  # pragma: no cover - exit-time housekeeping
    pid = os.getpid()
    for owner_pid, pool in _LIVE_POOLS:
        if owner_pid != pid:
            continue
        try:
            pool.terminate()
        except Exception:
            pass
    _LIVE_POOLS.clear()


atexit.register(_shutdown_pools)


class ParallelSoftermaxKernel:
    """Softermax fanned out over a worker pool via shared memory.

    Parameters
    ----------
    config:
        Operating point; must match the pipeline being replaced.
    workers:
        Worker process count; ``None`` means ``os.cpu_count()``.  Worker
        counts above the row count simply leave the surplus workers idle.
    block_rows:
        Forwarded to each worker's blocked engine (``None`` = adaptive).
    lpw_method:
        LPW table construction method (forwarded to the blocked engine).
    """

    def __init__(
        self,
        config: SoftermaxConfig | None = None,
        workers: Optional[int] = None,
        block_rows: Optional[int] = None,
        lpw_method: str = "endpoint",
    ) -> None:
        workers = DEFAULT_WORKERS if workers is None else int(workers)
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.config = config or DEFAULT_CONFIG
        self.workers = workers
        self.block_rows = block_rows
        self.lpw_method = lpw_method
        # In-process engine: the single-worker/few-rows fast path, and the
        # provider of `.run` intermediates (gathering every intermediate
        # across processes would move far more data than the compute saves).
        self.blocked = BlockedSoftermaxKernel(self.config,
                                              block_rows=block_rows,
                                              lpw_method=lpw_method)
        self._pool = None
        self._pool_pid = None

    # ------------------------------------------------------------------ #
    def __call__(self, x: np.ndarray, axis: int = -1,
                 out: Optional[np.ndarray] = None,
                 scratch: Optional[KernelWorkspace] = None) -> np.ndarray:
        """Apply Softermax along ``axis`` and return the probabilities.

        ``out``/``scratch`` follow the registry's workspace-aware kernel
        contract; on the worker-pool path the shared-memory result is
        copied straight into ``out`` (the scratch workspace only feeds the
        in-process fallback -- workers own their scratch).
        """
        x = np.asarray(x, dtype=np.float64)
        check_out_buffer(out, x.shape)
        moved = x if (axis == -1 or axis == x.ndim - 1) \
            else np.moveaxis(x, axis, -1)
        length = moved.shape[-1] if moved.ndim else 0
        if length == 0:
            raise ValueError("softermax requires a non-empty reduction axis")
        lead = moved.shape[:-1]
        rows = int(np.prod(lead)) if lead else 1
        inplace = out is not None and moved is x and out.flags.c_contiguous
        if (self.workers <= 1 or rows < 2
                or self.blocked.fused._lut_codes is None):
            output = self.blocked(moved, axis=-1,
                                  out=out if inplace else None,
                                  scratch=scratch)
        else:
            out2 = self._dispatch(
                np.ascontiguousarray(moved.reshape(rows, length)),
                out2=out.reshape(rows, length) if inplace else None)
            output = out if inplace else out2.reshape(lead + (length,))
        if moved is not x:
            output = np.moveaxis(output, -1, axis)
        if out is not None and not inplace:
            np.copyto(out, output)
            output = out
        return output

    def run(self, x: np.ndarray, axis: int = -1) -> SoftermaxResult:
        """Run with every intermediate signal (computed in process)."""
        return self.blocked.run(x, axis=axis)

    def close(self) -> None:
        """Terminate the worker pool (idempotent, fork-safe)."""
        if self._pool is not None:
            pool, self._pool = self._pool, None
            owner_pid, self._pool_pid = self._pool_pid, None
            entry = (owner_pid, pool)
            if entry in _LIVE_POOLS:
                _LIVE_POOLS.remove(entry)
            if owner_pid != os.getpid():
                # Inherited across fork: the worker processes belong to the
                # parent, so the child must only drop its handle.
                return
            pool.terminate()
            pool.join()

    def __del__(self):  # pragma: no cover - interpreter-exit ordering
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    def _ensure_pool(self):
        if self._pool is not None and self._pool_pid != os.getpid():
            # Pool handle inherited across os.fork(): its processes and
            # queues live in the parent, so using (or terminating) them here
            # would corrupt the parent's pool.  Drop the handle and build a
            # pool of our own.
            self.close()
        if self._pool is None:
            ctx = multiprocessing.get_context()
            self._pool = ctx.Pool(
                processes=self.workers,
                initializer=_init_worker,
                initargs=(self.config, self.block_rows, self.lpw_method),
            )
            self._pool_pid = os.getpid()
            _LIVE_POOLS.append((self._pool_pid, self._pool))
        return self._pool

    def _dispatch(self, x2: np.ndarray,
                  out2: Optional[np.ndarray] = None) -> np.ndarray:
        rows, length = x2.shape
        nbytes = x2.nbytes
        shm_in = shared_memory.SharedMemory(create=True, size=nbytes)
        shm_out = shared_memory.SharedMemory(create=True, size=nbytes)
        try:
            np.copyto(np.ndarray((rows, length), dtype=np.float64,
                                 buffer=shm_in.buf), x2)
            nw = min(self.workers, rows)
            # repro: allow(R1): O(workers) shard boundaries
            bounds = np.linspace(0, rows, nw + 1).astype(int)
            tasks = [(shm_in.name, shm_out.name, rows, length,
                      int(bounds[i]), int(bounds[i + 1]))
                     for i in range(nw) if bounds[i] < bounds[i + 1]]
            try:
                self._ensure_pool().map(_run_rows, tasks, chunksize=1)
            except Exception:
                # A worker failure (crashed process, poisoned task, a pool
                # terminated behind our back) must not leave the memoized
                # kernel holding a broken pool.  Tear it down, rebuild it
                # once, and if the fresh pool fails too fall back to the
                # in-process blocked engine -- same bits, no IPC.
                self.close()
                try:
                    self._ensure_pool().map(_run_rows, tasks, chunksize=1)
                except Exception:
                    self.close()
                    if out2 is None:
                        out2 = np.empty((rows, length), dtype=np.float64)
                        record_output_allocation()
                    self.blocked.forward_rows_into(x2, out2)
                    return out2
            # Copy out before the segment is unlinked.
            shared = np.ndarray((rows, length), dtype=np.float64,
                                buffer=shm_out.buf)
            if out2 is None:
                out2 = np.array(shared)
                record_output_allocation()
            else:
                np.copyto(out2, shared)
        finally:
            shm_in.close()
            shm_in.unlink()
            shm_out.close()
            shm_out.unlink()
        return out2


@lru_cache(maxsize=None)
def _get_parallel_kernel(config: SoftermaxConfig, workers: int,
                         block_rows: Optional[int],
                         lpw_method: str) -> ParallelSoftermaxKernel:
    return ParallelSoftermaxKernel(config, workers=workers,
                                   block_rows=block_rows,
                                   lpw_method=lpw_method)


def get_parallel_kernel(config: SoftermaxConfig | None = None,
                        workers: Optional[int] = None,
                        block_rows: Optional[int] = None,
                        lpw_method: str = "endpoint") -> ParallelSoftermaxKernel:
    """Memoized kernel factory: one pool per (config, workers, block_rows).

    Arguments are normalized before the cache key (``config=None`` ->
    :data:`DEFAULT_CONFIG`, ``workers=None`` -> :data:`DEFAULT_WORKERS`) so
    spelling the default explicitly cannot create a second kernel -- and a
    second worker pool -- for the same effective configuration.
    """
    workers = DEFAULT_WORKERS if workers is None else int(workers)
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return _get_parallel_kernel(config or DEFAULT_CONFIG, workers,
                                block_rows, lpw_method)


def parallel_softermax(
    x: np.ndarray,
    axis: int = -1,
    config: SoftermaxConfig | None = None,
    workers: Optional[int] = None,
    block_rows: Optional[int] = None,
    out: Optional[np.ndarray] = None,
    scratch: Optional[KernelWorkspace] = None,
) -> np.ndarray:
    """Drop-in multi-worker Softermax over ``axis`` (bitwise-identical)."""
    return get_parallel_kernel(config, workers, block_rows)(x, axis=axis,
                                                            out=out,
                                                            scratch=scratch)
