"""Blocked streaming Softermax kernel for the bandwidth-bound regime.

The fused kernel (:mod:`repro.kernels.fused`) wins an order of magnitude on
small row batches, but in the huge-tensor regime (large batch x heads x
sequence) it materializes several whole-tensor intermediates -- the float
quantization buffer, the gather index, the unnormalized codes, the product
-- each of which is written and re-read through main memory.  At that point
the kernel is bandwidth-bound: most of the wall clock is page faults on
fresh multi-megabyte allocations and cache misses on full-tensor passes.

This module exploits the property the Softermax paper is built on: online
(slice-wise) normalization makes the softmax *streamable*, so rows can be
processed in cache-sized blocks with O(block) working state.  The blocked
kernel

* flattens the input to a 2-D row view and walks it in row blocks sized so
  the whole per-block working set (quantization buffer, gather index,
  unnormalized codes, product) stays resident in cache;
* keeps every per-block intermediate in **preallocated scratch buffers**
  that are reused across blocks and across calls -- the only per-call
  allocation of consequence is the output tensor itself;
* reuses the fused kernel's tables (difference LUT, reciprocal LUT, output
  value table) and its bit-accurate helper stages, so equivalence with the
  :class:`~repro.core.softermax.SoftermaxPipeline` oracle is inherited, not
  re-derived: every row is processed by exactly the arithmetic the fused
  kernel would apply, just restricted to a block.

Row blocks are free to cut anywhere (rows are independent), so block
boundaries need no alignment with the hardware slice width along the
reduction axis -- the slice structure within each row is untouched.  The
equivalence suite pins the blocked kernel to the oracle across unaligned
block sizes, single-row blocks and every operating point.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.core.config import SoftermaxConfig, DEFAULT_CONFIG
from repro.core.softermax import SoftermaxIntermediates, SoftermaxResult
from repro.fixedpoint import RoundingMode, quantize
from repro.kernels.fused import _clip, get_fused_kernel, narrowest_int_dtype
from repro.kernels.workspace import (
    KernelWorkspace,
    check_out_buffer,
    record_output_allocation,
)

#: Target per-block working-set size in bytes.  The scratch set costs about
#: 8 (quantization buffer) + 2-4 (gather index) + 4-8 (unnormed codes) +
#: 4-8 (product) bytes per element; 8 MiB keeps a block inside a typical
#: last-level cache while amortizing the per-block Python/merge overhead
#: (smaller blocks pay the slice recurrence once per block).
TARGET_BLOCK_BYTES = 8 << 20

#: Hard bounds on the adaptive block size (rows).
MIN_BLOCK_ROWS = 1
MAX_BLOCK_ROWS = 512


class BlockedSoftermaxKernel:
    """Row-blocked Softermax, bitwise-identical to the slice-loop pipeline.

    Parameters
    ----------
    config:
        Operating point; must match the pipeline being replaced.
    block_rows:
        Rows per block.  ``None`` (the default) sizes blocks adaptively so
        the per-block scratch working set targets :data:`TARGET_BLOCK_BYTES`.
        Any positive value is legal -- blocks need not divide the row count
        and need no relationship to the hardware slice width.
    lpw_method:
        LPW table construction method (forwarded to the fused kernel whose
        tables are shared).
    """

    def __init__(
        self,
        config: SoftermaxConfig | None = None,
        block_rows: Optional[int] = None,
        lpw_method: str = "endpoint",
    ) -> None:
        if block_rows is not None and block_rows < 1:
            raise ValueError("block_rows must be >= 1")
        self.config = config or DEFAULT_CONFIG
        self.block_rows = block_rows
        self.lpw_method = lpw_method
        self.fused = get_fused_kernel(self.config, lpw_method=lpw_method)
        # Input codes live in the narrowest dtype that also holds the
        # integer-max requantization arithmetic (ceil/shift) without
        # overflow -- int16 at the paper's operating point, halving the
        # traffic of the max/gather-index passes.
        cfg = self.config
        fi, fm = cfg.input_fmt.frac_bits, cfg.max_fmt.frac_bits
        hi = max(cfg.input_fmt.max_code + (1 << fi),
                 ((cfg.input_fmt.max_code >> fi) + 1) << fm,
                 cfg.input_fmt.max_code << max(fm - fi, 0))
        lo = min(cfg.input_fmt.min_code, (cfg.input_fmt.min_code >> fi) << fm)
        self._icode_dtype = narrowest_int_dtype(lo, hi)
        # The unnormalized codes fit uint16 at the paper's operating point
        # (max code 2**15); keeping a narrow copy of the difference LUT
        # halves the traffic of the gather/sum/shift passes.
        f = self.fused
        if f._lut_codes is not None:
            lut_max = int(f._lut_codes.max(initial=0))
            self._ucode_dtype = np.uint16 if lut_max <= np.iinfo(np.uint16).max \
                else f._work_dtype
            self._lut = f._lut_codes.astype(self._ucode_dtype)
            # Slice sums (online) / row sums (explicit max) are bounded by
            # the element count times the largest unnormed code.
            self._sum_bound_per_element = max(lut_max, 1)
        else:
            self._ucode_dtype = None
            self._lut = None
        # Built-in scratch workspace (flat buffers, viewed per block):
        # grown monotonically so repeated calls on the same shapes allocate
        # nothing but the output.  A caller-owned workspace passed via
        # ``scratch=`` replaces it for that call (the arena-backed serving
        # path), sharing one scratch set across every engine.
        self._workspace = KernelWorkspace()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def __call__(self, x: np.ndarray, axis: int = -1,
                 out: Optional[np.ndarray] = None,
                 scratch: Optional[KernelWorkspace] = None) -> np.ndarray:
        """Apply Softermax along ``axis`` and return the probabilities.

        ``out``/``scratch`` follow the registry's workspace-aware kernel
        contract: ``out`` (float64, ``x``'s shape) receives the result in
        place, ``scratch`` replaces the kernel's built-in workspace.
        """
        x = np.asarray(x, dtype=np.float64)
        check_out_buffer(out, x.shape)
        last_axis = axis == -1 or axis == x.ndim - 1
        if last_axis and (out is None or out.flags.c_contiguous):
            output, _ = self._forward(x, want_intermediates=False, out=out,
                                      ws=scratch)
            return output
        moved = x if last_axis else np.moveaxis(x, axis, -1)
        output, _ = self._forward(moved, want_intermediates=False, ws=scratch)
        if not last_axis:
            output = np.moveaxis(output, -1, axis)
        if out is None:
            return output
        np.copyto(out, output)
        return out

    def run(self, x: np.ndarray, axis: int = -1) -> SoftermaxResult:
        """Run the blocked kernel, retaining every intermediate signal."""
        moved = np.moveaxis(np.asarray(x, dtype=np.float64), axis, -1)
        _, result = self._forward(moved, want_intermediates=True)
        return result

    def forward_rows_into(self, rows: np.ndarray, out: np.ndarray,
                          scratch: Optional[KernelWorkspace] = None) -> None:
        """Process a 2-D row batch, writing probabilities in place.

        This is the entry point the multi-worker backend uses: ``rows`` and
        ``out`` are views into shared memory, so the result never travels
        through pickling.
        """
        if rows.ndim != 2 or rows.shape != out.shape:
            raise ValueError("forward_rows_into expects matching 2-D arrays")
        if self.fused._lut_codes is None:
            out[...], _ = self.fused._forward_float(rows, False)
            return
        self._forward_rows(rows, out, None, scratch)

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #
    def _forward(self, moved: np.ndarray, want_intermediates: bool,
                 out: Optional[np.ndarray] = None,
                 ws: Optional[KernelWorkspace] = None):
        length = moved.shape[-1]
        if length == 0:
            raise ValueError("softermax requires a non-empty reduction axis")
        if moved.ndim == 1:
            inner_out = None if out is None else out[None, :]
            output, result = self._forward(moved[None, :], want_intermediates,
                                           out=inner_out, ws=ws)
            output = out if out is not None else np.squeeze(output, axis=0)
            if result is not None:
                i = result.intermediates
                result = SoftermaxResult(SoftermaxIntermediates(
                    *(np.squeeze(a, axis=0) for a in (
                        i.quantized_input, i.slice_maxes, i.unnormed,
                        i.global_max, i.denominator, i.reciprocal, i.output))
                ))
            return output, result
        if self.fused._lut_codes is None:
            # Exotic operating point (diff LUT too large): the fused float
            # path is already whole-tensor; blocking adds nothing.
            return self.fused._forward(moved, want_intermediates, out=out)

        lead = moved.shape[:-1]
        rows = int(np.prod(lead))
        x2 = moved.reshape(rows, length)
        if out is not None:
            out2 = out.reshape(rows, length)
        else:
            out2 = np.empty((rows, length), dtype=np.float64)
            record_output_allocation()

        slabs = None
        if want_intermediates:
            width = self.config.slice_width
            num_slices = (length + width - 1) // width
            slabs = {
                "quantized_input": np.empty((rows, length)),
                "slice_maxes": np.empty((rows, num_slices)),
                "unnormed": np.empty((rows, length)),
                "global_max": np.empty(rows),
                "denominator": np.empty(rows),
                "reciprocal": np.empty(rows),
            }
        self._forward_rows(x2, out2, slabs, ws)

        output = out if out is not None else out2.reshape(lead + (length,))
        if not want_intermediates:
            return output, None
        intermediates = SoftermaxIntermediates(
            quantized_input=slabs["quantized_input"].reshape(lead + (length,)),
            slice_maxes=slabs["slice_maxes"].reshape(
                lead + (slabs["slice_maxes"].shape[-1],)),
            unnormed=slabs["unnormed"].reshape(lead + (length,)),
            global_max=slabs["global_max"].reshape(lead),
            denominator=slabs["denominator"].reshape(lead),
            reciprocal=slabs["reciprocal"].reshape(lead),
            output=output,
        )
        return output, SoftermaxResult(intermediates)

    def effective_block_rows(self, length: int) -> int:
        """Rows per block for reduction length ``length``."""
        if self.block_rows is not None:
            return int(self.block_rows)
        cfg = self.config
        width = cfg.slice_width
        padded = ((length + width - 1) // width) * width
        f = self.fused
        per_row = padded * (8 + f._idx_dtype().itemsize
                            + np.dtype(self._icode_dtype).itemsize
                            + np.dtype(self._ucode_dtype).itemsize
                            + np.dtype(f._work_dtype).itemsize)
        block = TARGET_BLOCK_BYTES // max(per_row, 1)
        return int(min(max(block, MIN_BLOCK_ROWS), MAX_BLOCK_ROWS))

    def _take_scratch(self, ws: KernelWorkspace, flat: int):
        """The per-block scratch set, drawn from ``ws`` (grown, reused)."""
        f = self.fused
        return (ws.take("blocked.buf", flat, np.float64),
                ws.take("blocked.icodes", flat, self._icode_dtype),
                ws.take("blocked.idx", flat, f._idx_dtype),
                ws.take("blocked.ucodes", flat, self._ucode_dtype),
                ws.take("blocked.prod", flat, f._work_dtype))

    def _forward_rows(self, x2: np.ndarray, out2: np.ndarray, slabs,
                      ws: Optional[KernelWorkspace] = None) -> None:
        cfg = self.config
        f = self.fused
        rows, length = x2.shape
        width = cfg.slice_width
        num_slices = (length + width - 1) // width
        padded_len = num_slices * width
        block = self.effective_block_rows(length)
        flat = block * padded_len
        ws = ws if ws is not None else self._workspace
        s_buf, s_icodes, s_idx, s_ucodes, s_prod = self._take_scratch(ws, flat)

        in_fmt = cfg.input_fmt
        if padded_len != length:
            # Padding columns of the int-code view are constant across
            # blocks; fill them once per call (the region is at most one
            # slice wide, a negligible write next to the quantize pass).
            s_icodes.reshape(block, padded_len)[:, length:] = in_fmt.min_code
        for r0 in range(0, rows, block):
            b = min(block, rows - r0)
            n = b * padded_len

            # --- quantize straight to int codes, in scratch ------------- #
            # clip-then-floor equals the pipeline's floor-then-clip (the
            # bounds are integers), and the floor ufunc casts straight into
            # the int scratch -- one fewer full pass than floor/clip/astype.
            buf = s_buf[:n].reshape(b, padded_len)[:, :length]
            np.multiply(x2[r0:r0 + b], 1.0 / f._in_res, out=buf)
            buf += 0.5
            _clip(buf, in_fmt.min_code, in_fmt.max_code, buf)
            icodes = s_icodes[:flat].reshape(block, padded_len)[:b]
            np.floor(buf, out=icodes[:, :length], casting="unsafe")
            tiles = icodes.reshape(b, num_slices, width)

            # --- per-slice maxima --------------------------------------- #
            slice_mc = tiles.max(axis=-1)
            if cfg.use_online_normalization:
                mcq = f._quantize_max_codes(slice_mc)
                slice_max_f = mcq * f._max_res
                ref_mcq = mcq
            else:
                mcq_g = f._quantize_max_codes(slice_mc.max(axis=-1))
                global_max = mcq_g * f._max_res
                slice_max_f = np.ascontiguousarray(
                    np.broadcast_to(global_max[:, None], (b, num_slices)))
                ref_mcq = mcq_g[:, None]

            # --- unnormalized exponentials: gather into scratch --------- #
            if f._max_scale == 1:
                offset = ref_mcq + f._lo_code
            else:
                offset = ref_mcq * f._max_scale + f._lo_code
            off = offset[..., :, None] if cfg.use_online_normalization \
                else offset[..., None]
            idx = s_idx[:n].reshape(b, num_slices, width)
            if f._in_scale == 1:
                np.subtract(tiles, off, out=idx, casting="unsafe")
            else:
                np.multiply(tiles, f._in_scale, out=idx, casting="unsafe")
                np.subtract(idx, off, out=idx, casting="unsafe")
            ucodes = s_ucodes[:n].reshape(b, num_slices, width)
            self._lut.take(idx, out=ucodes, mode="clip")
            if padded_len != length:
                ucodes.reshape(b, padded_len)[:, length:] = 0

            # --- denominator -------------------------------------------- #
            # Sums accumulate exactly in the narrowest dtype that holds the
            # worst case (element count x largest unnormed code).
            if cfg.use_online_normalization:
                sum_dtype = (np.int32 if width * self._sum_bound_per_element
                             < 2**31 else np.int64)
                sum_codes = f._quantize_sum_codes(
                    ucodes.sum(axis=-1, dtype=sum_dtype))
                running_max, rs = f._online_merge(slice_max_f, sum_codes)
                # repro: allow(R1): O(rows) sum-code cast, not O(rows*len)
                rs_codes = rs.astype(np.int64)
            else:
                running_max = global_max
                sum_dtype = (np.int32 if padded_len * self._sum_bound_per_element
                             < 2**31 else np.int64)
                # repro: allow(R1): O(rows) sum-code cast, not O(rows*len)
                rs_codes = f._quantize_sum_codes(
                    ucodes.sum(axis=(-2, -1), dtype=sum_dtype)).astype(np.int64)
            running_sum = rs_codes * f._sum_res
            if f._recip_values is not None:
                reciprocal = f._recip_values.take(rs_codes)
            else:
                reciprocal = f.reciprocal_unit(running_sum)

            # --- renormalize and divide, into the output slab ----------- #
            shift_exp = slice_max_f - running_max[:, None]
            ufloat = self._normalize_into(
                ucodes, shift_exp, reciprocal, out2[r0:r0 + b],
                length, want_unnormed=slabs is not None, prod_scratch=s_prod)

            if slabs is not None:
                slabs["quantized_input"][r0:r0 + b] = icodes[:, :length]
                slabs["quantized_input"][r0:r0 + b] *= f._in_res
                slabs["slice_maxes"][r0:r0 + b] = slice_max_f
                slabs["unnormed"][r0:r0 + b] = \
                    ufloat.reshape(b, padded_len)[:, :length]
                slabs["global_max"][r0:r0 + b] = running_max
                slabs["denominator"][r0:r0 + b] = running_sum
                slabs["reciprocal"][r0:r0 + b] = reciprocal

    def _normalize_into(self, ucodes, shift_exp, reciprocal, outblk, length,
                        want_unnormed: bool, prod_scratch):
        """The fused back end, writing into a preallocated output block."""
        cfg = self.config
        f = self.fused
        b, num_slices, width = ucodes.shape
        padded_len = num_slices * width
        ufloat = ucodes * f._un_res if want_unnormed else None
        integer_shifts = bool(np.all(shift_exp == np.floor(shift_exp)))
        if not integer_shifts:
            # Rare path (a maximum saturated at the max_fmt ceiling): the
            # pipeline's elementwise float expression, block-sized.
            if ufloat is None:
                ufloat = ucodes * f._un_res
            shift = np.power(2.0, shift_exp)
            renormed = quantize(ufloat * shift[..., None], cfg.unnormed_fmt,
                                RoundingMode.FLOOR)
            out = quantize(renormed * reciprocal[..., None, None],
                           cfg.output_fmt, RoundingMode.NEAREST)
            outblk[...] = out.reshape(b, padded_len)[:, :length]
            return ufloat

        # repro: allow(R1): O(rows) shift-count cast
        k = np.minimum(-shift_exp, float(f._max_shift)).astype(f._work_dtype)
        # repro: allow(R1): O(rows) reciprocal-code cast
        recip_codes = np.rint(reciprocal / f._recip_res).astype(f._work_dtype)
        prod = prod_scratch[:b * padded_len].reshape(b, num_slices, width)
        if k.any():
            np.right_shift(ucodes, k[..., None], out=prod)
            prod *= recip_codes[..., None, None]
        else:
            np.multiply(ucodes, recip_codes[..., None, None], out=prod)
        out_shift = (cfg.unnormed_fmt.frac_bits + cfg.recip_fmt.frac_bits
                     - cfg.output_fmt.frac_bits)
        if out_shift > 0:
            prod += 1 << (out_shift - 1)
            prod >>= out_shift
        else:
            prod <<= -out_shift
        _clip(prod, cfg.output_fmt.min_code, cfg.output_fmt.max_code, prod)
        codes = prod.reshape(b, padded_len)[:, :length]
        if f._out_values is not None:
            f._out_values.take(codes, out=outblk)
        else:
            outblk[...] = codes
            outblk *= f._out_res
        return ufloat


@lru_cache(maxsize=None)
def get_blocked_kernel(config: SoftermaxConfig | None = None,
                       block_rows: Optional[int] = None,
                       lpw_method: str = "endpoint") -> BlockedSoftermaxKernel:
    """Memoized kernel factory: one kernel (and scratch set) per signature."""
    return BlockedSoftermaxKernel(config or DEFAULT_CONFIG,
                                  block_rows=block_rows,
                                  lpw_method=lpw_method)


def blocked_softermax(
    x: np.ndarray,
    axis: int = -1,
    config: SoftermaxConfig | None = None,
    block_rows: Optional[int] = None,
    out: Optional[np.ndarray] = None,
    scratch: Optional[KernelWorkspace] = None,
) -> np.ndarray:
    """Drop-in blocked Softermax over ``axis`` (bitwise-identical, streaming)."""
    return get_blocked_kernel(config, block_rows)(x, axis=axis, out=out,
                                                  scratch=scratch)
