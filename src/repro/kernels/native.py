"""Compiled Softermax engine (`softermax-native`).

Python wrapper around the C extension
:mod:`repro.kernels._native._softermax`, which runs the fused kernel's
integer-code pipeline -- quantize, slice maxima, pow2 difference-LUT
gather, online-normalization merge, reciprocal multiply, output
quantization -- as one C pass per row with no NumPy ufunc dispatch.

The wrapper owns everything the C loop must not: table construction is
borrowed from the memoized :class:`~repro.kernels.fused.FusedSoftermaxKernel`
(so the LUT, reciprocal table and output-value table are the bit-accurate
units' own output), axis handling / `out=` / `scratch=` follow the
registry's workspace-aware kernel contract, and every case the integer
C path cannot express bitwise is routed to the fused kernel instead:

* the extension is not importable (no compiler, wheel-less install) or
  disabled via ``REPRO_DISABLE_NATIVE=1`` -- the engine is then not
  registered at all and ``softermax-adaptive`` never selects it;
* the operating point is outside the integer fast path (no difference
  LUT, no online normalization, float maxima, untabulated reciprocal or
  signed output format) -- the kernel permanently delegates to fused;
* a saturated maximum makes a renormalization shift non-integral -- the
  C loop detects this up front and reports it, and the call is re-run
  through the fused kernel (which takes its float back end, bitwise
  vs the oracle by construction).

Non-contiguous / non-last-axis inputs are staged into workspace scratch
(copy-in), so strided attention-score views work unchanged.  Bitwise
equivalence is pinned by ``tests/kernels/test_equivalence.py`` through
the registry's ``runner_factory`` mechanism, like every other engine.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

import numpy as np

from repro.core.config import SoftermaxConfig, DEFAULT_CONFIG
from repro.core.softermax import SoftermaxResult
from repro.kernels.fused import FusedSoftermaxKernel, get_fused_kernel
from repro.kernels.workspace import (
    KernelWorkspace,
    check_out_buffer,
    record_output_allocation,
)

try:
    from repro.kernels._native import lib as _lib
except ImportError:  # pragma: no cover - package layout is fixed
    _lib = None


def native_available() -> bool:
    """True when the compiled extension is importable and not disabled."""
    return _lib is not None


# Parameter-block layout; must match the P_* enum in _softermaxmodule.c.
_P_COUNT = 17


class NativeSoftermaxKernel:
    """Workspace-aware `fn(x, axis=-1, out=None, scratch=None)` C engine.

    Bitwise-identical to :class:`FusedSoftermaxKernel` (hence to the
    slice-loop oracle) on every input: eligible operating points run the
    compiled row loop, everything else delegates to the fused kernel.
    """

    def __init__(self, config: Optional[SoftermaxConfig] = None,
                 lpw_method: str = "endpoint") -> None:
        self.config = config or DEFAULT_CONFIG
        self.lpw_method = lpw_method
        self._fused: FusedSoftermaxKernel = get_fused_kernel(
            self.config, lpw_method)
        self.native_supported = bool(
            _lib is not None
            and self._fused._lut_codes is not None
            and self._fused._recip_values is not None
            and self._fused._out_values is not None
            and self.config.use_online_normalization
            and self.config.use_integer_max
        )
        if self.native_supported:
            self._build_tables()

    def _build_tables(self) -> None:
        fused, cfg = self._fused, self.config
        self._lut = np.ascontiguousarray(fused._lut_codes, dtype=np.int64)
        # Denominator code -> reciprocal *code*: the fused kernel gathers
        # the reciprocal value and re-derives the code per call; indexing
        # the pre-divided table yields the identical integers.
        self._recip_codes = np.ascontiguousarray(
            np.rint(fused._recip_values / fused._recip_res), dtype=np.int64)
        self._out_table = np.ascontiguousarray(fused._out_values,
                                               dtype=np.float64)
        self._inv_in_res = 1.0 / fused._in_res
        self._params = np.asarray(self._pack_params(), dtype=np.int64)
        assert self._params.size == _P_COUNT

    def _pack_params(self) -> list:
        """Integer parameter block for the C loop (P_* enum order)."""
        fused, cfg = self._fused, self.config
        return [
            cfg.slice_width,
            cfg.input_fmt.min_code, cfg.input_fmt.max_code,
            cfg.input_fmt.frac_bits, cfg.max_fmt.frac_bits,
            cfg.max_fmt.min_code, cfg.max_fmt.max_code,
            fused._in_scale, fused._max_scale, fused._lo_code,
            cfg.unnormed_fmt.frac_bits - cfg.sum_fmt.frac_bits,
            cfg.sum_fmt.min_code, cfg.sum_fmt.max_code,
            (cfg.unnormed_fmt.frac_bits + cfg.recip_fmt.frac_bits
             - cfg.output_fmt.frac_bits),
            cfg.output_fmt.min_code, cfg.output_fmt.max_code,
            fused._max_shift,
        ]

    @staticmethod
    def _take(ws: Optional[KernelWorkspace], key: str, shape, dtype):
        """Scratch array of ``shape``: workspace-backed or freshly allocated."""
        if ws is None:
            return np.empty(shape, dtype=dtype)
        return ws.take_shaped(key, shape, dtype)

    def __call__(self, x: np.ndarray, axis: int = -1,
                 out: Optional[np.ndarray] = None,
                 scratch: Optional[KernelWorkspace] = None) -> np.ndarray:
        """Apply Softermax along ``axis`` and return the probabilities.

        Same contract and bits as ``FusedSoftermaxKernel.__call__``; the
        compiled row loop serves eligible calls, the fused kernel the rest.
        """
        x = np.asarray(x, dtype=np.float64)
        check_out_buffer(out, x.shape)
        if not self.native_supported:
            return self._fused(x, axis=axis, out=out, scratch=scratch)

        last_axis = axis == -1 or axis == x.ndim - 1
        moved = x if last_axis else np.moveaxis(x, axis, -1)
        length = moved.shape[-1]
        if length == 0:
            raise ValueError("softermax requires a non-empty reduction axis")
        if not moved.flags.c_contiguous:
            staged = self._take(scratch, "native.x", moved.shape, np.float64)
            np.copyto(staged, moved)
            moved = staged

        direct = (out is not None and last_axis and out.flags.c_contiguous)
        if direct:
            dest = out
        elif out is None:
            dest = np.empty(moved.shape, dtype=np.float64)
        else:
            dest = self._take(scratch, "native.out", moved.shape, np.float64)

        width = self.config.slice_width
        num_slices = (length + width - 1) // width
        ucodes = self._take(scratch, "native.ucodes",
                            (num_slices * width,), np.int64)
        slices = self._take(scratch, "native.slices",
                            (3 * num_slices,), np.int64)
        rc = _lib.forward(moved.reshape(-1, length),
                          dest.reshape(-1, length),
                          self._lut, self._recip_codes, self._out_table,
                          ucodes, slices, self._params, self._inv_in_res)
        if rc != 0:
            # Saturated maximum -> non-integral renormalization shift: the
            # integer path cannot be bitwise, so the fused kernel answers
            # (its float back end, identical to the oracle by construction).
            return self._fused(x, axis=axis, out=out, scratch=scratch)

        if direct:
            return out
        result = dest if last_axis else np.moveaxis(dest, -1, axis)
        if out is None:
            record_output_allocation()
            return result
        np.copyto(out, result)
        return out

    def run(self, x: np.ndarray, axis: int = -1) -> SoftermaxResult:
        """Full-intermediate run (equivalence-suite surface).

        Intermediates come from the fused kernel -- the same tables and
        the same integer pipeline the C loop mirrors -- while ``__call__``
        output is pinned natively by the same suite.
        """
        return self._fused.run(x, axis=axis)


@lru_cache(maxsize=None)
def get_native_kernel(config: Optional[SoftermaxConfig] = None,
                      lpw_method: str = "endpoint") -> NativeSoftermaxKernel:
    """Memoized kernel factory: one kernel (and table set) per config."""
    return NativeSoftermaxKernel(config or DEFAULT_CONFIG,
                                 lpw_method=lpw_method)


def native_softermax(
    x: np.ndarray,
    axis: int = -1,
    config: Optional[SoftermaxConfig] = None,
    out: Optional[np.ndarray] = None,
    scratch: Optional[KernelWorkspace] = None,
) -> np.ndarray:
    """Drop-in compiled Softermax over ``axis`` (falls back to fused).

    Bitwise-identical to the slice-loop reference; see the module
    docstring for the delegation rules when the extension is absent.
    """
    return get_native_kernel(config)(x, axis=axis, out=out, scratch=scratch)
