"""Named softmax kernel registry.

One place that maps a kernel name to an executable softmax implementation,
so callers (attention layers, sweep drivers, the CLI, benchmarks) select
implementations by string instead of importing them:

* ``"reference"`` / ``"base2"`` -- floating-point references.
* ``"softermax-bit-accurate"`` -- the slice-loop :class:`SoftermaxPipeline`
  (the oracle every other Softermax kernel is validated against).
* ``"softermax-fused"`` -- the fused whole-tensor kernel, bitwise-identical
  to the oracle and the latency fast path for small row batches.
* ``"softermax-blocked"`` -- the row-blocked streaming kernel with reusable
  scratch buffers, the fast path for the bandwidth-bound huge-tensor regime.
* ``"softermax-parallel"`` -- row blocks fanned out over a worker pool via
  shared memory.
* ``"softermax-native"`` -- the compiled C row loop over the integer-code
  LUT pipeline; registered only when the extension is importable and not
  disabled (``REPRO_DISABLE_NATIVE=1``), see :mod:`repro.kernels.native`.
* ``"ibert"`` / ``"lut-exp"`` / ``"split-exp"`` -- the related-work
  approximations from :mod:`repro.core.variants`.
* ``"auto"`` -- the adaptive dispatcher (``"softermax-adaptive"``): picks
  among the bit-accurate engines per call from the tensor size, the worker
  budget and native-extension availability (see :func:`dispatch_candidates`).
  Every candidate is bitwise-identical, so the choice only affects speed.

Kernel names may carry options, e.g. ``"softermax-parallel(workers=4)"``,
``"softermax-blocked(block_rows=64)"`` or string-valued knobs like
``"softermax-blocked(lpw_method=lstsq)"``; the same options can be passed as
keyword arguments to :func:`resolve_kernel` (keywords win on conflict).

Every kernel resolves to a callable following the **workspace-aware
contract** ``fn(x, axis=-1, out=None, scratch=None) -> probabilities``:

* ``out`` -- optional float64 buffer of ``x``'s shape; the result is
  written into it in place (bitwise identical to the allocate mode) and it
  is returned.  A mismatched shape or dtype raises :class:`ValueError`.
* ``scratch`` -- optional :class:`~repro.kernels.workspace.KernelWorkspace`
  hosting the kernel's sizeable internal temporaries, reused across calls.

Kernels whose implementation writes in place natively advertise it via
``KernelSpec.supports_out`` / ``supports_scratch``; the rest (the float
references, the related-work approximations, the slice-loop oracle) are
wrapped at resolution time with copy-out semantics, so every resolved
callable accepts the full surface.  Softermax kernels are bound to a
:class:`SoftermaxConfig` at resolution time.
"""

from __future__ import annotations

import inspect
import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.config import SoftermaxConfig, DEFAULT_CONFIG
from repro.core.softermax import SoftermaxPipeline, softermax_float
from repro.core.softmax_reference import base2_softmax, softmax_reference
from repro.core.variants import ibert_softmax, lut_exp_softmax, split_exp_softmax
from repro.kernels.blocked import get_blocked_kernel
from repro.kernels.fused import get_fused_kernel
from repro.kernels.native import get_native_kernel, native_available
from repro.kernels.parallel import get_parallel_kernel
from repro.kernels.workspace import (
    KernelWorkspace,
    check_out_buffer,
    record_output_allocation,
)

#: Name the ``"auto"`` alias resolves to.
AUTO_KERNEL = "softermax-adaptive"

#: Tensor size (rows x reduction length, in elements) at and above which the
#: adaptive dispatcher prefers the blocked streaming kernel over the fused
#: whole-tensor kernel.  Below this the fused kernel's single-dispatch
#: whole-tensor passes win; above it the fused kernel's fresh multi-megabyte
#: intermediates hit the allocation/bandwidth wall.
AUTO_BLOCKED_MIN_ELEMENTS = 1 << 19

#: Tensor size at and above which the adaptive dispatcher fans out to the
#: worker pool -- only when more than one worker is available (the pool is
#: pure overhead on a single core).
AUTO_PARALLEL_MIN_ELEMENTS = 1 << 22


@dataclass(frozen=True)
class KernelSpec:
    """A registered softmax kernel.

    Attributes
    ----------
    name:
        Registry key.
    factory:
        ``factory(config, **options) -> fn(x, axis=-1)``; non-Softermax
        kernels ignore the config and accept no options.
    description:
        One-line human-readable summary (shown by ``repro.cli kernels``).
    bit_accurate:
        Whether the kernel models the fixed-point Softermax datapath
        bit-for-bit (as opposed to a float reference or approximation).
    selection:
        Human-readable summary of when the adaptive ``"auto"`` dispatcher
        (or a user) would pick this kernel, shown by ``repro.cli kernels``.
    runner_factory:
        Optional ``factory(config, **options) -> object`` returning a
        kernel object exposing ``run(x, axis)`` with full intermediates
        (used by the equivalence suite to pin every bit-accurate kernel to
        the oracle automatically).
    supports_out:
        Whether the factory's callable natively writes into a caller
        ``out=`` buffer without allocating its output.  Kernels without
        native support are wrapped at resolution time (compute, then copy
        into ``out``), so the *surface* is uniform; the flag reports which
        kernels are allocation-free, and the equivalence suite auto-pins
        the in-place contract for every kernel that sets it.
    supports_scratch:
        Whether the kernel houses its internal temporaries in a caller
        ``scratch=`` :class:`~repro.kernels.workspace.KernelWorkspace`.
    """

    name: str
    factory: Callable[..., Callable]
    description: str
    bit_accurate: bool = False
    selection: str = ""
    runner_factory: Optional[Callable[..., object]] = None
    supports_out: bool = False
    supports_scratch: bool = False


_KERNELS: Dict[str, KernelSpec] = {}

_NAME_RE = re.compile(r"^(?P<base>[A-Za-z0-9_.-]+)(?:\((?P<opts>[^()]*)\))?$")


_IDENTIFIER_VALUE_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_-]*$")


def parse_kernel_name(name: str) -> Tuple[str, Dict[str, object]]:
    """Split ``"kernel(key=value, ...)"`` into ``(base, options)``.

    Option values are integers (worker and row counts) or identifier-shaped
    strings (e.g. ``lpw_method=lstsq``); anything else is a usage error.  A
    bare name parses to ``(name, {})``.
    """
    match = _NAME_RE.match(name.strip())
    if not match:
        raise ValueError(f"malformed kernel name {name!r}")
    base = match.group("base")
    options: Dict[str, object] = {}
    opts = match.group("opts")
    if opts:
        for item in opts.split(","):
            if not item.strip():
                continue
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(
                    f"malformed kernel option {item.strip()!r} in {name!r} "
                    "(expected key=value)")
            value = value.strip()
            try:
                options[key.strip()] = int(value)
            except ValueError:
                if not _IDENTIFIER_VALUE_RE.match(value):
                    raise ValueError(
                        f"kernel option {key.strip()!r} in {name!r} must be "
                        f"an integer or an identifier, got {value!r}"
                    ) from None
                options[key.strip()] = value
    return base, options


def register_kernel(spec: KernelSpec) -> None:
    """Register (or replace) a kernel by name."""
    if spec.name == "auto":
        raise ValueError('"auto" is a reserved alias, not a registrable name')
    _KERNELS[spec.name] = spec


def get_kernel(name: str) -> KernelSpec:
    """Look up a registered kernel spec.

    Resolves the ``"auto"`` alias and ignores any ``(...)`` options suffix.
    """
    base, _ = parse_kernel_name(name)
    if base == "auto":
        base = AUTO_KERNEL
    try:
        return _KERNELS[base]
    except KeyError:
        raise KeyError(
            f"unknown softmax kernel {base!r}; available: {available_kernels()}"
        ) from None


def available_kernels() -> List[str]:
    """Sorted names of all registered kernels (excluding the auto alias)."""
    return sorted(_KERNELS)


def supported_options(name: str) -> Set[str]:
    """Engine knobs a kernel's factory accepts (beyond the config).

    Lets multi-kernel drivers (``bench-kernels``, the timing sweep) apply
    shared knobs like ``workers`` only to the kernels that understand them
    instead of erroring on the rest.
    """
    params = list(inspect.signature(get_kernel(name).factory).parameters
                  .values())[1:]  # first parameter is the config
    names = set()
    for param in params:
        if param.kind == inspect.Parameter.VAR_KEYWORD:
            continue
        names.add(param.name)
    return names


def _with_out_support(fn: Callable) -> Callable:
    """Adapt a plain ``fn(x, axis)`` kernel to the workspace-aware contract.

    The wrapped kernel allocates its output on every call (and records the
    allocation); a caller ``out=`` buffer is validated against the contract
    and filled by copy, ``scratch`` is accepted and ignored.  This keeps the
    resolved surface uniform while ``KernelSpec.supports_out`` stays honest
    about which kernels are natively allocation-free.
    """

    def wrapped(x: np.ndarray, axis: int = -1,
                out: Optional[np.ndarray] = None,
                scratch: Optional[KernelWorkspace] = None) -> np.ndarray:
        result = np.asarray(fn(x, axis=axis))
        record_output_allocation()
        if out is None:
            return result
        check_out_buffer(out, result.shape)
        np.copyto(out, result)
        return out

    wrapped.__wrapped__ = fn
    return wrapped


def resolve_kernel(
    name: str = "auto",
    config: SoftermaxConfig | None = None,
    **options,
) -> Callable[..., np.ndarray]:
    """Resolve a kernel name to an ``fn(x, axis=-1, out=None, scratch=None)``
    callable (the workspace-aware contract; see the module docstring).

    Softermax kernels are bound to ``config`` (paper Table I when omitted);
    float kernels ignore it.  Engine knobs (``workers``, ``block_rows``)
    may be embedded in the name -- ``"softermax-parallel(workers=4)"`` --
    or passed as keyword arguments; keyword arguments win on conflict, and
    ``None`` values are dropped so CLI plumbing can pass unset flags
    through unconditionally.
    """
    spec = get_kernel(name)
    _, parsed = parse_kernel_name(name)
    parsed.update({k: v for k, v in options.items() if v is not None})
    if not parsed:
        fn = spec.factory(config)
    else:
        try:
            fn = spec.factory(config, **parsed)
        except TypeError as exc:
            raise TypeError(
                f"kernel {spec.name!r} does not accept options "
                f"{sorted(parsed)}: {exc}"
            ) from None
    return fn if spec.supports_out else _with_out_support(fn)


# --------------------------------------------------------------------------- #
# adaptive dispatch
# --------------------------------------------------------------------------- #
def dispatch_candidates() -> List[str]:
    """Engines the adaptive dispatcher can pick, in registration order.

    Derived from the registry itself -- a bit-accurate, workspace-aware
    engine that is not the adaptive dispatcher -- so newly registered
    backends (e.g. ``softermax-native`` when the extension is importable)
    appear in the adaptive docstring and the CLI listing automatically.
    """
    return [name for name, spec in _KERNELS.items()
            if spec.bit_accurate and spec.supports_out
            and name != AUTO_KERNEL]


def auto_kernel_choice(rows: int, length: int,
                       workers: Optional[int] = None,
                       native: Optional[bool] = None) -> str:
    """Kernel the adaptive dispatcher picks for a ``rows x length`` call.

    ``workers`` is the worker budget (``None`` means ``os.cpu_count()``).
    On a single-core host the parallel engine is never picked -- even with
    an explicit multi-worker budget -- because a process pool with nowhere
    to run is pure overhead (measured 0.8x on the 1-core CI box).
    Forcing the pool remains possible by naming ``"softermax-parallel"``
    directly.

    ``native`` pins whether the compiled engine may be picked (``None``
    means "if registered").  When eligible it replaces *both* the fused
    and blocked slots: the C row loop beats the fused kernel ~6x at
    seq 512 and streams row-by-row in O(row) scratch, beating the blocked
    kernel ~2x on the huge-tensor shapes it was built for.
    """
    host_cores = os.cpu_count() or 1
    workers = host_cores if workers is None else int(workers)
    elements = rows * length
    if (elements >= AUTO_PARALLEL_MIN_ELEMENTS and workers > 1 and rows > 1
            and host_cores > 1):
        return "softermax-parallel"
    if native is None:
        native = "softermax-native" in _KERNELS
    if native:
        return "softermax-native"
    if elements >= AUTO_BLOCKED_MIN_ELEMENTS:
        return "softermax-blocked"
    return "softermax-fused"


class AdaptiveSoftermaxKernel:
    # Docstring generated from the registry after the built-in
    # registrations below (see _render_adaptive_doc).

    def __init__(self, config: SoftermaxConfig | None = None,
                 workers: Optional[int] = None,
                 block_rows: Optional[int] = None,
                 lpw_method: str = "endpoint") -> None:
        self.config = config or DEFAULT_CONFIG
        self.workers = workers
        self.block_rows = block_rows
        self.lpw_method = lpw_method

    def _kernel_for(self, name: str):
        if name == "softermax-parallel":
            return get_parallel_kernel(self.config, self.workers,
                                       self.block_rows, self.lpw_method)
        if name == "softermax-blocked":
            return get_blocked_kernel(self.config, self.block_rows,
                                      self.lpw_method)
        if name == "softermax-native":
            return get_native_kernel(self.config, self.lpw_method)
        return get_fused_kernel(self.config, self.lpw_method)

    def _choose(self, x: np.ndarray, axis: int) -> str:
        length = x.shape[axis] if x.ndim else 0
        if length == 0:
            raise ValueError("softermax requires a non-empty reduction axis")
        return auto_kernel_choice(x.size // length, length, self.workers)

    def __call__(self, x: np.ndarray, axis: int = -1,
                 out: Optional[np.ndarray] = None,
                 scratch: Optional[KernelWorkspace] = None) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return self._kernel_for(self._choose(x, axis))(x, axis=axis, out=out,
                                                       scratch=scratch)

    def run(self, x: np.ndarray, axis: int = -1):
        x = np.asarray(x, dtype=np.float64)
        return self._kernel_for(self._choose(x, axis)).run(x, axis=axis)


# --------------------------------------------------------------------------- #
# built-in kernels
# --------------------------------------------------------------------------- #
def _softermax_pipeline_factory(config):
    pipeline = SoftermaxPipeline(config) if config is not None else SoftermaxPipeline()
    return pipeline


register_kernel(KernelSpec(
    name="reference",
    factory=lambda config: softmax_reference,
    description="float64 base-e softmax (numerically stable reference)",
))
register_kernel(KernelSpec(
    name="base2",
    factory=lambda config: base2_softmax,
    description="float64 base-2 softmax (the paper's base replacement)",
))
register_kernel(KernelSpec(
    name="softermax-float",
    factory=lambda config: softermax_float,
    description="smooth float surrogate of Softermax (fine-tuning backward)",
))
register_kernel(KernelSpec(
    name="softermax-bit-accurate",
    factory=lambda config: _softermax_pipeline_factory(config).__call__,
    description="slice-loop SoftermaxPipeline (bit-accurate hardware oracle)",
    bit_accurate=True,
    selection="never picked by auto (validation oracle)",
    runner_factory=_softermax_pipeline_factory,
))
register_kernel(KernelSpec(
    name="softermax-fused",
    factory=lambda config, lpw_method="endpoint":
        get_fused_kernel(config, lpw_method).__call__,
    description="fused whole-tensor Softermax (bitwise-identical, latency path)",
    bit_accurate=True,
    selection=f"auto: below {AUTO_BLOCKED_MIN_ELEMENTS} elements when "
              "softermax-native is unavailable",
    runner_factory=lambda config, lpw_method="endpoint":
        get_fused_kernel(config, lpw_method),
    supports_out=True,
    supports_scratch=True,
))
register_kernel(KernelSpec(
    name="softermax-blocked",
    factory=lambda config, block_rows=None, lpw_method="endpoint":
        get_blocked_kernel(config, block_rows, lpw_method).__call__,
    description="row-blocked streaming Softermax with reusable scratch "
                "(bitwise-identical, bandwidth path)",
    bit_accurate=True,
    selection=f"auto: >= {AUTO_BLOCKED_MIN_ELEMENTS} elements (single "
              "worker) when softermax-native is unavailable; block_rows=N "
              "overrides the adaptive block",
    runner_factory=lambda config, block_rows=None, lpw_method="endpoint":
        get_blocked_kernel(config, block_rows, lpw_method),
    supports_out=True,
    supports_scratch=True,
))
register_kernel(KernelSpec(
    name="softermax-parallel",
    factory=lambda config, workers=None, block_rows=None, lpw_method="endpoint":
        get_parallel_kernel(config, workers, block_rows, lpw_method).__call__,
    description="row blocks fanned out over a shared-memory worker pool "
                "(bitwise-identical, multicore path)",
    bit_accurate=True,
    selection=f"auto: >= {AUTO_PARALLEL_MIN_ELEMENTS} elements when "
              "workers > 1 and the host has > 1 core; workers=N sets the "
              "pool size (default cpu count)",
    runner_factory=lambda config, workers=None, block_rows=None,
                          lpw_method="endpoint":
        get_parallel_kernel(config, workers, block_rows, lpw_method),
    supports_out=True,
    supports_scratch=True,
))
if native_available():
    register_kernel(KernelSpec(
        name="softermax-native",
        factory=lambda config, lpw_method="endpoint":
            get_native_kernel(config, lpw_method).__call__,
        description="compiled C row loop over the integer-code LUT pipeline "
                    "(bitwise-identical, single-core fast path)",
        bit_accurate=True,
        selection="auto: preferred below the parallel threshold whenever "
                  "the extension is importable (REPRO_DISABLE_NATIVE=1 "
                  "disables it)",
        runner_factory=lambda config, lpw_method="endpoint":
            get_native_kernel(config, lpw_method),
        supports_out=True,
        supports_scratch=True,
    ))
register_kernel(KernelSpec(
    name="softermax-adaptive",
    factory=lambda config, workers=None, block_rows=None,
                   lpw_method="endpoint":
        AdaptiveSoftermaxKernel(config, workers, block_rows, lpw_method),
    # Generated from the registry, so new backends appear automatically.
    description="per-call dispatch: " + " / ".join(
        name.removeprefix("softermax-") for name in dispatch_candidates()
    ) + " by tensor size and worker budget",
    bit_accurate=True,
    selection="the auto alias; dispatches on rows x length per call",
    runner_factory=lambda config, workers=None, block_rows=None,
                          lpw_method="endpoint":
        AdaptiveSoftermaxKernel(config, workers, block_rows, lpw_method),
    supports_out=True,
    supports_scratch=True,
))
register_kernel(KernelSpec(
    name="ibert",
    factory=lambda config: ibert_softmax,
    description="I-BERT style polynomial integer softmax (related work)",
))
register_kernel(KernelSpec(
    name="lut-exp",
    factory=lambda config: lut_exp_softmax,
    description="64-entry LUT natural-exp softmax (related work)",
))
register_kernel(KernelSpec(
    name="split-exp",
    factory=lambda config: split_exp_softmax,
    description="split high/low-bit exponential softmax (related work)",
))


def _render_adaptive_doc() -> str:
    """Adaptive-dispatcher docstring, generated from the registry.

    Regenerated at import time after the built-in registrations, so the
    candidate list and per-engine selection rules can never drift from
    what the registry actually contains.
    """
    lines = [
        "Per-call size dispatch over the bit-accurate kernel family.",
        "",
        "Every candidate produces identical bits, so dispatch only affects",
        "speed.  The candidates and their selection rules come straight",
        "from the registry (see :func:`dispatch_candidates`):",
        "",
    ]
    for name in dispatch_candidates():
        lines.append(f"* ``{name}`` -- {_KERNELS[name].selection}")
    lines += [
        "",
        "The underlying kernels are memoized per config, and the worker",
        "pool is only spun up if a call actually crosses the parallel",
        "threshold.",
    ]
    return "\n".join(lines)


AdaptiveSoftermaxKernel.__doc__ = _render_adaptive_doc()
