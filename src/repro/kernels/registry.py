"""Named softmax kernel registry.

One place that maps a kernel name to an executable softmax implementation,
so callers (attention layers, sweep drivers, the CLI, benchmarks) select
implementations by string instead of importing them:

* ``"reference"`` / ``"base2"`` -- floating-point references.
* ``"softermax-bit-accurate"`` -- the slice-loop :class:`SoftermaxPipeline`
  (the oracle every other Softermax kernel is validated against).
* ``"softermax-fused"`` -- the fused whole-tensor kernel, bitwise-identical
  to the oracle and the default fast path.
* ``"ibert"`` / ``"lut-exp"`` / ``"split-exp"`` -- the related-work
  approximations from :mod:`repro.core.variants`.
* ``"auto"`` -- resolves to the preferred Softermax implementation
  (currently the fused kernel).

Every kernel resolves to a callable ``fn(x, axis=-1) -> probabilities``;
Softermax kernels are bound to a :class:`SoftermaxConfig` at resolution
time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.config import SoftermaxConfig
from repro.core.softermax import SoftermaxPipeline, softermax_float
from repro.core.softmax_reference import base2_softmax, softmax_reference
from repro.core.variants import ibert_softmax, lut_exp_softmax, split_exp_softmax
from repro.kernels.fused import get_fused_kernel

#: Name the ``"auto"`` alias resolves to.
AUTO_KERNEL = "softermax-fused"


@dataclass(frozen=True)
class KernelSpec:
    """A registered softmax kernel.

    Attributes
    ----------
    name:
        Registry key.
    factory:
        ``factory(config) -> fn(x, axis=-1)``; non-Softermax kernels ignore
        the config.
    description:
        One-line human-readable summary (shown by ``repro.cli kernels``).
    bit_accurate:
        Whether the kernel models the fixed-point Softermax datapath
        bit-for-bit (as opposed to a float reference or approximation).
    """

    name: str
    factory: Callable[[Optional[SoftermaxConfig]], Callable]
    description: str
    bit_accurate: bool = False


_KERNELS: Dict[str, KernelSpec] = {}


def register_kernel(spec: KernelSpec) -> None:
    """Register (or replace) a kernel by name."""
    if spec.name == "auto":
        raise ValueError('"auto" is a reserved alias, not a registrable name')
    _KERNELS[spec.name] = spec


def get_kernel(name: str) -> KernelSpec:
    """Look up a registered kernel spec (resolving the ``"auto"`` alias)."""
    if name == "auto":
        name = AUTO_KERNEL
    try:
        return _KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown softmax kernel {name!r}; available: {available_kernels()}"
        ) from None


def available_kernels() -> List[str]:
    """Sorted names of all registered kernels (excluding the auto alias)."""
    return sorted(_KERNELS)


def resolve_kernel(
    name: str = "auto",
    config: SoftermaxConfig | None = None,
) -> Callable[..., np.ndarray]:
    """Resolve a kernel name to a ``fn(x, axis=-1)`` callable.

    Softermax kernels are bound to ``config`` (paper Table I when omitted);
    float kernels ignore it.
    """
    return get_kernel(name).factory(config)


# --------------------------------------------------------------------------- #
# built-in kernels
# --------------------------------------------------------------------------- #
def _softermax_pipeline_factory(config):
    pipeline = SoftermaxPipeline(config) if config is not None else SoftermaxPipeline()
    return pipeline.__call__


def _softermax_fused_factory(config):
    return get_fused_kernel(config).__call__


register_kernel(KernelSpec(
    name="reference",
    factory=lambda config: softmax_reference,
    description="float64 base-e softmax (numerically stable reference)",
))
register_kernel(KernelSpec(
    name="base2",
    factory=lambda config: base2_softmax,
    description="float64 base-2 softmax (the paper's base replacement)",
))
register_kernel(KernelSpec(
    name="softermax-float",
    factory=lambda config: softermax_float,
    description="smooth float surrogate of Softermax (fine-tuning backward)",
))
register_kernel(KernelSpec(
    name="softermax-bit-accurate",
    factory=_softermax_pipeline_factory,
    description="slice-loop SoftermaxPipeline (bit-accurate hardware oracle)",
    bit_accurate=True,
))
register_kernel(KernelSpec(
    name="softermax-fused",
    factory=_softermax_fused_factory,
    description="fused whole-tensor Softermax (bitwise-identical, fast path)",
    bit_accurate=True,
))
register_kernel(KernelSpec(
    name="ibert",
    factory=lambda config: ibert_softmax,
    description="I-BERT style polynomial integer softmax (related work)",
))
register_kernel(KernelSpec(
    name="lut-exp",
    factory=lambda config: lut_exp_softmax,
    description="64-entry LUT natural-exp softmax (related work)",
))
register_kernel(KernelSpec(
    name="split-exp",
    factory=lambda config: split_exp_softmax,
    description="split high/low-bit exponential softmax (related work)",
))
