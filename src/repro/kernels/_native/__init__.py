"""Loader for the compiled Softermax hot path.

The compiled module (``repro.kernels._native._softermax``, built from
``_softermaxmodule.c`` by ``python setup.py build_ext --inplace`` or an
editable install) is optional by design: a box without a C compiler, a
wheel-less install, or an ABI-mismatched leftover ``.so`` must degrade to
the pure-Python engines, never crash at import.  This package owns that
guard in exactly one place -- everything else asks :data:`lib`.

``REPRO_DISABLE_NATIVE=1`` (any value but ``0``/empty) is the kill
switch: it forces :data:`lib` to ``None`` even when the extension is
importable, so the fallback path can be exercised -- and production can
be pinned off the extension -- without rebuilding.
"""

from __future__ import annotations

import os

#: Environment variable that disables the compiled backend entirely.
DISABLE_ENV = "REPRO_DISABLE_NATIVE"


def _disabled() -> bool:
    return os.environ.get(DISABLE_ENV, "").strip() not in ("", "0")


if _disabled():
    lib = None
else:
    try:
        from repro.kernels._native import _softermax as lib
    except ImportError:  # no compiler / wheel-less install / stale ABI
        lib = None
