/* Compiled hot path for the integer-code Softermax pipeline.
 *
 * This module is the C twin of the fused kernel's integer fast path
 * (repro/kernels/fused.py): quantize the row straight to input codes,
 * take per-slice maxima, gather the unnormalized exponential codes from
 * the precomputed pow2 difference LUT, run the online-normalization
 * recurrence on the per-slice (max, sum) state, and renormalize-and-
 * divide with pure shift/multiply integer arithmetic -- one C pass per
 * row, no NumPy ufunc dispatch anywhere.
 *
 * Bitwise discipline: every arithmetic step below mirrors one NumPy
 * expression of FusedSoftermaxKernel exactly --
 *
 *   - input quantization is the same multiply/+0.5/floor/clip/cast
 *     chain in IEEE double (all steps exact or identically rounded);
 *   - slice maxima, max-code requantization, LUT index arithmetic and
 *     the sum-code rounding are exact integer arithmetic (arithmetic
 *     right shifts == NumPy's floor-division shifts);
 *   - the online merge runs in IEEE double on per-slice code values,
 *     with ldexp() standing in for np.power(2.0, integer_exp) (both
 *     produce the exact power of two) and the identity cases (shift
 *     factor 1.0) applied unconditionally -- rounding an integer-valued
 *     state is the identity, so skipping it (as the vectorized kernel
 *     does) and applying it (as we do) are bitwise the same;
 *   - the back end is the same shift/multiply/round/clip chain on
 *     int64, capped at the shift bound the fused kernel uses for its
 *     work dtype.
 *
 * Anything the integer fast path cannot express bitwise -- a saturated
 * maximum making a renormalization shift non-integral -- is detected up
 * front (the divisibility check on the max-code differences) and
 * reported via return value 1, and the Python wrapper re-runs the call
 * through the fused kernel.  The equivalence suite pins the result
 * against the slice-loop oracle either way.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>

#define NPY_NO_DEPRECATED_API NPY_1_7_API_VERSION
#include <numpy/arrayobject.h>

#include <math.h>
#include <stdint.h>

/* Indices into the int64 parameter block (built once per kernel in
 * native.py; keep in sync with _pack_params there). */
enum {
    P_SLICE_WIDTH = 0,
    P_IN_LO,
    P_IN_HI,
    P_FI,          /* input_fmt.frac_bits */
    P_FM,          /* max_fmt.frac_bits */
    P_MAX_LO,
    P_MAX_HI,
    P_IN_SCALE,
    P_MAX_SCALE,
    P_LO_CODE,
    P_SUM_SHIFT,   /* unnormed frac - sum frac */
    P_SUM_LO,
    P_SUM_HI,
    P_OUT_SHIFT,   /* unnormed frac + recip frac - output frac */
    P_OUT_LO,
    P_OUT_HI,
    P_SHIFT_CAP,   /* fused kernel's work-dtype shift bound */
    P_COUNT
};

#define NEEDS_FALLBACK 1

static int
check_array(PyArrayObject *arr, int typenum, const char *name)
{
    if (PyArray_TYPE(arr) != typenum || !PyArray_IS_C_CONTIGUOUS(arr)) {
        PyErr_Format(PyExc_ValueError,
                     "%s must be a C-contiguous array of the expected dtype",
                     name);
        return -1;
    }
    return 0;
}

/* One row: quantize, slice-max, LUT-gather, merge, normalize.  Returns 0
 * on success, NEEDS_FALLBACK when a non-integral renormalization shift
 * (saturated maximum) means the integer path cannot be bitwise. */
static int
softermax_row(const double *xr, double *outr, npy_intp length,
              const int64_t *lut, npy_intp lut_len,
              const int64_t *recip_codes, const double *out_values,
              int64_t *ucodes, int64_t *mcq, int64_t *accq, int64_t *sumc,
              const int64_t *p, double inv_in_res)
{
    const int64_t W = p[P_SLICE_WIDTH];
    const npy_intp S = (length + W - 1) / W;
    const int64_t fi = p[P_FI], fm = p[P_FM];
    const int64_t ceil_bias = (1LL << fi) - 1;
    const int64_t fm_mul = 1LL << fm, fm_mask = fm_mul - 1;
    const double in_lo = (double)p[P_IN_LO], in_hi = (double)p[P_IN_HI];
    const int64_t in_scale = p[P_IN_SCALE], max_scale = p[P_MAX_SCALE];
    const int64_t lo_code = p[P_LO_CODE];
    const int64_t sum_shift = p[P_SUM_SHIFT];
    const int64_t sum_lo = p[P_SUM_LO], sum_hi = p[P_SUM_HI];

    /* Pass 1: per slice -- input codes, slice max, LUT gather, sum. */
    for (npy_intp s = 0; s < S; s++) {
        const npy_intp base = s * W;
        const npy_intp n = (base + W <= length) ? W : (length - base);
        int64_t maxc = INT64_MIN;
        for (npy_intp i = 0; i < n; i++) {
            /* multiply / +0.5 / floor / clip / cast, as the fused kernel */
            double v = floor(xr[base + i] * inv_in_res + 0.5);
            if (v < in_lo)
                v = in_lo;
            else if (v > in_hi)
                v = in_hi;
            int64_t code = (int64_t)v;
            ucodes[base + i] = code; /* staged; overwritten below */
            if (code > maxc)
                maxc = code;
        }
        /* integer-max requantization onto the max grid */
        int64_t ceil_int = (maxc + ceil_bias) >> fi; /* arithmetic shift */
        int64_t scaled = ceil_int * fm_mul;
        if (scaled < p[P_MAX_LO])
            scaled = p[P_MAX_LO];
        else if (scaled > p[P_MAX_HI])
            scaled = p[P_MAX_HI];
        mcq[s] = scaled;
        const int64_t offset = scaled * max_scale + lo_code;
        int64_t ssum = 0;
        for (npy_intp i = 0; i < n; i++) {
            int64_t idx = ucodes[base + i] * in_scale - offset;
            if (idx < 0)
                idx = 0;
            else if (idx >= lut_len)
                idx = lut_len - 1;
            const int64_t u = lut[idx];
            ucodes[base + i] = u;
            ssum += u;
        }
        int64_t q;
        if (sum_shift > 0)
            q = (ssum + (1LL << (sum_shift - 1))) >> sum_shift;
        else
            q = ssum * (1LL << (-sum_shift));
        if (q < sum_lo)
            q = sum_lo;
        else if (q > sum_hi)
            q = sum_hi;
        sumc[s] = q;
    }

    /* Prefix maximum of the slice maxima + integral-shift check. */
    int64_t running = INT64_MIN;
    for (npy_intp s = 0; s < S; s++) {
        if (mcq[s] > running)
            running = mcq[s];
        accq[s] = running;
        if (((mcq[s] - running) & fm_mask) != 0)
            return NEEDS_FALLBACK;
        if (s > 0 && ((accq[s - 1] - running) & fm_mask) != 0)
            return NEEDS_FALLBACK;
    }

    /* Online-normalization recurrence on the per-slice (max, sum) state,
     * in IEEE double on code values -- the fused kernel's expression with
     * the identity steps applied unconditionally. */
    double rs = (double)sumc[0]; /* slice 0 shift factor is exactly 1 */
    const double dsum_lo = (double)sum_lo, dsum_hi = (double)sum_hi;
    for (npy_intp s = 1; s < S; s++) {
        const int64_t e_run = (accq[s - 1] - accq[s]) >> fm;   /* <= 0 */
        const int64_t e_loc = (mcq[s] - accq[s]) >> fm;        /* <= 0 */
        rs *= ldexp(1.0, (int)e_run);
        rs += (double)sumc[s] * ldexp(1.0, (int)e_loc);
        rs = floor(rs + 0.5);
        if (rs < dsum_lo)
            rs = dsum_lo;
        else if (rs > dsum_hi)
            rs = dsum_hi;
    }
    const int64_t rc = recip_codes[(int64_t)rs];

    /* Back end: renormalize (right shift), multiply by the reciprocal
     * code, round to the output grid, clip, gather the float value. */
    const int64_t shift_cap = p[P_SHIFT_CAP];
    const int64_t out_shift = p[P_OUT_SHIFT];
    const int64_t half = (out_shift > 0) ? (1LL << (out_shift - 1)) : 0;
    const int64_t out_mul = (out_shift < 0) ? (1LL << (-out_shift)) : 1;
    const int64_t out_lo = p[P_OUT_LO], out_hi = p[P_OUT_HI];
    const int64_t gmax = accq[S - 1];
    for (npy_intp s = 0; s < S; s++) {
        const npy_intp base = s * W;
        const npy_intp n = (base + W <= length) ? W : (length - base);
        int64_t k = (gmax - mcq[s]) >> fm; /* integral by the check above */
        if (k > shift_cap)
            k = shift_cap;
        for (npy_intp i = 0; i < n; i++) {
            int64_t prod = (ucodes[base + i] >> k) * rc;
            if (out_shift > 0)
                prod = (prod + half) >> out_shift;
            else
                prod *= out_mul;
            if (prod < out_lo)
                prod = out_lo;
            else if (prod > out_hi)
                prod = out_hi;
            outr[base + i] = out_values[prod];
        }
    }
    return 0;
}

static PyObject *
forward(PyObject *self, PyObject *args)
{
    PyArrayObject *x, *out, *lut, *recip_codes, *out_values;
    PyArrayObject *ucodes, *slices, *params;
    double inv_in_res;

    if (!PyArg_ParseTuple(args, "O!O!O!O!O!O!O!O!d",
                          &PyArray_Type, &x, &PyArray_Type, &out,
                          &PyArray_Type, &lut, &PyArray_Type, &recip_codes,
                          &PyArray_Type, &out_values, &PyArray_Type, &ucodes,
                          &PyArray_Type, &slices, &PyArray_Type, &params,
                          &inv_in_res))
        return NULL;

    if (check_array(x, NPY_FLOAT64, "x") ||
        check_array(out, NPY_FLOAT64, "out") ||
        check_array(lut, NPY_INT64, "lut") ||
        check_array(recip_codes, NPY_INT64, "recip_codes") ||
        check_array(out_values, NPY_FLOAT64, "out_values") ||
        check_array(ucodes, NPY_INT64, "ucodes scratch") ||
        check_array(slices, NPY_INT64, "slice scratch") ||
        check_array(params, NPY_INT64, "params"))
        return NULL;

    if (PyArray_NDIM(x) != 2 || PyArray_NDIM(out) != 2) {
        PyErr_SetString(PyExc_ValueError, "x and out must be 2-D");
        return NULL;
    }
    const npy_intp rows = PyArray_DIM(x, 0);
    const npy_intp length = PyArray_DIM(x, 1);
    if (PyArray_DIM(out, 0) != rows || PyArray_DIM(out, 1) != length) {
        PyErr_SetString(PyExc_ValueError, "out shape must match x");
        return NULL;
    }
    if (PyArray_SIZE(params) < P_COUNT) {
        PyErr_SetString(PyExc_ValueError, "parameter block too short");
        return NULL;
    }
    const int64_t *p = (const int64_t *)PyArray_DATA(params);
    const int64_t W = p[P_SLICE_WIDTH];
    if (W <= 0 || length <= 0) {
        PyErr_SetString(PyExc_ValueError,
                        "slice width and row length must be positive");
        return NULL;
    }
    const npy_intp S = (length + W - 1) / W;
    if (PyArray_SIZE(ucodes) < S * W || PyArray_SIZE(slices) < 3 * S) {
        PyErr_SetString(PyExc_ValueError, "scratch buffers too small");
        return NULL;
    }
    if (PyArray_SIZE(recip_codes) < p[P_SUM_HI] + 1 ||
        PyArray_SIZE(out_values) < p[P_OUT_HI] + 1 ||
        p[P_SUM_LO] < 0 || p[P_OUT_LO] < 0) {
        PyErr_SetString(PyExc_ValueError,
                        "reciprocal/output tables do not cover the code range");
        return NULL;
    }

    const double *xp = (const double *)PyArray_DATA(x);
    double *op = (double *)PyArray_DATA(out);
    const int64_t *lutp = (const int64_t *)PyArray_DATA(lut);
    const npy_intp lut_len = PyArray_SIZE(lut);
    const int64_t *recipp = (const int64_t *)PyArray_DATA(recip_codes);
    const double *outvp = (const double *)PyArray_DATA(out_values);
    int64_t *ucodesp = (int64_t *)PyArray_DATA(ucodes);
    int64_t *slicep = (int64_t *)PyArray_DATA(slices);
    int64_t *mcq = slicep, *accq = slicep + S, *sumc = slicep + 2 * S;

    int rc = 0;
    Py_BEGIN_ALLOW_THREADS
    for (npy_intp r = 0; r < rows; r++) {
        rc = softermax_row(xp + r * length, op + r * length, length,
                           lutp, lut_len, recipp, outvp,
                           ucodesp, mcq, accq, sumc, p, inv_in_res);
        if (rc != 0)
            break;
    }
    Py_END_ALLOW_THREADS
    return PyLong_FromLong(rc);
}

static PyMethodDef methods[] = {
    {"forward", forward, METH_VARARGS,
     "forward(x, out, lut, recip_codes, out_values, ucodes, slices, "
     "params, inv_in_res) -> int\n\n"
     "Run the integer-code Softermax pipeline over the rows of a 2-D\n"
     "C-contiguous float64 array, writing probabilities into out.\n"
     "Returns 0 on success, 1 when a non-integral renormalization shift\n"
     "requires the Python fused kernel (caller falls back)."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef moduledef = {
    PyModuleDef_HEAD_INIT, "_softermax",
    "Compiled integer-code Softermax hot path (see repro.kernels.native).",
    -1, methods,
};

PyMODINIT_FUNC
PyInit__softermax(void)
{
    import_array();
    return PyModule_Create(&moduledef);
}
