"""Softmax kernel engine: named, swappable softmax implementations.

``repro.core`` defines *what* Softermax computes (the bit-accurate
slice-loop pipeline); this subpackage is about *how fast* it runs and how a
caller picks an implementation:

* :mod:`repro.kernels.fused` -- the fused whole-tensor kernel, bitwise
  identical to :class:`~repro.core.softermax.SoftermaxPipeline` and an order
  of magnitude faster on small batched attention-score tensors (the latency
  regime).
* :mod:`repro.kernels.blocked` -- the row-blocked streaming kernel with
  preallocated scratch buffers, the fast path for the bandwidth-bound
  huge-tensor regime.
* :mod:`repro.kernels.parallel` -- row blocks fanned out over a
  ``multiprocessing`` pool via shared memory (results written in place).
* :mod:`repro.kernels.native` -- the compiled C row loop over the
  integer-code LUT pipeline (optional extension; falls back to the fused
  kernel when absent or disabled via ``REPRO_DISABLE_NATIVE=1``).
* :mod:`repro.kernels.registry` -- the name -> implementation registry with
  adaptive ``"auto"`` selection, used by the attention layers, sweeps, the
  CLI and the benchmarks.
* :mod:`repro.kernels.workspace` -- the workspace-aware call contract:
  caller-owned ``out=`` buffers, the :class:`KernelWorkspace` scratch pool
  shared by every engine, and the kernel output-allocation counters the
  serving benchmarks assert against.
"""

from repro.kernels.blocked import (
    BlockedSoftermaxKernel,
    blocked_softermax,
    get_blocked_kernel,
)
from repro.kernels.fused import (
    FusedSoftermaxKernel,
    fused_softermax,
    get_fused_kernel,
)
from repro.kernels.native import (
    NativeSoftermaxKernel,
    get_native_kernel,
    native_available,
    native_softermax,
)
from repro.kernels.parallel import (
    ParallelSoftermaxKernel,
    get_parallel_kernel,
    parallel_softermax,
)
from repro.kernels.registry import (
    AUTO_BLOCKED_MIN_ELEMENTS,
    AUTO_KERNEL,
    AUTO_PARALLEL_MIN_ELEMENTS,
    AdaptiveSoftermaxKernel,
    KernelSpec,
    auto_kernel_choice,
    available_kernels,
    dispatch_candidates,
    get_kernel,
    parse_kernel_name,
    register_kernel,
    resolve_kernel,
    supported_options,
)
from repro.kernels.workspace import (
    KernelWorkspace,
    check_out_buffer,
    output_allocation_count,
    record_output_allocation,
    reset_output_allocations,
)

__all__ = [
    "BlockedSoftermaxKernel",
    "blocked_softermax",
    "get_blocked_kernel",
    "FusedSoftermaxKernel",
    "fused_softermax",
    "get_fused_kernel",
    "NativeSoftermaxKernel",
    "get_native_kernel",
    "native_available",
    "native_softermax",
    "ParallelSoftermaxKernel",
    "get_parallel_kernel",
    "parallel_softermax",
    "AUTO_BLOCKED_MIN_ELEMENTS",
    "AUTO_KERNEL",
    "AUTO_PARALLEL_MIN_ELEMENTS",
    "AdaptiveSoftermaxKernel",
    "KernelSpec",
    "auto_kernel_choice",
    "available_kernels",
    "dispatch_candidates",
    "get_kernel",
    "parse_kernel_name",
    "register_kernel",
    "resolve_kernel",
    "supported_options",
    "KernelWorkspace",
    "check_out_buffer",
    "output_allocation_count",
    "record_output_allocation",
    "reset_output_allocations",
]
