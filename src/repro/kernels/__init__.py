"""Softmax kernel engine: named, swappable softmax implementations.

``repro.core`` defines *what* Softermax computes (the bit-accurate
slice-loop pipeline); this subpackage is about *how fast* it runs and how a
caller picks an implementation:

* :mod:`repro.kernels.fused` -- the fused whole-tensor kernel, bitwise
  identical to :class:`~repro.core.softermax.SoftermaxPipeline` but an order
  of magnitude faster on batched attention-score tensors.
* :mod:`repro.kernels.registry` -- the name -> implementation registry with
  ``"auto"`` selection, used by the attention layers, sweeps, the CLI and
  the benchmarks.
"""

from repro.kernels.fused import (
    FusedSoftermaxKernel,
    fused_softermax,
    get_fused_kernel,
)
from repro.kernels.registry import (
    AUTO_KERNEL,
    KernelSpec,
    available_kernels,
    get_kernel,
    register_kernel,
    resolve_kernel,
)

__all__ = [
    "FusedSoftermaxKernel",
    "fused_softermax",
    "get_fused_kernel",
    "AUTO_KERNEL",
    "KernelSpec",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "resolve_kernel",
]
