"""Fused batched Softermax kernel.

:class:`~repro.core.softermax.SoftermaxPipeline` mirrors the hardware
slice-by-slice, walking the reduction axis in Python loops: at sequence
length 512 it makes ~16 trips through the interpreter per row group and
issues hundreds of small NumPy calls (including a per-element ``np.power``
inside the power-of-two unit).  That is the right shape for a bit-accurate
functional model and the wrong shape for throughput.

This module computes the *identical* result in a handful of whole-tensor
operations, almost entirely in the integer code domain:

* the input is quantized straight to int32 codes and reshaped into a
  ``(..., num_slices, slice_width)`` tile view (the last tile is padded so
  padding can never win a maximum, and padded lanes are zeroed out of the
  sums);
* per-slice integer maxima use one reduction over the tile axis --
  ``max(ceil(x)) == ceil(max(x))``, so the ceil runs on the tiny per-slice
  array instead of the full tensor;
* the power-of-two unit is folded into a lookup table over every possible
  quantized score-minus-max difference (the input/max grids are narrow
  fixed-point formats, so the set is small and enumerable) -- one gather
  replaces the floor/subtract/LPW/shift/quantize chain;
* the online-normalization recurrence keeps its per-slice loop (each step
  rounds, so it is inherently sequential) but runs on small per-row state
  arrays with all shift factors precomputed, five NumPy calls per slice;
* the renormalize-and-divide back end is integer arithmetic on the codes:
  the ``2**(slice_max - global_max)`` renormalization is a right shift and
  the final round-to-nearest/saturation is an add-shift-clip.

Bitwise equivalence with the pipeline is not approximate: every quantized
value produced here is computed by the very same elementwise float
expression, or by exact integer arithmetic on the fixed-point codes (sums
of grid values fit losslessly in int64/float64), or gathered from a table
that was itself filled by the bit-accurate unit.  The equivalence suite in
``tests/kernels/test_equivalence.py`` asserts ``array_equal`` across
shapes, slice widths, axes and operating points.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

import numpy as np

from repro.core.config import SoftermaxConfig, DEFAULT_CONFIG
from repro.core.online_normalizer import integer_max
from repro.core.pow2_unit import PowerOfTwoUnit
from repro.core.reciprocal_unit import ReciprocalUnit
from repro.core.softermax import SoftermaxIntermediates, SoftermaxResult
from repro.fixedpoint import RoundingMode, quantize
from repro.kernels.workspace import (
    KernelWorkspace,
    check_out_buffer,
    record_output_allocation,
)

try:
    # The raw clip ufunc skips np.clip's Python dispatch overhead, which is
    # measurable in the per-slice recurrence; np.clip resolves to the same
    # ufunc, so results are identical.
    from numpy._core.umath import clip as _clip
except ImportError:  # pragma: no cover - older numpy layouts
    _clip = np.clip

#: Largest difference LUT the kernel will precompute (entries).  The paper's
#: Q(6,2) operating point needs 511; even a Q(8,8) ablation needs ~98k.
#: Configs beyond this fall back to the vectorized float path.
MAX_LUT_ENTRIES = 1 << 20


def narrowest_int_dtype(lo: int, hi: int) -> type:
    """Smallest signed NumPy integer dtype whose range covers [lo, hi]."""
    for dtype in (np.int16, np.int32, np.int64):
        info = np.iinfo(dtype)
        if info.min <= lo and hi <= info.max:
            return dtype
    raise OverflowError(f"range [{lo}, {hi}] exceeds int64")


@dataclass
class FusedSoftermaxKernel:
    """Whole-tensor Softermax, bitwise-identical to the slice-loop pipeline.

    Parameters
    ----------
    config:
        Operating point; must match the pipeline being replaced.
    lpw_method:
        LPW table construction method (must match the pipeline's units for
        bitwise equivalence; both default to ``"endpoint"``).

    Examples
    --------
    >>> kernel = FusedSoftermaxKernel()
    >>> probs = kernel(np.asarray([[2.0, 1.0, 3.0]]))
    >>> bool(abs(probs.sum() - 1.0) < 0.05)
    True
    """

    config: SoftermaxConfig = None
    lpw_method: str = "endpoint"

    def __post_init__(self) -> None:
        if self.config is None:
            self.config = DEFAULT_CONFIG
        cfg = self.config
        self.pow2_unit = PowerOfTwoUnit(cfg, lpw_method=self.lpw_method)
        self.reciprocal_unit = ReciprocalUnit(cfg, lpw_method=self.lpw_method)

        self._in_res = cfg.input_fmt.resolution
        self._max_res = cfg.max_fmt.resolution
        self._un_res = cfg.unnormed_fmt.resolution
        self._sum_res = cfg.sum_fmt.resolution
        self._recip_res = cfg.recip_fmt.resolution
        self._out_res = cfg.output_fmt.resolution

        # Widest intermediate of the integer back end: unnormed * reciprocal
        # codes, plus the rounding offset.
        product_bits = (cfg.unnormed_fmt.total_bits + cfg.recip_fmt.total_bits + 2)
        self._work_dtype = np.int32 if product_bits < 31 else np.int64
        # Renormalization shifts beyond the unnormed code width already
        # yield zero, so they can be capped below the work dtype's bit
        # width (NumPy leaves over-shifting undefined).
        self._max_shift = 30 if self._work_dtype is np.int32 else 62

        # Output codes -> float values (a gather beats astype + multiply);
        # only trivially indexable for unsigned output formats.
        if cfg.output_fmt.min_code == 0:
            self._out_values = (
                np.arange(cfg.output_fmt.max_code + 1, dtype=np.float64)
                * self._out_res
            )
        else:
            self._out_values = None

        # Denominator code -> reciprocal value, filled by the bit-accurate
        # unit itself, so the whole leading-one-detect/LPW/requantize chain
        # collapses to one gather per row.
        if cfg.sum_fmt.min_code == 0 and cfg.sum_fmt.total_bits <= 20:
            codes = np.arange(cfg.sum_fmt.max_code + 1, dtype=np.float64)
            self._recip_values = self.reciprocal_unit(codes * self._sum_res)
        else:
            self._recip_values = None

        self._build_pow2_lut()

    # ------------------------------------------------------------------ #
    # table construction
    # ------------------------------------------------------------------ #
    def _pow2(self, x: np.ndarray) -> np.ndarray:
        """Same semantics as ``SoftermaxPipeline._pow2`` (base-2 or base-e)."""
        if self.config.use_base2:
            return self.pow2_unit(x)
        return quantize(np.exp(x), self.config.unnormed_fmt, RoundingMode.NEAREST)

    def _build_pow2_lut(self) -> None:
        """Tabulate the unnormalized exponential over every possible diff.

        The quantized scores live on the ``input_fmt`` grid and the (slice
        or global) maxima on the ``max_fmt`` grid, so ``score - max`` lies
        on the grid of resolution ``2**-max(frac_in, frac_max)`` -- a
        finite, enumerable set.  Evaluating the bit-accurate unit once per
        grid point makes the lookup bitwise-faithful by construction.
        """
        cfg = self.config
        frac = max(cfg.input_fmt.frac_bits, cfg.max_fmt.frac_bits)
        res = 2.0 ** (-frac)
        lo = cfg.input_fmt.min_value - cfg.max_fmt.max_value
        hi = cfg.input_fmt.max_value - cfg.max_fmt.min_value
        entries = int(round((hi - lo) / res)) + 1
        if entries > MAX_LUT_ENTRIES:
            self._lut_codes = None
            self._idx_dtype = None
            return
        values = lo + np.arange(entries, dtype=np.float64) * res
        codes = np.rint(self._pow2(values) / self._un_res)
        self._lut_codes = codes.astype(self._work_dtype)
        # Index of a diff: icode * in_scale - mcode * max_scale - lo_code,
        # everything in units of the common (finest) grid.
        self._in_scale = 1 << (frac - cfg.input_fmt.frac_bits)
        self._max_scale = 1 << (frac - cfg.max_fmt.frac_bits)
        self._lo_code = int(round(lo / res))
        # The gather index is the largest int intermediate of the forward
        # pass; its value range is known at build time (input and max codes
        # are narrow), so it can usually live in int16 -- half the memory
        # traffic of the former int32 index on the bandwidth-bound shapes.
        t_lo = cfg.input_fmt.min_code * self._in_scale
        t_hi = cfg.input_fmt.max_code * self._in_scale
        off_lo = cfg.max_fmt.min_code * self._max_scale + self._lo_code
        off_hi = cfg.max_fmt.max_code * self._max_scale + self._lo_code
        self._idx_dtype = narrowest_int_dtype(
            min(t_lo, t_lo - off_hi), max(t_hi, t_hi - off_lo)
        )

    # ------------------------------------------------------------------ #
    # forward
    # ------------------------------------------------------------------ #
    def __call__(self, x: np.ndarray, axis: int = -1,
                 out: Optional[np.ndarray] = None,
                 scratch: Optional[KernelWorkspace] = None) -> np.ndarray:
        """Apply Softermax along ``axis`` and return the probabilities.

        ``out`` is an optional float64 buffer of ``x``'s exact shape: the
        probabilities are written into it in place (bitwise identical to
        the allocate mode) and it is returned.  ``scratch`` is an optional
        :class:`~repro.kernels.workspace.KernelWorkspace` that hosts the
        whole-tensor temporaries, so a caller that reuses one workspace
        across calls pays no steady-state scratch allocation.
        """
        x = np.asarray(x, dtype=np.float64)
        check_out_buffer(out, x.shape)
        last_axis = axis == -1 or axis == x.ndim - 1
        if last_axis and (out is None or out.flags.c_contiguous):
            output, _ = self._forward(x, want_intermediates=False, out=out,
                                      ws=scratch)
            return output
        # Non-last axis (or a non-contiguous out): compute on the moved
        # view, then copy into the caller's buffer.
        moved = x if last_axis else np.moveaxis(x, axis, -1)
        output, _ = self._forward(moved, want_intermediates=False, ws=scratch)
        if not last_axis:
            output = np.moveaxis(output, -1, axis)
        if out is None:
            return output
        np.copyto(out, output)
        return out

    def run(self, x: np.ndarray, axis: int = -1) -> SoftermaxResult:
        """Run the fused kernel, retaining every intermediate signal.

        Returns the same :class:`SoftermaxResult` (and intermediate arrays)
        as ``SoftermaxPipeline.run`` on the same input.
        """
        moved = np.moveaxis(np.asarray(x, dtype=np.float64), axis, -1)
        _, result = self._forward(moved, want_intermediates=True)
        return result

    def online_stats(self, x: np.ndarray,
                     ws: Optional[KernelWorkspace] = None):
        """Front half of the kernel for streaming consumers.

        Returns ``(unnormed, slice_maxes, running_max, running_sum)`` --
        bitwise the same values as the matching intermediates of
        :meth:`run` on the same input (they are produced by the same code
        path), but *without* the renormalize-and-divide back end and
        without allocating an output.  ``unnormed`` is shaped like ``x``
        and holds the unnormalized exponential codes times the unnormed
        resolution, relative to the per-slice maxima ``slice_maxes``.

        This is the primitive the chunked attention path
        (:func:`repro.nn.functional.chunked_masked_attention`) calls per
        key/value block: blocks are merged downstream with power-of-two
        shifts on ``(running_max, running_sum)`` -- the online-normalizer
        recurrence at block granularity -- so nothing quadratic in the
        sequence length is ever materialized.  ``unnormed`` may live in
        ``ws``; consume it before the next call on the same workspace.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            u, sm, rm, rs = self.online_stats(x[None, :], ws=ws)
            return u[0], sm[0], rm[0], rs[0]
        cfg = self.config
        length = x.shape[-1]
        if length == 0:
            raise ValueError("softermax requires a non-empty reduction axis")
        if self._lut_codes is None or not cfg.use_online_normalization:
            # Exotic operating point or the no-online ablation: take the
            # intermediates from the vectorized float path (still bitwise
            # vs the pipeline).  Without online normalization the "state"
            # is the broadcast global max and the whole-row sum, which the
            # block merge downstream handles unchanged.
            _, result = self._forward_float(x, want_intermediates=True)
            i = result.intermediates
            return i.unnormed, i.slice_maxes, i.global_max, i.denominator

        # --- input quantization, straight to int32 codes (as _forward) --- #
        in_fmt = cfg.input_fmt
        buf = self._take(ws, "fused.buf", x.shape, np.float64)
        np.multiply(x, 1.0 / self._in_res, out=buf)  # exact: power of 2
        buf += 0.5
        np.floor(buf, out=buf)
        _clip(buf, in_fmt.min_code, in_fmt.max_code, buf)
        icodes = self._take(ws, "fused.icodes", x.shape, np.int32)
        np.copyto(icodes, buf, casting="unsafe")

        width = cfg.slice_width
        num_slices = (length + width - 1) // width
        padded_len = num_slices * width
        lead = x.shape[:-1]
        if padded_len != length:
            padded = self._take(ws, "fused.padded", lead + (padded_len,),
                                np.int32)
            padded[..., length:] = in_fmt.min_code
            padded[..., :length] = icodes
            lane_pad = (np.arange(padded_len) >= length).reshape(num_slices,
                                                                 width)
        else:
            padded = icodes
            lane_pad = None
        tiles = padded.reshape(lead + (num_slices, width))

        # --- per-slice maxima + LUT gather (as _forward) ------------------ #
        slice_mc = tiles.max(axis=-1)
        mcq = self._quantize_max_codes(slice_mc)
        slice_max_f = mcq * self._max_res
        if self._max_scale == 1:
            offset = mcq + self._lo_code
        else:
            offset = mcq * self._max_scale + self._lo_code
        off = offset[..., :, None]
        idx = self._take(ws, "fused.idx", tiles.shape, self._idx_dtype)
        if self._in_scale == 1:
            np.subtract(tiles, off, out=idx, casting="unsafe")
        else:
            np.multiply(tiles, self._in_scale, out=idx, casting="unsafe")
            np.subtract(idx, off, out=idx, casting="unsafe")
        ucodes = self._take(ws, "fused.ucodes", tiles.shape, self._work_dtype)
        self._lut_codes.take(idx, mode="clip", out=ucodes)
        if lane_pad is not None:
            ucodes[..., lane_pad] = 0

        # --- merged (max, sum) state (as _forward) ------------------------ #
        sum_codes = self._quantize_sum_codes(ucodes.sum(axis=-1,
                                                        dtype=np.int64))
        running_max, rs_codes = self._online_merge(slice_max_f, sum_codes)
        # repro: allow(R1): O(rows) sum-code cast, not O(rows*len)
        running_sum = rs_codes.astype(np.int64) * self._sum_res

        ufloat = self._take(ws, "fused.ufloat", tiles.shape, np.float64)
        np.multiply(ucodes, self._un_res, out=ufloat)
        unnormed = ufloat.reshape(lead + (padded_len,))[..., :length]
        return unnormed, slice_max_f, running_max, running_sum

    @staticmethod
    def _take(ws: Optional[KernelWorkspace], key: str, shape, dtype):
        """Scratch array of ``shape``: workspace-backed or freshly allocated."""
        if ws is None:
            return np.empty(shape, dtype=dtype)
        return ws.take_shaped(key, shape, dtype)

    def _forward(self, moved: np.ndarray, want_intermediates: bool,
                 out: Optional[np.ndarray] = None,
                 ws: Optional[KernelWorkspace] = None):
        cfg = self.config
        length = moved.shape[-1]
        if length == 0:
            raise ValueError("softermax requires a non-empty reduction axis")
        if moved.ndim == 1:
            # Process a lone row as a batch of one; per-row state arrays
            # (running max/sum) must be arrays, not scalars.
            inner_out = None if out is None else out[None, :]
            output, result = self._forward(moved[None, :], want_intermediates,
                                           out=inner_out, ws=ws)
            output = out if out is not None else np.squeeze(output, axis=0)
            if result is not None:
                i = result.intermediates
                result = SoftermaxResult(SoftermaxIntermediates(
                    *(np.squeeze(a, axis=0) for a in (
                        i.quantized_input, i.slice_maxes, i.unnormed,
                        i.global_max, i.denominator, i.reciprocal, i.output))
                ))
            return output, result
        if self._lut_codes is None:
            # Exotic operating point (diff LUT too large): vectorized float
            # path, still fused, still bitwise-identical.
            output, result = self._forward_float(moved, want_intermediates)
            if out is not None:
                np.copyto(out, output)
                output = out
            else:
                record_output_allocation()
            return output, result

        # --- input quantization, straight to int32 codes ----------------- #
        in_fmt = cfg.input_fmt
        buf = self._take(ws, "fused.buf", moved.shape, np.float64)
        np.multiply(moved, 1.0 / self._in_res, out=buf)  # exact: power of 2
        buf += 0.5
        np.floor(buf, out=buf)
        _clip(buf, in_fmt.min_code, in_fmt.max_code, buf)
        icodes = self._take(ws, "fused.icodes", moved.shape, np.int32)
        np.copyto(icodes, buf, casting="unsafe")

        width = cfg.slice_width
        num_slices = (length + width - 1) // width
        padded_len = num_slices * width
        lead = moved.shape[:-1]

        if padded_len != length:
            padded = self._take(ws, "fused.padded", lead + (padded_len,),
                                np.int32)
            padded[..., length:] = in_fmt.min_code
            padded[..., :length] = icodes
            lane_pad = (np.arange(padded_len) >= length).reshape(num_slices, width)
        else:
            padded = icodes
            lane_pad = None
        tiles = padded.reshape(lead + (num_slices, width))

        # --- per-slice maxima (on the small reduced array) ---------------- #
        # max and ceil commute (both monotone), so reduce first.
        slice_mc = tiles.max(axis=-1)  # (..., num_slices) input codes
        if cfg.use_online_normalization:
            mcq = self._quantize_max_codes(slice_mc)  # max_fmt codes
            slice_max_f = mcq * self._max_res
            ref_mcq = mcq
        else:
            mcq_g = self._quantize_max_codes(slice_mc.max(axis=-1))
            global_max = mcq_g * self._max_res
            slice_max_f = np.ascontiguousarray(
                np.broadcast_to(global_max[..., None], lead + (num_slices,))
            )
            ref_mcq = mcq_g[..., None]

        # --- unnormalized exponentials: one gather ------------------------ #
        if self._max_scale == 1:
            offset = ref_mcq + self._lo_code  # small array
        else:
            offset = ref_mcq * self._max_scale + self._lo_code
        off = offset[..., :, None] if cfg.use_online_normalization \
            else offset[..., None]
        # The downcast to the narrow index dtype is exact: the bounds were
        # enumerated at LUT-build time over every possible code pair.
        idx = self._take(ws, "fused.idx", tiles.shape, self._idx_dtype)
        if self._in_scale == 1:
            np.subtract(tiles, off, out=idx, casting="unsafe")
        else:
            np.multiply(tiles, self._in_scale, out=idx, casting="unsafe")
            np.subtract(idx, off, out=idx, casting="unsafe")
        ucodes = self._take(ws, "fused.ucodes", tiles.shape, self._work_dtype)
        self._lut_codes.take(idx, mode="clip", out=ucodes)
        if lane_pad is not None:
            ucodes[..., lane_pad] = 0

        # --- denominator --------------------------------------------------- #
        if cfg.use_online_normalization:
            sum_codes = self._quantize_sum_codes(ucodes.sum(axis=-1, dtype=np.int64))
            running_max, rs_codes = self._online_merge(slice_max_f, sum_codes)
            # repro: allow(R1): O(rows) sum-code cast, not O(rows*len)
            rs_codes = rs_codes.astype(np.int64)
            running_sum = rs_codes * self._sum_res
        else:
            running_max = global_max
            rs_codes = self._quantize_sum_codes(ucodes.sum(axis=(-2, -1),
                                                           dtype=np.int64))
            running_sum = rs_codes * self._sum_res

        if self._recip_values is not None:
            reciprocal = self._recip_values.take(rs_codes)
        else:
            reciprocal = self.reciprocal_unit(running_sum)

        # --- renormalize and divide ---------------------------------------- #
        shift_exp = slice_max_f - running_max[..., None]  # <= 0 by construction
        output, ufloat = self._normalize(ucodes, shift_exp, reciprocal,
                                         want_intermediates, length, out=out)

        if not want_intermediates:
            return output, None

        intermediates = SoftermaxIntermediates(
            quantized_input=icodes * self._in_res,
            slice_maxes=slice_max_f,
            unnormed=ufloat.reshape(lead + (padded_len,))[..., :length],
            global_max=running_max,
            denominator=running_sum,
            reciprocal=reciprocal,
            output=output,
        )
        return output, SoftermaxResult(intermediates)

    # ------------------------------------------------------------------ #
    # stages
    # ------------------------------------------------------------------ #
    def _quantize_max_codes(self, mc: np.ndarray) -> np.ndarray:
        """Input-grid max codes -> ``max_fmt`` codes (IntMax + requantize).

        Matches ``quantize(integer_max(...), max_fmt, NEAREST)`` exactly: an
        integer ceiling re-expressed on the max grid is already on-grid, so
        the NEAREST rounding is the identity and only the saturation
        remains.  The non-integer ablation rounds in float (the arrays here
        are per-slice, not per-element).
        """
        cfg = self.config
        fi = cfg.input_fmt.frac_bits
        fm = cfg.max_fmt.frac_bits
        if cfg.use_integer_max:
            ceil_int = (mc + ((1 << fi) - 1)) >> fi  # ceil(code / 2**fi)
            scaled = ceil_int << fm
        else:
            if fm >= fi:
                scaled = mc << (fm - fi)
            else:
                scaled = np.floor(mc * (self._in_res / self._max_res) + 0.5)
        # repro: allow(R1): O(rows*slices) max-code cast, small vs the tiles
        return _clip(scaled, cfg.max_fmt.min_code,
                     cfg.max_fmt.max_code).astype(np.int32)

    def _quantize_sum_codes(self, sum_codes: np.ndarray) -> np.ndarray:
        """Integer round-to-nearest of unnormed-code sums into sum codes.

        Sums of grid values are exact in int64 (the widest plausible format
        plus the row-length bits fits easily), so this reproduces the
        pipeline's ``quantize(np.sum(...), sum_fmt, NEAREST)`` bit for bit.
        """
        cfg = self.config
        shift = cfg.unnormed_fmt.frac_bits - cfg.sum_fmt.frac_bits
        if shift > 0:
            codes = (sum_codes + (1 << (shift - 1))) >> shift
        else:
            codes = sum_codes << (-shift)
        return _clip(codes, cfg.sum_fmt.min_code, cfg.sum_fmt.max_code)

    def _online_merge(self, slice_max_f: np.ndarray, sum_codes: np.ndarray):
        """The online-normalization recurrence over the slice axis.

        Each step quantizes the running sum, so the loop is inherently
        sequential -- but it runs on per-row state arrays (tiny next to the
        full tensor) with all shift factors precomputed, and it tracks the
        running sum in code units (an exact power-of-two rescaling of the
        pipeline's value-domain expression, hence bitwise-equal).
        """
        cfg = self.config
        num_slices = slice_max_f.shape[-1]
        # Work slice-major: the loop then indexes with a plain scalar and
        # every per-step operand is a contiguous per-row state array.
        perm = (slice_max_f.ndim - 1,) + tuple(range(slice_max_f.ndim - 1))
        smf = slice_max_f.transpose(perm)
        acc = np.maximum.accumulate(smf, axis=0)
        running_max = acc[-1]
        # repro: allow(R1): O(slices*rows) merge-state staging
        sc = sum_codes.transpose(perm).astype(np.float64)
        if num_slices == 1:
            return running_max, sc[0]

        # One reused (num_slices, rows) temporary carries both shift-factor
        # families: it holds the local shifts just long enough to rescale the
        # slice sums in place (``sc`` becomes ``local``), then is overwritten
        # with the running-state shifts.  Peak state of the recurrence is
        # three slice-major arrays (acc, sc, tmp) instead of five.
        tmp = np.subtract(smf, acc)
        np.power(2.0, tmp, out=tmp)  # local shift factors
        needs_round = (tmp != 1.0).reshape(num_slices, -1).any(axis=1)
        sc *= tmp  # local = slice sums rescaled (exact: powers of two)
        np.subtract(acc[:-1], acc[1:], out=tmp[:-1])
        run_shift = np.power(2.0, tmp[:-1], out=tmp[:-1])

        lo = float(cfg.sum_fmt.min_code)
        hi = float(cfg.sum_fmt.max_code)
        # Steps where every row's shift factor is 1.0 can skip work: the
        # rescale multiply is the identity, and once both shifts are 1 the
        # sum of two integer code arrays is already on-grid, so the
        # round-to-nearest is the identity too (the state is always
        # integer-valued after a floor).  Common case: the running maximum
        # stabilizes after the first few slices.
        needs_mul = (run_shift != 1.0).reshape(num_slices - 1, -1).any(axis=1)
        # repro: allow(R1): O(rows) running-state seed for the recurrence
        rs = sc[0].copy()
        for s in range(1, num_slices):
            if needs_mul[s - 1]:
                rs *= run_shift[s - 1]
            rs += sc[s]
            if needs_mul[s - 1] or needs_round[s]:
                rs += 0.5
                np.floor(rs, out=rs)
            _clip(rs, lo, hi, rs)
        return running_max, rs

    def _normalize(self, ucodes, shift_exp, reciprocal, want_intermediates,
                   length, out=None):
        """Renormalize the numerators and multiply by the reciprocal.

        The integer fast path applies when the per-slice shifts are pure
        powers of two (always true with integer maxima unless a maximum
        saturated at the ``max_fmt`` ceiling): the FLOOR requantization is a
        right shift of the codes and the final NEAREST rounding is an
        add-and-shift.  Otherwise fall back to the pipeline's elementwise
        float expression, which is identical by construction.

        Returns the final *unpadded* ``(..., length)`` output: the last
        gather reads the valid lanes through a strided view of the padded
        tiles and writes straight into ``out`` when given, so the in-place
        mode adds no staging copy over the allocate mode.
        """
        cfg = self.config
        lead = ucodes.shape[:-2]
        padded_len = ucodes.shape[-2] * ucodes.shape[-1]
        ufloat = ucodes * self._un_res if want_intermediates else None
        integer_shifts = bool(np.all(shift_exp == np.floor(shift_exp)))
        if not integer_shifts:
            if ufloat is None:
                ufloat = ucodes * self._un_res
            shift = np.power(2.0, shift_exp)
            renormed = quantize(ufloat * shift[..., None], cfg.unnormed_fmt,
                                RoundingMode.FLOOR)
            output_tiles = quantize(renormed * reciprocal[..., None, None],
                                    cfg.output_fmt, RoundingMode.NEAREST)
            output = output_tiles.reshape(lead + (padded_len,))[..., :length]
            if out is not None:
                np.copyto(out, output)
                return out, ufloat
            record_output_allocation()
            return output, ufloat

        # shift_exp <= 0; cap the shift count below the work dtype's bit
        # width (the codes are long gone to zero by then).
        # repro: allow(R1): O(rows) shift-count cast
        k = np.minimum(-shift_exp, float(self._max_shift)).astype(self._work_dtype)
        # repro: allow(R1): O(rows) reciprocal-code cast
        recip_codes = np.rint(reciprocal / self._recip_res).astype(self._work_dtype)
        # The product overwrites the unnormalized codes in place: they are
        # not read again (the intermediates snapshot was taken above).
        prod = ucodes
        if k.any():
            np.right_shift(ucodes, k[..., None], out=prod)
            prod *= recip_codes[..., None, None]
        else:
            np.multiply(ucodes, recip_codes[..., None, None], out=prod)
        out_shift = (cfg.unnormed_fmt.frac_bits + cfg.recip_fmt.frac_bits
                     - cfg.output_fmt.frac_bits)
        if out_shift > 0:
            prod += 1 << (out_shift - 1)
            prod >>= out_shift
        else:
            prod <<= -out_shift
        _clip(prod, cfg.output_fmt.min_code, cfg.output_fmt.max_code, prod)
        codes = prod.reshape(lead + (padded_len,))
        if padded_len != length:
            codes = codes[..., :length]
        if out is None:
            out = np.empty(lead + (length,), dtype=np.float64)
            record_output_allocation()
        if self._out_values is not None:
            self._out_values.take(codes, out=out)
        else:
            np.copyto(out, codes)
            out *= self._out_res
        return out, ufloat

    # ------------------------------------------------------------------ #
    # float fallback (no diff LUT)
    # ------------------------------------------------------------------ #
    # Cold fallback for operating points too wide to tabulate; whole-tensor
    # float math allocates by design.  # repro: allow(R1)
    def _forward_float(self, moved: np.ndarray, want_intermediates: bool):
        """Whole-tensor float path for operating points too wide to tabulate.

        Every elementwise expression is the pipeline's own, applied to the
        padded tile view at once instead of slice by slice.
        """
        cfg = self.config
        length = moved.shape[-1]
        quantized = quantize(moved, cfg.input_fmt, RoundingMode.NEAREST)

        width = cfg.slice_width
        num_slices = (length + width - 1) // width
        padded_len = num_slices * width
        lead = quantized.shape[:-1]

        if padded_len != length:
            padded = np.full(lead + (padded_len,), -np.inf, dtype=np.float64)
            padded[..., :length] = quantized
            lane_pad = (np.arange(padded_len) >= length).reshape(num_slices, width)
        else:
            padded = quantized
            lane_pad = None
        tiles = padded.reshape(lead + (num_slices, width))

        # max and ceil commute, so reduce first (pads are -inf, never max).
        slice_mc = tiles.max(axis=-1)
        if cfg.use_integer_max:
            slice_mc = np.ceil(slice_mc)
        local_max = quantize(slice_mc, cfg.max_fmt, RoundingMode.NEAREST)

        if cfg.use_online_normalization:
            slice_maxes = local_max
            ref_max = local_max[..., :, None]
        else:
            if cfg.use_integer_max:
                global_max = integer_max(quantized, axis=-1)
            else:
                global_max = np.max(quantized, axis=-1)
            global_max = quantize(global_max, cfg.max_fmt, RoundingMode.NEAREST)
            slice_maxes = np.ascontiguousarray(
                np.broadcast_to(global_max[..., None], lead + (num_slices,))
            )
            ref_max = global_max[..., None, None]

        diff = tiles - ref_max
        if lane_pad is not None:
            diff = np.where(lane_pad, 0.0, diff)
        unnormed = self._pow2(diff)
        if lane_pad is not None:
            unnormed = np.where(lane_pad, 0.0, unnormed)

        if cfg.use_online_normalization:
            local_sum = quantize(unnormed.sum(axis=-1), cfg.sum_fmt,
                                 RoundingMode.NEAREST)
            sum_codes = np.rint(local_sum / self._sum_res).astype(np.int64)
            running_max, rs_codes = self._online_merge(local_max, sum_codes)
            running_sum = rs_codes * self._sum_res
        else:
            running_max = global_max
            running_sum = quantize(unnormed.sum(axis=(-2, -1)), cfg.sum_fmt,
                                   RoundingMode.NEAREST)

        reciprocal = self.reciprocal_unit(running_sum)

        shift = np.power(2.0, slice_maxes - running_max[..., None])
        renormed = quantize(unnormed * shift[..., None], cfg.unnormed_fmt,
                            RoundingMode.FLOOR)
        output_tiles = quantize(renormed * reciprocal[..., None, None],
                                cfg.output_fmt, RoundingMode.NEAREST)

        output = output_tiles.reshape(lead + (padded_len,))[..., :length]
        if not want_intermediates:
            return output, None
        intermediates = SoftermaxIntermediates(
            quantized_input=quantized,
            slice_maxes=slice_maxes,
            unnormed=unnormed.reshape(lead + (padded_len,))[..., :length],
            global_max=running_max,
            denominator=running_sum,
            reciprocal=reciprocal,
            output=output,
        )
        return output, SoftermaxResult(intermediates)


@lru_cache(maxsize=None)
def get_fused_kernel(config: SoftermaxConfig | None = None,
                     lpw_method: str = "endpoint") -> FusedSoftermaxKernel:
    """Memoized kernel factory: one kernel (and LUT) per operating point."""
    return FusedSoftermaxKernel(config or DEFAULT_CONFIG, lpw_method=lpw_method)


def fused_softermax(
    x: np.ndarray,
    axis: int = -1,
    config: SoftermaxConfig | None = None,
    out: Optional[np.ndarray] = None,
    scratch: Optional[KernelWorkspace] = None,
) -> np.ndarray:
    """Drop-in fused Softermax over ``axis`` (see :func:`repro.core.softermax`).

    Bitwise-identical to the slice-loop reference, an order of magnitude
    faster on batched attention-score tensors, and cached per config so
    repeated calls pay no table-construction cost.  ``out``/``scratch``
    follow the registry's workspace-aware kernel contract.
    """
    return get_fused_kernel(config)(x, axis=axis, out=out, scratch=scratch)
