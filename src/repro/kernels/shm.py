"""Shared-memory lifecycle helpers used by every shm consumer in the repo.

Two independent subsystems put tensors into POSIX shared memory -- the
parallel Softermax kernel (:mod:`repro.kernels.parallel`) and the serving
snapshot bundle (:mod:`repro.serving.snapshot`) -- and both hit the same
CPython wart: under the ``spawn`` start method a child that merely
*attaches* to a segment registers it with its own ``resource_tracker``,
which then unlinks the parent's segment when the child exits (and prints a
leaked-resource warning on the way out).  The stdlib fix is to unregister
the attachment, but the tracker is keyed by the segment's *raw* name
(``shm._name``, with the POSIX leading slash), a private attribute.

This module owns that workaround in one place:

* :func:`tracker_key` reads ``shm._name`` behind a guard, reconstructing
  the raw name from the public ``shm.name`` if a future CPython renames
  the private attribute -- so an interpreter upgrade degrades to a
  correct fallback instead of silently resurrecting the double-unlink.
* :func:`unregister_inherited_segment` performs the unregistration
  (a no-op under ``fork``, where children share the parent's tracker).
* :func:`attach_shared_memory` is the one-call attach-without-ownership
  helper both subsystems use.
"""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing import shared_memory


def tracker_key(shm: shared_memory.SharedMemory) -> str:
    """The name the ``resource_tracker`` knows this segment by.

    CPython registers segments under the raw OS name (``shm._name``,
    which keeps the leading ``/`` on POSIX) rather than the public
    ``shm.name`` (which strips it).  Version-guarded: if the private
    attribute disappears or changes type, rebuild the raw name from the
    public one instead of crashing or silently unregistering nothing.
    """
    name = getattr(shm, "_name", None)
    if isinstance(name, str) and name:
        return name
    public = shm.name
    if os.name != "nt" and not public.startswith("/"):
        return "/" + public
    return public


def unregister_inherited_segment(shm: shared_memory.SharedMemory) -> bool:
    """Detach ``shm`` from this process's resource tracker (best effort).

    Call after attaching (``create=False``) to a segment owned by another
    process under the ``spawn`` start method, where the child's tracker
    would otherwise unlink the parent's segment at child exit.  Under
    ``fork`` the tracker is shared and no unregistration is needed (or
    performed).  Returns ``True`` when an unregistration was attempted.
    """
    if multiprocessing.get_start_method(allow_none=True) == "fork":
        return False
    try:  # pragma: no cover - spawn-only housekeeping
        from multiprocessing import resource_tracker

        resource_tracker.unregister(tracker_key(shm), "shared_memory")
        return True
    except Exception:  # pragma: no cover - tracker may be gone at exit
        return False


def attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking ownership of it.

    The returned handle must be ``close()``d by the caller; it is never
    ``unlink()``ed here -- destruction belongs to the publishing process.
    """
    shm = shared_memory.SharedMemory(name=name)
    unregister_inherited_segment(shm)
    return shm
