"""Command-line interface for the Softermax reproduction.

Every paper experiment can be regenerated from the command line::

    python -m repro.cli table1
    python -m repro.cli table4
    python -m repro.cli figure1 --seq-lens 128 384 1024 2048
    python -m repro.cli figure5
    python -m repro.cli table3 --tasks sst2 rte --model tiny-base
    python -m repro.cli compare-softmax --seq-len 384 --kernel softermax-fused
    python -m repro.cli latency
    python -m repro.cli model-cost --model bert-large --seq-len 512
    python -m repro.cli kernels

Beyond the paper experiments, the serving layer is driven from here too::

    python -m repro.cli serve --max-batch-size 32 --max-wait-ms 2
    python -m repro.cli daemon --port 7777 --max-restarts 5
    python -m repro.cli loadtest --requests 512 --batch-size 32
    python -m repro.cli loadtest --chaos --quick --deadline-ms 120

Softermax commands take a ``--kernel`` selector (see ``repro.cli kernels``
for the registry); the default ``auto`` resolves to the fused fast path,
which is bitwise-identical to the slice-loop oracle.

(The Table III command trains real NumPy models and can take minutes for the
full task list; the default runs a single quick task.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.core import (
    SoftermaxConfig,
    attention_score_batch,
    base2_softmax,
    compare_softmax,
    ibert_softmax,
    lut_exp_softmax,
    softmax_reference,
    split_exp_softmax,
)
from repro.kernels import (
    auto_kernel_choice,
    available_kernels,
    dispatch_candidates,
    get_kernel,
    resolve_kernel,
)
from repro.reporting import format_table, format_table1, format_table3, format_table4, series_to_csv


def _cmd_table1(args: argparse.Namespace) -> int:
    print(format_table1(SoftermaxConfig.paper_table1()))
    return 0


def _cmd_table4(args: argparse.Namespace) -> int:
    from repro.hardware import AttentionWorkload, PEConfig, compute_table4

    pe_config = PEConfig.wide32() if args.width == 32 else PEConfig.wide16()
    result = compute_table4(pe_config=pe_config,
                            workload=AttentionWorkload(seq_len=args.seq_len))
    print(format_table4(result))
    return 0


def _cmd_figure1(args: argparse.Namespace) -> int:
    from repro.eval import runtime_fraction_series
    from repro.models import BertConfig

    config = (BertConfig.bert_large(max_seq_len=max(args.seq_lens))
              if args.model == "bert-large"
              else BertConfig.bert_base(max_seq_len=max(args.seq_lens)))
    series = runtime_fraction_series(config, tuple(args.seq_lens))
    print(series_to_csv("seq_len", series.seq_lens, series.fractions))
    return 0


def _cmd_figure5(args: argparse.Namespace) -> int:
    from repro.eval import energy_sweep_series

    for series in energy_sweep_series(seq_lens=tuple(args.seq_lens),
                                      vector_sizes=tuple(args.widths)):
        print(series_to_csv(
            "seq_len", series.seq_lens,
            {
                f"softermax_uJ_{series.vector_size}w": series.softermax_energy_uj,
                f"designware_uJ_{series.vector_size}w": series.baseline_energy_uj,
            },
        ))
        print()
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.data import GLUE_TASK_NAMES, make_glue_task, make_squad
    from repro.eval import run_accuracy_comparison
    from repro.models import BertConfig, FinetuneConfig

    tasks = []
    for name in args.tasks:
        if name == "squad":
            tasks.append(make_squad(num_train=args.num_train, num_dev=args.num_dev))
        elif name in GLUE_TASK_NAMES:
            tasks.append(make_glue_task(name, num_train=args.num_train,
                                        num_dev=args.num_dev))
        else:
            print(f"unknown task {name!r}; choose from {'squad', *GLUE_TASK_NAMES}",
                  file=sys.stderr)
            return 2

    model_config = (BertConfig.tiny_large() if args.model == "tiny-large"
                    else BertConfig.tiny_base())
    finetune_config = FinetuneConfig(pretrain_epochs=args.epochs,
                                     finetune_epochs=max(1, args.epochs // 3),
                                     seed=args.seed)
    kernel_options = _kernel_options(args)
    if args.kernel != "auto" or kernel_options:
        # Rebind the registered "softermax" variant to the requested kernel
        # so the whole fine-tuning stack picks it up.
        from repro.nn.functional import make_softermax_variant, register_softmax_variant

        _resolve_kernel_or_exit(args.kernel, bit_accurate_only=True,
                                **kernel_options)
        register_softmax_variant(make_softermax_variant(
            kernel=args.kernel, kernel_options=kernel_options))
    comparison = run_accuracy_comparison(tasks, model_config, finetune_config)
    print(format_table3({args.model: comparison}))
    print(f"\naverage delta (Softermax - baseline): {comparison.average_delta():+.2f}")
    return 0


def _kernel_options(args: argparse.Namespace) -> dict:
    """Engine knobs (``--workers``, ``--block-rows``) present on ``args``.

    Serving commands rename the pool knob ``--kernel-workers`` (their
    ``--workers`` means shard *processes*); prefer it when present.
    """
    options = {}
    if hasattr(args, "kernel_workers"):
        workers = args.kernel_workers
    else:
        workers = getattr(args, "workers", None)
    if workers is not None:
        options["workers"] = workers
    if getattr(args, "block_rows", None) is not None:
        options["block_rows"] = args.block_rows
    return options


def _zero_if_none(value):
    """Zero-request summaries print zeros, not ``None`` cells."""
    return 0.0 if value is None else value


def _add_kernel_knobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes for the parallel kernel "
                             "(default: cpu count)")
    parser.add_argument("--block-rows", type=int, default=None,
                        help="rows per block for the blocked/parallel "
                             "kernels (default: adaptive)")


def _add_serving_knobs(parser: argparse.ArgumentParser) -> None:
    """Serving-tier knobs: here ``--workers`` means shard *processes*
    (0 = classic in-process service) and the kernel pool knob is renamed
    ``--kernel-workers`` to stay available without a collision."""
    parser.add_argument("--workers", type=int, default=0,
                        help="shard worker processes sharing one "
                             "shared-memory snapshot (0 = in-process "
                             "service; default: 0)")
    parser.add_argument("--kernel-workers", type=int, default=None,
                        help="worker processes for the parallel kernel "
                             "(default: cpu count)")
    parser.add_argument("--block-rows", type=int, default=None,
                        help="rows per block for the blocked/parallel "
                             "kernels (default: adaptive)")


def _resolve_kernel_or_exit(name: str, config=None,
                            bit_accurate_only: bool = False, **options):
    """Resolve a kernel name, exiting with a clean message on a bad name.

    ``bit_accurate_only`` restricts the choice to the Softermax family:
    commands that label their output "Softermax" must not silently run a
    float reference under that name.
    """
    try:
        spec = get_kernel(name)
    except (KeyError, ValueError):
        print(f"unknown kernel {name!r}; available: "
              f"{', '.join(['auto', *available_kernels()])}", file=sys.stderr)
        raise SystemExit(2) from None
    if bit_accurate_only and not spec.bit_accurate:
        accurate = [k for k in available_kernels() if get_kernel(k).bit_accurate]
        print(f"kernel {name!r} is not a bit-accurate Softermax implementation; "
              f"choose from: {', '.join(['auto', *accurate])}", file=sys.stderr)
        raise SystemExit(2)
    try:
        return resolve_kernel(name, config, **options)
    except (TypeError, ValueError) as exc:
        # Unsupported option for this kernel, or an invalid option value
        # (e.g. workers=0): a usage error, not a crash.
        print(str(exc), file=sys.stderr)
        raise SystemExit(2) from None


def _cmd_compare_softmax(args: argparse.Namespace) -> int:
    scores = attention_score_batch(batch=args.batch, seq_len=args.seq_len,
                                   seed=args.seed)
    softermax_fn = _resolve_kernel_or_exit(args.kernel,
                                           SoftermaxConfig.paper_table1(),
                                           bit_accurate_only=True,
                                           **_kernel_options(args))
    variants = {
        "base-2 float": base2_softmax,
        "softermax (Table I)": softermax_fn,
        "i-bert polynomial": ibert_softmax,
        "LUT exp (64 entries)": lut_exp_softmax,
        "split high/low exp": split_exp_softmax,
    }
    rows = []
    for name, fn in variants.items():
        report = compare_softmax(fn, scores, reference_fn=softmax_reference)
        rows.append([name, report.max_abs_error, report.mean_abs_error,
                     report.argmax_agreement])
    print(format_table(
        ["variant", "max |err| vs base-e", "mean |err|", "argmax agreement"],
        rows, title=f"Softmax approximations on seq_len={args.seq_len} scores",
        float_digits=4))
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    from repro.reporting import format_table

    auto_pick = auto_kernel_choice(args.batch, args.seq_len,
                                   workers=args.workers)
    rows = []
    for name in available_kernels():
        spec = get_kernel(name)
        marker = " <- auto" if name == auto_pick else ""
        if spec.supports_out and spec.supports_scratch:
            inplace = "out+scratch"
        elif spec.supports_out:
            inplace = "out"
        else:
            inplace = "copy"
        rows.append([name + marker, "yes" if spec.bit_accurate else "no",
                     inplace, spec.selection or "-", spec.description])
    print(format_table(
        ["kernel", "bit-accurate", "out=/scratch", "selection",
         "description"], rows,
        title='Registered softmax kernels ("auto" dispatches per call)'))
    print("\nadaptive candidates (from the registry, in registration "
          "order): " + " / ".join(dispatch_candidates()))
    print(f"auto resolves to: {auto_pick} for shape "
          f"(batch={args.batch}, seq_len={args.seq_len}, "
          f"elements={args.batch * args.seq_len})")
    return 0


def _cmd_bench_kernels(args: argparse.Namespace) -> int:
    from repro.eval import kernel_timing_sweep
    from repro.reporting import format_table

    from repro.kernels import supported_options

    options = _kernel_options(args)
    for name in args.kernels:
        _resolve_kernel_or_exit(name)
        if options:
            # Shared knobs only reach the kernels that understand them (the
            # sweep filters the same way), so `--block-rows` can ride along
            # a list that also contains e.g. the oracle.
            accepted = supported_options(name)
            _resolve_kernel_or_exit(
                name, **{k: v for k, v in options.items() if k in accepted})
    points = kernel_timing_sweep(kernels=tuple(args.kernels),
                                 seq_lens=tuple(args.seq_lens),
                                 batches=(args.batch,),
                                 kernel_options=options)
    rows = [[p.kernel, p.seq_len, p.batch, p.best_seconds * 1e3,
             p.rows_per_second,
             "-" if p.peak_mem_bytes is None else p.peak_mem_bytes / 1e6]
            for p in points]
    print(format_table(
        ["kernel", "seq_len", "batch", "best ms/call", "rows/s",
         "peak MB/call"], rows,
        title="Softmax kernel timing", float_digits=3))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Interactive stdin loop over the dynamic-batching inference service."""
    import numpy as np

    from repro.serving import (
        RestartPolicy,
        ServiceConfig,
        build_encoder_service,
        build_sharded_service,
    )

    config = ServiceConfig(max_batch_size=args.max_batch_size,
                           max_wait_ms=args.max_wait_ms,
                           max_queue_depth=args.queue_depth,
                           cache_size=args.cache_size,
                           engine=args.engine,
                           fuse_qkv=args.fuse_qkv,
                           block_kv=args.block_kv)
    try:
        if args.workers > 0:
            service = build_sharded_service(
                model_name=args.model, kernel=args.kernel,
                kernel_options=_kernel_options(args), seed=args.seed,
                config=config, policy=RestartPolicy(seed=args.seed),
                num_workers=args.workers)
        else:
            service = build_encoder_service(
                model_name=args.model, kernel=args.kernel,
                kernel_options=_kernel_options(args),
                seed=args.seed, config=config)
    except (KeyError, TypeError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    mode = (f"{args.workers} shard processes" if args.workers > 0
            else "in-process")
    print(f"serving {args.model} (engine={config.engine}, "
          f"kernel={args.kernel}, {mode}, "
          f"max_batch_size={config.max_batch_size}, "
          f"max_wait_ms={config.max_wait_ms}); enter whitespace-separated "
          "token ids, 'quit' to exit", flush=True)
    # SIGINT/SIGTERM shut down gracefully: drain, print the final stats
    # snapshot, exit 0 -- not a traceback.  SIGTERM is mapped onto the
    # KeyboardInterrupt path so both signals share one handler.
    import signal

    def _sigterm(signum, frame):  # pragma: no cover - exercised via tests
        raise KeyboardInterrupt

    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:  # pragma: no cover - non-main thread
        pass
    interrupted = False
    try:
        with service:
            if args.workers > 0:
                # Settle the shard boot transient so the final snapshot
                # line reports steady-state worker health even for very
                # short sessions.
                service.wait_ready()
            try:
                for line in sys.stdin:
                    line = line.strip()
                    if not line:
                        continue
                    if line in ("quit", "exit"):
                        break
                    try:
                        tokens = [int(tok) for tok in line.split()]
                    except ValueError:
                        print(f"error: not a token-id line: {line!r}",
                              file=sys.stderr)
                        continue
                    try:
                        request = service.submit(tokens)
                        hidden = request.result(timeout=30.0)
                    except Exception as exc:  # noqa: BLE001 - user loop
                        print(f"error: {exc}", file=sys.stderr)
                        continue
                    pooled = np.round(hidden.mean(axis=0)[:4], 6).tolist()
                    print(f"ok tokens={len(tokens)} hidden={hidden.shape} "
                          f"cached={request.cached} pooled[:4]={pooled}",
                          flush=True)
            except KeyboardInterrupt:
                interrupted = True
            snap = service.snapshot()
    finally:
        if previous_sigterm is not None:
            signal.signal(signal.SIGTERM, previous_sigterm)
    if interrupted:
        print("\ninterrupted; draining and shutting down gracefully",
              flush=True)
    # A zero-request session has no latency samples; report zeros, not None.
    p = {key: _zero_if_none(snap[key]) for key in
         ("p50_ms", "p99_ms", "queue_wait_p50_ms", "queue_wait_p99_ms",
          "forward_p50_ms", "forward_p99_ms")}
    print(f"served {snap['completed']} requests "
          f"(p50={p['p50_ms']} ms, p99={p['p99_ms']} ms, "
          f"cache hit rate {snap['cache']['hit_rate']:.0%})")
    print(f"latency split: queue wait p50={p['queue_wait_p50_ms']} ms "
          f"p99={p['queue_wait_p99_ms']} ms; model forward "
          f"p50={p['forward_p50_ms']} ms p99={p['forward_p99_ms']} ms")
    if snap.get("sharded"):
        bundle = snap.get("snapshot") or {}
        print(f"shards: {snap['live_workers']}/{snap['workers']} workers "
              f"live, restarts by shard {snap['restarts_by_shard']}, "
              f"degraded={snap['degraded'] is not None}; snapshot "
              f"v{bundle.get('version')} checksum {bundle.get('checksum')} "
              f"({bundle.get('total_bytes')} bytes shared)")
    return 0


def _cmd_loadtest_chaos(args: argparse.Namespace) -> int:
    """Chaos loadtest: injected crashes/hangs/errors under supervision.

    The zero-drop and bitwise-transparency guarantees are **hard**
    assertions (nonzero exit on violation); latency numbers are reported
    warn-only, since fault injection makes tail latency a function of the
    schedule, not the serving layer.  With ``--workers N`` the chaos runs
    against the process-sharded service and the fault mix gains the
    process-grade kinds (SIGKILL, heartbeat stall, snapshot corruption).
    """
    from repro.serving.loadtest import (
        run_chaos_loadtest,
        run_sharded_chaos_loadtest,
    )

    num_requests = min(args.requests, 96) if args.quick else args.requests
    sharded = args.workers > 0
    try:
        if sharded:
            payload = run_sharded_chaos_loadtest(
                num_requests=num_requests, num_workers=args.workers,
                batch_size=args.batch_size, max_wait_ms=args.max_wait_ms,
                kill_rate=args.kill_rate, stall_rate=args.stall_rate,
                corrupt_rate=args.corrupt_rate, error_rate=args.error_rate,
                hang_timeout_s=args.hang_timeout,
                stall_timeout_s=args.stall_timeout,
                max_restarts=args.max_restarts,
                deadline_ms=args.deadline_ms,
                deadline_fraction=args.deadline_fraction,
                model_name=args.model, kernel=args.kernel, seed=args.seed)
        else:
            payload = run_chaos_loadtest(
                num_requests=num_requests, batch_size=args.batch_size,
                max_wait_ms=args.max_wait_ms, crash_rate=args.crash_rate,
                hang_rate=args.hang_rate, error_rate=args.error_rate,
                hang_seconds=args.hang_seconds,
                hang_timeout_s=args.hang_timeout,
                max_restarts=args.max_restarts, deadline_ms=args.deadline_ms,
                deadline_fraction=args.deadline_fraction,
                model_name=args.model, kernel=args.kernel, seed=args.seed)
    except (KeyError, TypeError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    seed = payload["faults"].get("seed", payload["workload"]["seed"])
    outcomes = payload["outcomes"]
    rows = [[name, count] for name, count in outcomes.items() if count]
    flavour = (f"{args.workers} shard processes, " if sharded else "")
    print(format_table(
        ["outcome", "requests"], rows,
        title=f"Chaos loadtest: {num_requests} requests, {flavour}"
              f"{payload['restarts']} restarts "
              f"(fault seed {seed})"))
    if sharded:
        bundle = payload.get("snapshot") or {}
        print(f"fault rates: {payload['faults']}; events: "
              f"{payload['events']}")
        print(f"shards: {payload['live_workers']}/{args.workers} live, "
              f"restarts by shard {payload['restarts_by_shard']}, "
              f"degraded={payload['degraded'] is not None}, "
              f"terminal={payload['terminal']}; snapshot "
              f"v{bundle.get('version')} checksum {bundle.get('checksum')}")
    else:
        print(f"fault schedule: {payload['faults']['counts']} over "
              f"{payload['faults']['forward_calls']} forward calls "
              f"({payload['faults']['injected']} injected); "
              f"events: {payload['events']}")
    print(f"latency (warn-only under faults): "
          f"p50={_zero_if_none(payload['p50_ms'])} ms "
          f"p99={_zero_if_none(payload['p99_ms'])} ms, "
          f"elapsed {payload['elapsed_seconds']}s")
    if args.output:
        import json
        from pathlib import Path

        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {out}")
    failures = []
    if not payload["zero_drop"]:
        failures.append(
            f"zero-drop violated: {outcomes['lost']} lost, "
            f"{outcomes['hung']} hung, {payload['unresolved']} unresolved "
            f"of {num_requests}")
    if not payload["bitwise_identical_to_solo"]:
        failures.append("served responses diverged bitwise from solo "
                        "inference across restarts")
    if failures:
        # The fault-schedule seed makes every failure replayable:
        # rerun with the same seed to reproduce the exact schedule.
        for failure in failures:
            print(f"FAIL: {failure} [fault seed {seed}]", file=sys.stderr)
        return 1
    print(f"zero-drop holds: {payload['resolved']}/{num_requests} requests "
          f"resolved (result or typed error); "
          f"{payload['bitwise_checked']} responses verified bitwise "
          "against solo inference")
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    """Synthetic open-loop client: batched vs sequential serving."""
    if args.chaos:
        return _cmd_loadtest_chaos(args)
    if args.workers > 0:
        print("--workers (shard processes) requires --chaos; the plain "
              "batched-vs-sequential loadtest is in-process only",
              file=sys.stderr)
        return 2
    from repro.serving.loadtest import batched_vs_sequential

    try:
        payload = batched_vs_sequential(
            num_requests=args.requests, batch_size=args.batch_size,
            max_wait_ms=args.max_wait_ms, min_tokens=args.min_tokens,
            max_tokens=args.max_tokens, model_name=args.model,
            kernel=args.kernel, engine=args.engine,
            block_kv=args.block_kv, seed=args.seed,
            duplicate_fraction=args.duplicate_fraction,
            cache_size=args.cache_size)
    except (KeyError, TypeError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    rows = []
    for label in ("sequential", "batched"):
        result = payload[label]
        # Sample-less columns (e.g. an all-cached run records no queue
        # waits) print as zeros rather than "None" cells.
        rows.append([label, result["batch_size"],
                     _zero_if_none(result["requests_per_second"]),
                     _zero_if_none(result["p50_ms"]),
                     _zero_if_none(result["p99_ms"]),
                     _zero_if_none(result["queue_wait_p50_ms"]),
                     _zero_if_none(result["forward_p50_ms"]),
                     result["mean_batch_size"] or 1.0])
    workload = payload["workload"]
    print(format_table(
        ["mode", "max batch", "req/s", "p50 ms", "p99 ms", "queue p50 ms",
         "fwd p50 ms", "mean batch"],
        rows,
        title=f"Serving loadtest: {workload['requests']} requests of "
              f"{workload['min_tokens']}-{workload['max_tokens']} tokens "
              f"({workload['model']}, engine={workload['engine']}, "
              f"kernel={workload['kernel']})",
        float_digits=2))
    print(f"\nbatched (batch {args.batch_size}) vs sequential throughput: "
          f"{payload['speedup_batched_vs_sequential']:.2f}x")
    print("cache hit rate: sequential "
          f"{payload['sequential']['cache_hit_rate']:.0%}, batched "
          f"{payload['batched']['cache_hit_rate']:.0%}")
    if args.output:
        import json
        from pathlib import Path

        out = Path(args.output)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {out}")
    return 0


def _cmd_daemon(args: argparse.Namespace) -> int:
    """TCP serving daemon over the supervised inference service.

    ``--workers N`` swaps the in-process supervised worker for N shard
    processes on one shared-memory snapshot; the TCP surface (protocol,
    deadlines, stats op) is identical.
    """
    from repro.serving import (
        RestartPolicy,
        ServiceConfig,
        build_sharded_service,
        build_supervised_service,
    )
    from repro.serving.daemon import daemon_smoke, run_daemon

    config = ServiceConfig(max_batch_size=args.max_batch_size,
                           max_wait_ms=args.max_wait_ms,
                           max_queue_depth=args.queue_depth,
                           cache_size=args.cache_size,
                           engine=args.engine,
                           fuse_qkv=args.fuse_qkv,
                           block_kv=args.block_kv)
    try:
        policy = RestartPolicy(max_restarts=args.max_restarts,
                               hang_timeout_s=args.hang_timeout,
                               seed=args.seed)
        if args.workers > 0:
            service = build_sharded_service(
                model_name=args.model, kernel=args.kernel,
                kernel_options=_kernel_options(args), seed=args.seed,
                config=config, policy=policy, num_workers=args.workers)
        else:
            service = build_supervised_service(
                model_name=args.model, kernel=args.kernel,
                kernel_options=_kernel_options(args), seed=args.seed,
                config=config, policy=policy)
    except (KeyError, TypeError, ValueError) as exc:
        print(exc.args[0] if exc.args else exc, file=sys.stderr)
        return 2
    if args.smoke:
        summary = daemon_smoke(service, num_requests=args.smoke)
        print(f"daemon smoke: {summary['ok']}/{summary['requests']} "
              f"requests ok over a real socket "
              f"({summary['connections_total']} connection(s)), "
              f"bitwise_identical_to_solo="
              f"{summary['bitwise_identical_to_solo']}")
        return 0 if (summary["ok"] == summary["requests"]
                     and summary["bitwise_identical_to_solo"]) else 1
    snap = run_daemon(service, host=args.host, port=args.port)
    print(f"daemon served {snap['daemon_requests_total']} requests over "
          f"{snap['connections_total']} connection(s); "
          f"restarts={snap['restarts']}/{snap['max_restarts']}, "
          f"p50={_zero_if_none(snap['p50_ms'])} ms "
          f"p99={_zero_if_none(snap['p99_ms'])} ms, "
          f"cache hit rate {snap['cache']['hit_rate']:.0%}")
    if snap.get("sharded"):
        bundle = snap.get("snapshot") or {}
        print(f"shards: {args.workers} workers, restarts by shard "
              f"{snap['restarts_by_shard']}, "
              f"degraded={snap['degraded'] is not None}; snapshot "
              f"v{bundle.get('version')} checksum {bundle.get('checksum')}")
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.hardware import latency_sweep

    rows = []
    for comparison in latency_sweep(seq_lens=tuple(args.seq_lens)):
        rows.append([comparison.seq_len, comparison.softermax_cycles,
                     comparison.baseline_cycles, comparison.speedup])
    print(format_table(
        ["seq_len", "softermax cycles/row", "baseline cycles/row", "speedup"],
        rows, title="Attention-row latency (single-pass online vs two-pass baseline)"))
    return 0


def _cmd_model_cost(args: argparse.Namespace) -> int:
    from repro.hardware import compare_model_attention
    from repro.models import BertConfig

    config = (BertConfig.bert_large(max_seq_len=args.seq_len)
              if args.model == "bert-large"
              else BertConfig.bert_base(max_seq_len=args.seq_len))
    comparison = compare_model_attention(config, args.seq_len)
    rows = [
        ["Softermax", comparison.softermax.energy_uj, comparison.softermax.cycles],
        ["DesignWare baseline", comparison.baseline.energy_uj, comparison.baseline.cycles],
        ["ratio (Softermax/baseline)", comparison.energy_ratio, comparison.cycle_ratio],
    ]
    print(format_table(
        ["design", "attention energy (uJ)", "attention cycles"],
        rows, title=f"{config.name} @ seq_len {args.seq_len}: SELF+Softmax cost",
        float_digits=3))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    import repro
    from repro.analysis import (
        LintEngine, default_rules, load_baseline, partition_findings,
        save_baseline,
    )

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.title}")
        return 0
    if args.rule:
        wanted = {r.upper() for r in args.rule}
        known = {rule.rule_id for rule in rules}
        unknown = wanted - known
        if unknown:
            print(f"repro lint: unknown rule(s): {', '.join(sorted(unknown))} "
                  f"(known: {', '.join(sorted(known))})")
            return 2
        rules = [rule for rule in rules if rule.rule_id in wanted]

    root = Path(args.root) if args.root else Path(repro.__file__).parent
    if not root.is_dir():
        print(f"repro lint: no such directory: {root}")
        return 2
    default_baseline = Path(__file__).resolve().parents[2] / "lint-baseline.json"
    baseline_path = Path(args.baseline) if args.baseline else default_baseline

    report = LintEngine(root, rules).run()

    if args.update_baseline:
        count = save_baseline(baseline_path, report.findings)
        print(f"repro lint: wrote {count} fingerprint(s) to {baseline_path}")
        return 0

    try:
        baseline = load_baseline(baseline_path)
    except ValueError as exc:
        print(f"repro lint: {exc}")
        return 2
    new, accepted, stale = partition_findings(report.findings, baseline)
    new_errors = [f for f in new if f.severity == "error"]

    if args.json:
        print(json.dumps({
            "modules_scanned": report.modules_scanned,
            "suppressed": report.suppressed,
            "new": [f.to_dict() for f in new],
            "accepted": [f.to_dict() for f in accepted],
            "stale_baseline": stale,
        }, indent=2))
    else:
        for finding in new:
            print(finding.format())
        summary = (f"repro lint: {report.modules_scanned} module(s), "
                   f"{len(new)} new finding(s) "
                   f"({len(new_errors)} error), {len(accepted)} baselined, "
                   f"{report.suppressed} suppressed inline")
        if stale:
            summary += (f"; {len(stale)} stale baseline entr"
                        f"{'y' if len(stale) == 1 else 'ies'} "
                        "(prune with --update-baseline)")
        print(summary)
    return 1 if new_errors else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of the Softermax paper (DAC 2021).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="print the Softermax bitwidths (Table I)")

    table4 = sub.add_parser("table4", help="area/energy ratios (Table IV)")
    table4.add_argument("--width", type=int, choices=(16, 32), default=32)
    table4.add_argument("--seq-len", type=int, default=384)

    figure1 = sub.add_parser("figure1", help="runtime breakdown vs seq len (Figure 1)")
    figure1.add_argument("--model", choices=("bert-base", "bert-large"),
                         default="bert-large")
    figure1.add_argument("--seq-lens", type=int, nargs="+",
                         default=[128, 256, 384, 512, 1024, 2048])

    figure5 = sub.add_parser("figure5", help="PE energy vs seq len (Figure 5)")
    figure5.add_argument("--seq-lens", type=int, nargs="+",
                         default=[128, 256, 384, 512, 1024, 2048, 4096])
    figure5.add_argument("--widths", type=int, nargs="+", default=[16, 32])

    table3 = sub.add_parser("table3", help="accuracy comparison (Table III)")
    table3.add_argument("--tasks", nargs="+", default=["sst2"])
    table3.add_argument("--model", choices=("tiny-base", "tiny-large"),
                        default="tiny-base")
    table3.add_argument("--num-train", type=int, default=512)
    table3.add_argument("--num-dev", type=int, default=128)
    table3.add_argument("--epochs", type=int, default=8)
    table3.add_argument("--seed", type=int, default=0)
    table3.add_argument("--kernel", default="auto",
                        help="Softermax kernel (see the 'kernels' command)")
    _add_kernel_knobs(table3)

    compare = sub.add_parser("compare-softmax",
                             help="numerical comparison of softmax approximations")
    compare.add_argument("--seq-len", type=int, default=384)
    compare.add_argument("--batch", type=int, default=16)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--kernel", default="auto",
                         help="Softermax kernel (see the 'kernels' command)")
    _add_kernel_knobs(compare)

    kernels = sub.add_parser("kernels",
                             help="list the registered softmax kernels and "
                                  "the auto selection for a shape")
    kernels.add_argument("--batch", type=int, default=8,
                         help="rows of the probe shape auto is resolved for")
    kernels.add_argument("--seq-len", type=int, default=512,
                         help="reduction length of the probe shape")
    kernels.add_argument("--workers", type=int, default=None,
                         help="worker budget assumed for the auto probe "
                              "(default: cpu count)")

    bench = sub.add_parser("bench-kernels",
                           help="time registered kernels on batched rows")
    bench.add_argument("--kernels", nargs="+",
                       default=["softermax-bit-accurate", "softermax-fused",
                                "softermax-blocked"])
    bench.add_argument("--seq-lens", type=int, nargs="+",
                       default=[64, 128, 256, 512, 1024])
    bench.add_argument("--batch", type=int, default=8)
    _add_kernel_knobs(bench)

    serve = sub.add_parser("serve",
                           help="interactive dynamic-batching inference "
                                "service (token-id lines on stdin)")
    serve.add_argument("--model",
                       choices=("tiny-base", "tiny-large", "tiny-long"),
                       default="tiny-base")
    serve.add_argument("--kernel", default="auto",
                       help="Softermax kernel (see the 'kernels' command)")
    serve.add_argument("--engine", choices=("plan", "graph"), default="plan",
                       help="encoder forward engine: the compiled graph-free "
                            "plan (default, bitwise-identical) or the "
                            "autograd graph")
    serve.add_argument("--fuse-qkv", action="store_true",
                       help="plan engine only: fuse the Q/K/V projections "
                            "into one GEMM (mathematically identical, not "
                            "bit-guaranteed)")
    serve.add_argument("--block-kv", type=int, default=None,
                       help="serve through chunked O(block)-memory "
                            "attention with this key/value block size "
                            "(long-context mode; see the README tolerance "
                            "contract)")
    serve.add_argument("--max-batch-size", type=int, default=32,
                       help="largest coalesced micro-batch")
    serve.add_argument("--max-wait-ms", type=float, default=2.0,
                       help="coalescing window after the first request")
    serve.add_argument("--queue-depth", type=int, default=1024,
                       help="bounded request-queue depth (backpressure)")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="LRU response-cache entries (0 disables)")
    serve.add_argument("--seed", type=int, default=0)
    _add_serving_knobs(serve)

    loadtest = sub.add_parser("loadtest",
                              help="synthetic open-loop client: batched vs "
                                   "sequential serving throughput")
    loadtest.add_argument("--requests", type=int, default=512)
    loadtest.add_argument("--batch-size", type=int, default=32,
                          help="max_batch_size of the batched configuration")
    loadtest.add_argument("--max-wait-ms", type=float, default=2.0)
    loadtest.add_argument("--min-tokens", type=int, default=8)
    loadtest.add_argument("--max-tokens", type=int, default=16)
    loadtest.add_argument("--model",
                          choices=("tiny-base", "tiny-large", "tiny-long"),
                          default="tiny-base")
    loadtest.add_argument("--kernel", default="auto",
                          help="Softermax kernel (see the 'kernels' command)")
    loadtest.add_argument("--engine", choices=("plan", "graph"),
                          default="plan",
                          help="encoder forward engine for both "
                               "configurations (plan = graph-free fast "
                               "path, the default)")
    loadtest.add_argument("--block-kv", type=int, default=None,
                          help="chunked-attention key/value block size for "
                               "both configurations (long-context mode)")
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument("--duplicate-fraction", type=float, default=0.0,
                          help="fraction of repeated requests (exercises "
                               "the cache and in-batch dedup)")
    loadtest.add_argument("--cache-size", type=int, default=0,
                          help="response-cache entries (default off so the "
                               "measured win is batching, not memoization)")
    loadtest.add_argument("--output", default=None,
                          help="also write the JSON payload to this path")
    loadtest.add_argument("--chaos", action="store_true",
                          help="run against a fault-injected supervised "
                               "service instead: injected crashes/hangs/"
                               "errors, hard zero-drop + bitwise "
                               "assertions, warn-only latency")
    loadtest.add_argument("--quick", action="store_true",
                          help="chaos mode: cap the request count for a "
                               "fast CI smoke")
    loadtest.add_argument("--crash-rate", type=float, default=0.08,
                          help="chaos: per-forward worker-crash "
                               "probability")
    loadtest.add_argument("--hang-rate", type=float, default=0.04,
                          help="chaos: per-forward hang probability")
    loadtest.add_argument("--error-rate", type=float, default=0.02,
                          help="chaos: per-forward typed model-error "
                               "probability (isolated, no restart)")
    loadtest.add_argument("--hang-seconds", type=float, default=0.4,
                          help="chaos: how long an injected hang sleeps")
    loadtest.add_argument("--hang-timeout", type=float, default=0.15,
                          help="chaos: supervisor hang-declaration "
                               "timeout (seconds)")
    loadtest.add_argument("--max-restarts", type=int, default=64,
                          help="chaos: supervisor restart budget")
    loadtest.add_argument("--deadline-ms", type=float, default=None,
                          help="chaos: attach this deadline to "
                               "--deadline-fraction of requests")
    loadtest.add_argument("--deadline-fraction", type=float, default=0.25,
                          help="chaos: fraction of requests carrying "
                               "--deadline-ms")
    loadtest.add_argument("--workers", type=int, default=0,
                          help="chaos: run against this many shard worker "
                               "processes on one shared-memory snapshot "
                               "(0 = in-process supervised service); the "
                               "fault mix becomes kill/stall/corrupt")
    loadtest.add_argument("--kill-rate", type=float, default=0.06,
                          help="sharded chaos: per-forward SIGKILL "
                               "probability")
    loadtest.add_argument("--stall-rate", type=float, default=0.03,
                          help="sharded chaos: per-forward heartbeat-stall "
                               "probability")
    loadtest.add_argument("--corrupt-rate", type=float, default=0.03,
                          help="sharded chaos: per-forward probability of "
                               "a snapshot-corruption drill (worker "
                               "verifies a flipped copy, refuses, exits "
                               "typed)")
    loadtest.add_argument("--stall-timeout", type=float, default=0.3,
                          help="sharded chaos: idle-heartbeat timeout "
                               "before a worker is declared stalled")

    daemon = sub.add_parser("daemon",
                            help="asyncio TCP serving daemon (line-"
                                 "delimited JSON protocol) over the "
                                 "supervised inference service")
    daemon.add_argument("--host", default="127.0.0.1")
    daemon.add_argument("--port", type=int, default=0,
                        help="bind port (0 picks a free port, printed on "
                             "startup)")
    daemon.add_argument("--model",
                        choices=("tiny-base", "tiny-large", "tiny-long"),
                        default="tiny-base")
    daemon.add_argument("--kernel", default="auto",
                        help="Softermax kernel (see the 'kernels' command)")
    daemon.add_argument("--engine", choices=("plan", "graph"),
                        default="plan",
                        help="encoder forward engine (plan = graph-free "
                             "fast path, the default)")
    daemon.add_argument("--fuse-qkv", action="store_true",
                        help="plan engine only: fuse the Q/K/V "
                             "projections into one GEMM")
    daemon.add_argument("--block-kv", type=int, default=None,
                        help="chunked-attention key/value block size "
                             "(long-context mode)")
    daemon.add_argument("--max-batch-size", type=int, default=32)
    daemon.add_argument("--max-wait-ms", type=float, default=2.0)
    daemon.add_argument("--queue-depth", type=int, default=1024)
    daemon.add_argument("--cache-size", type=int, default=1024)
    daemon.add_argument("--max-restarts", type=int, default=5,
                        help="supervisor restart budget before the "
                             "service fails terminally")
    daemon.add_argument("--hang-timeout", type=float, default=2.0,
                        help="seconds a forward may run before the "
                             "supervisor declares the worker hung")
    daemon.add_argument("--seed", type=int, default=0)
    daemon.add_argument("--smoke", type=int, default=0, metavar="N",
                        help="instead of serving: bind a free port, "
                             "round-trip N requests over a real socket, "
                             "verify bitwise against solo inference, "
                             "exit (used by CI)")
    _add_serving_knobs(daemon)

    latency = sub.add_parser("latency", help="row-latency comparison")
    latency.add_argument("--seq-lens", type=int, nargs="+",
                         default=[128, 256, 384, 512, 1024, 2048])

    model_cost = sub.add_parser("model-cost",
                                help="full-model attention energy/latency")
    model_cost.add_argument("--model", choices=("bert-base", "bert-large"),
                            default="bert-large")
    model_cost.add_argument("--seq-len", type=int, default=512)

    lint = sub.add_parser("lint",
                          help="static checks of the repo's contracts "
                               "(R1-R6) against the committed baseline")
    lint.add_argument("--json", action="store_true",
                      help="emit the report as JSON")
    lint.add_argument("--rule", action="append", metavar="ID",
                      help="run only this rule (repeatable, e.g. --rule R1)")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline from the current findings")
    lint.add_argument("--root", default=None,
                      help="package tree to lint (default: the installed "
                           "repro package)")
    lint.add_argument("--baseline", default=None,
                      help="baseline file (default: <repo>/lint-baseline.json)")
    lint.add_argument("--list-rules", action="store_true",
                      help="list the rule catalog and exit")

    return parser


_HANDLERS = {
    "table1": _cmd_table1,
    "table4": _cmd_table4,
    "figure1": _cmd_figure1,
    "figure5": _cmd_figure5,
    "table3": _cmd_table3,
    "compare-softmax": _cmd_compare_softmax,
    "kernels": _cmd_kernels,
    "bench-kernels": _cmd_bench_kernels,
    "serve": _cmd_serve,
    "daemon": _cmd_daemon,
    "loadtest": _cmd_loadtest,
    "latency": _cmd_latency,
    "model-cost": _cmd_model_cost,
    "lint": _cmd_lint,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _HANDLERS[args.command]
    return handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
