"""Fixed-point arithmetic primitives.

These model what the Softermax hardware units do: every operation takes
operands that lie on fixed-point grids, computes the exact result, and then
quantizes it into an explicit output format with saturation.  Keeping the
output format explicit mirrors RTL, where every wire has a declared width.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.rounding import RoundingMode
from repro.fixedpoint.fxp import quantize


def fixed_add(
    a: np.ndarray,
    b: np.ndarray,
    out_fmt: QFormat,
    rounding: RoundingMode = RoundingMode.NEAREST,
    saturate: bool = True,
) -> np.ndarray:
    """Add two fixed-point arrays and quantize the sum into ``out_fmt``."""
    return quantize(np.asarray(a, dtype=np.float64) + np.asarray(b, dtype=np.float64),
                    out_fmt, rounding, saturate)


def fixed_sub(
    a: np.ndarray,
    b: np.ndarray,
    out_fmt: QFormat,
    rounding: RoundingMode = RoundingMode.NEAREST,
    saturate: bool = True,
) -> np.ndarray:
    """Subtract ``b`` from ``a`` and quantize into ``out_fmt``."""
    return quantize(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64),
                    out_fmt, rounding, saturate)


def fixed_mul(
    a: np.ndarray,
    b: np.ndarray,
    out_fmt: QFormat,
    rounding: RoundingMode = RoundingMode.NEAREST,
    saturate: bool = True,
) -> np.ndarray:
    """Multiply two fixed-point arrays and quantize into ``out_fmt``."""
    return quantize(np.asarray(a, dtype=np.float64) * np.asarray(b, dtype=np.float64),
                    out_fmt, rounding, saturate)


def fixed_shift(
    a: np.ndarray,
    shift: np.ndarray,
    out_fmt: QFormat,
    rounding: RoundingMode = RoundingMode.FLOOR,
    saturate: bool = True,
) -> np.ndarray:
    """Multiply by ``2**shift`` (a barrel shifter) and quantize.

    ``shift`` must be integer-valued (positive = left shift, negative =
    right shift); this is the renormalization primitive enabled by the
    integer-max trick in Softermax.  Right shifts truncate by default,
    matching shifter hardware.
    """
    shift = np.asarray(shift, dtype=np.float64)
    if not np.all(shift == np.round(shift)):
        raise ValueError("fixed_shift requires integer shift amounts")
    result = np.asarray(a, dtype=np.float64) * np.power(2.0, shift)
    return quantize(result, out_fmt, rounding, saturate)


def fixed_accumulate(
    values: np.ndarray,
    acc_fmt: QFormat,
    axis: int = -1,
    rounding: RoundingMode = RoundingMode.NEAREST,
    saturate: bool = True,
) -> np.ndarray:
    """Sum ``values`` along ``axis`` with the accumulator quantized each step.

    This models a sequential accumulator register of format ``acc_fmt``: the
    running sum is re-quantized after every addition, so accumulation error
    and saturation behaviour match a real adder/register pair rather than an
    infinitely wide float sum.
    """
    values = np.asarray(values, dtype=np.float64)
    moved = np.moveaxis(values, axis, 0)
    acc = np.zeros(moved.shape[1:], dtype=np.float64)
    for step in range(moved.shape[0]):
        acc = quantize(acc + moved[step], acc_fmt, rounding, saturate)
    return acc
