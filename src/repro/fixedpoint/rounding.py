"""Rounding modes used when quantizing to a fixed-point grid.

Hardware datapaths commonly use truncation (round toward negative
infinity, i.e. dropping LSBs of a two's complement value) or
round-to-nearest-even.  Both are provided; Softermax's accuracy results in
the paper were obtained with round-to-nearest behaviour in the fake-quant
forward passes, while the area/energy models assume truncating hardware
where it is cheaper.
"""

from __future__ import annotations

import enum

import numpy as np


class RoundingMode(enum.Enum):
    """Supported rounding behaviours for fixed-point quantization."""

    #: Round to the nearest grid point, ties away from zero (``np.round``-like
    #: but with deterministic tie handling).
    NEAREST = "nearest"
    #: Round to the nearest grid point, ties to even (IEEE default, what
    #: ``np.round`` actually implements).
    NEAREST_EVEN = "nearest_even"
    #: Truncate toward negative infinity (drop LSBs of two's complement).
    FLOOR = "floor"
    #: Round toward positive infinity.
    CEIL = "ceil"
    #: Round toward zero.
    TOWARD_ZERO = "toward_zero"
    #: Unbiased stochastic rounding (useful for training experiments).
    STOCHASTIC = "stochastic"


def round_values(
    scaled: np.ndarray,
    mode: RoundingMode = RoundingMode.NEAREST,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Round ``scaled`` (values already divided by the LSB) to integers.

    Parameters
    ----------
    scaled:
        Array of values expressed in LSB units (i.e. ``value / resolution``).
    mode:
        The rounding behaviour.
    rng:
        Random generator, only used by :attr:`RoundingMode.STOCHASTIC`.

    Returns
    -------
    np.ndarray
        Integer-valued float array of the same shape.
    """
    scaled = np.asarray(scaled, dtype=np.float64)
    if mode is RoundingMode.NEAREST:
        return np.floor(scaled + 0.5)
    if mode is RoundingMode.NEAREST_EVEN:
        return np.round(scaled)
    if mode is RoundingMode.FLOOR:
        return np.floor(scaled)
    if mode is RoundingMode.CEIL:
        return np.ceil(scaled)
    if mode is RoundingMode.TOWARD_ZERO:
        return np.trunc(scaled)
    if mode is RoundingMode.STOCHASTIC:
        if rng is None:
            rng = np.random.default_rng()
        floor = np.floor(scaled)
        frac = scaled - floor
        return floor + (rng.random(scaled.shape) < frac)
    raise ValueError(f"unknown rounding mode: {mode!r}")
