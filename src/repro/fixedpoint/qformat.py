"""Q-format descriptors for fixed-point values.

The paper (Table I) specifies every Softermax datapath signal as
``Q(int_bits, frac_bits)``.  We follow the paper's convention:

* ``int_bits`` counts the bits to the left of the binary point.  For signed
  formats the sign bit is included in ``int_bits``.
* ``frac_bits`` counts the bits to the right of the binary point.
* The representable grid therefore has resolution ``2**-frac_bits`` and,
  for an unsigned format, spans ``[0, 2**int_bits - 2**-frac_bits]``.  For a
  signed (two's complement) format it spans
  ``[-2**(int_bits-1), 2**(int_bits-1) - 2**-frac_bits]``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QFormat:
    """A fixed-point number format ``Q(int_bits, frac_bits)``.

    Parameters
    ----------
    int_bits:
        Number of integer bits (including the sign bit when ``signed``).
    frac_bits:
        Number of fractional bits.
    signed:
        Whether the format is two's complement signed. Defaults to ``True``,
        matching the attention-score datapath of the paper where inputs may
        be negative.

    Examples
    --------
    >>> q = QFormat(6, 2)
    >>> q.resolution
    0.25
    >>> q.total_bits
    8
    """

    int_bits: int
    frac_bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if self.int_bits < 0:
            raise ValueError(f"int_bits must be >= 0, got {self.int_bits}")
        if self.frac_bits < 0:
            raise ValueError(f"frac_bits must be >= 0, got {self.frac_bits}")
        if self.total_bits <= 0:
            raise ValueError("a QFormat must have at least one bit")
        if self.signed and self.int_bits < 1:
            raise ValueError("signed formats need at least one integer (sign) bit")

    @property
    def total_bits(self) -> int:
        """Total storage width in bits."""
        return self.int_bits + self.frac_bits

    @property
    def resolution(self) -> float:
        """Smallest representable increment (the value of one LSB)."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        if self.signed:
            return 2.0 ** (self.int_bits - 1) - self.resolution
        return 2.0**self.int_bits - self.resolution

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        if self.signed:
            return -(2.0 ** (self.int_bits - 1))
        return 0.0

    @property
    def max_code(self) -> int:
        """Largest integer code (value / resolution)."""
        if self.signed:
            return 2 ** (self.total_bits - 1) - 1
        return 2**self.total_bits - 1

    @property
    def min_code(self) -> int:
        """Smallest integer code."""
        if self.signed:
            return -(2 ** (self.total_bits - 1))
        return 0

    def with_signedness(self, signed: bool) -> "QFormat":
        """Return a copy of this format with a different signedness."""
        return QFormat(self.int_bits, self.frac_bits, signed)

    def widen(self, extra_int: int = 0, extra_frac: int = 0) -> "QFormat":
        """Return a wider format, e.g. for an accumulator.

        Parameters
        ----------
        extra_int:
            Additional integer bits (guards against accumulation overflow).
        extra_frac:
            Additional fractional bits (extra precision).
        """
        if extra_int < 0 or extra_frac < 0:
            raise ValueError("widen() only grows a format")
        return QFormat(self.int_bits + extra_int, self.frac_bits + extra_frac, self.signed)

    def __str__(self) -> str:
        sign = "" if self.signed else "U"
        return f"{sign}Q({self.int_bits},{self.frac_bits})"


def product_format(a: QFormat, b: QFormat) -> QFormat:
    """Return the full-precision format of a fixed-point product.

    Multiplying ``Q(ia, fa)`` by ``Q(ib, fb)`` yields at most
    ``Q(ia + ib, fa + fb)`` (two's complement multiplication of an
    ``n``-bit and ``m``-bit operand needs ``n + m`` result bits).
    """
    signed = a.signed or b.signed
    return QFormat(a.int_bits + b.int_bits, a.frac_bits + b.frac_bits, signed)


def sum_format(a: QFormat, b: QFormat) -> QFormat:
    """Return the full-precision format of a fixed-point addition."""
    signed = a.signed or b.signed
    int_bits = max(a.int_bits, b.int_bits) + 1
    frac_bits = max(a.frac_bits, b.frac_bits)
    return QFormat(int_bits, frac_bits, signed)
