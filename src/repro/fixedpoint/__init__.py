"""Fixed-point arithmetic substrate.

Softermax performs every softmax operation in narrow fixed-point formats
(paper Table I).  This subpackage provides the Q-format descriptors,
rounding modes and saturating arithmetic used by :mod:`repro.core` and by
the hardware cost models in :mod:`repro.hardware`.

The central abstraction is :class:`QFormat`, written ``Q(i, f)`` in the
paper: ``i`` integer bits (including sign for signed formats) and ``f``
fractional bits.  Values are stored as ordinary NumPy float arrays whose
elements are exactly representable on the ``2**-f`` grid, so downstream
code stays vectorized while remaining bit-accurate; the integer code view
is available through :func:`to_codes` / :func:`from_codes`.
"""

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.rounding import (
    RoundingMode,
    round_values,
)
from repro.fixedpoint.fxp import (
    quantize,
    to_codes,
    from_codes,
    is_representable,
    FixedPointArray,
)
from repro.fixedpoint.arithmetic import (
    fixed_add,
    fixed_sub,
    fixed_mul,
    fixed_shift,
    fixed_accumulate,
)

__all__ = [
    "QFormat",
    "RoundingMode",
    "round_values",
    "quantize",
    "to_codes",
    "from_codes",
    "is_representable",
    "FixedPointArray",
    "fixed_add",
    "fixed_sub",
    "fixed_mul",
    "fixed_shift",
    "fixed_accumulate",
]
