"""Quantization to and from fixed-point grids.

The functions here are the workhorses of the Softermax numerical model:
:func:`quantize` snaps a float array onto a :class:`~repro.fixedpoint.QFormat`
grid with saturation, :func:`to_codes` / :func:`from_codes` convert between
real values and integer hardware codes, and :class:`FixedPointArray` bundles
an array with its format for code that wants to carry both around.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.qformat import QFormat
from repro.fixedpoint.rounding import RoundingMode, round_values


def quantize(
    values: np.ndarray,
    fmt: QFormat,
    rounding: RoundingMode = RoundingMode.NEAREST,
    saturate: bool = True,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Quantize ``values`` onto the grid of ``fmt``.

    Parameters
    ----------
    values:
        Input array (any shape); it is not modified.
    fmt:
        Target fixed-point format.
    rounding:
        Rounding mode applied when snapping to the grid.
    saturate:
        When ``True`` (default, matching hardware behaviour) out-of-range
        values clip to the format's min/max.  When ``False`` an overflow
        raises ``OverflowError`` -- useful in tests to prove a datapath
        never overflows.
    rng:
        Random generator for stochastic rounding.

    Returns
    -------
    np.ndarray
        Float array whose every element is exactly representable in ``fmt``.
    """
    values = np.asarray(values, dtype=np.float64)
    codes = round_values(values / fmt.resolution, rounding, rng=rng)
    if saturate:
        codes = np.clip(codes, fmt.min_code, fmt.max_code)
    else:
        if np.any(codes > fmt.max_code) or np.any(codes < fmt.min_code):
            raise OverflowError(
                f"value out of range for {fmt}: "
                f"[{values.min():.6g}, {values.max():.6g}]"
            )
    return codes * fmt.resolution


def to_codes(values: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Convert representable values to their integer hardware codes.

    The input is assumed to already lie on the grid (e.g. the output of
    :func:`quantize`); any residual off-grid component is rounded to the
    nearest code.
    """
    values = np.asarray(values, dtype=np.float64)
    codes = np.round(values / fmt.resolution)
    return codes.astype(np.int64)


def from_codes(codes: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Convert integer hardware codes back to real values."""
    codes = np.asarray(codes)
    return codes.astype(np.float64) * fmt.resolution


def is_representable(values: np.ndarray, fmt: QFormat, atol: float = 0.0) -> bool:
    """Return ``True`` when every element of ``values`` is exactly on the grid.

    Parameters
    ----------
    atol:
        Absolute tolerance for the on-grid check (useful when values have
        been produced by float arithmetic that may carry 1-ulp noise).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return True
    if np.any(values > fmt.max_value) or np.any(values < fmt.min_value):
        return False
    scaled = values / fmt.resolution
    return bool(np.all(np.abs(scaled - np.round(scaled)) <= atol + 1e-9))


@dataclass
class FixedPointArray:
    """An array paired with the :class:`QFormat` it is represented in.

    This is a convenience wrapper used mostly by tests and by the hardware
    models; the core algorithms operate on plain arrays plus formats to
    keep the hot paths simple.
    """

    values: np.ndarray
    fmt: QFormat

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=np.float64)

    @classmethod
    def from_float(
        cls,
        values: np.ndarray,
        fmt: QFormat,
        rounding: RoundingMode = RoundingMode.NEAREST,
        saturate: bool = True,
    ) -> "FixedPointArray":
        """Quantize a float array into a :class:`FixedPointArray`."""
        return cls(quantize(values, fmt, rounding, saturate), fmt)

    @property
    def codes(self) -> np.ndarray:
        """Integer hardware codes of the stored values."""
        return to_codes(self.values, self.fmt)

    @property
    def shape(self) -> tuple:
        return self.values.shape

    def cast(
        self,
        fmt: QFormat,
        rounding: RoundingMode = RoundingMode.NEAREST,
        saturate: bool = True,
    ) -> "FixedPointArray":
        """Re-quantize to another format (a hardware format conversion)."""
        return FixedPointArray.from_float(self.values, fmt, rounding, saturate)

    def to_float(self) -> np.ndarray:
        """Return the plain float array (already exactly representable)."""
        return self.values.copy()

    def __len__(self) -> int:
        return len(self.values)
