"""Behavioral tests for the compiled Softermax backend (`softermax-native`).

Bitwise equivalence against the oracle is pinned by
``tests/kernels/test_equivalence.py`` through the registry's
``runner_factory`` mechanism; this module covers what that matrix cannot:
import/fallback behavior, the ``REPRO_DISABLE_NATIVE`` kill switch (in a
subprocess, since the guard runs at import time), adaptive selection with
the extension present and absent, and the staging path for strided /
non-last-axis inputs.  Everything that needs the ``.so`` is gated with
``skipif``, so the suite is green on a box that never built the extension.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

import repro.kernels.registry as registry_module
from repro.core import SoftermaxConfig, SoftermaxPipeline
from repro.kernels import (
    AdaptiveSoftermaxKernel,
    KernelWorkspace,
    NativeSoftermaxKernel,
    auto_kernel_choice,
    available_kernels,
    dispatch_candidates,
    get_fused_kernel,
    get_native_kernel,
    native_available,
    native_softermax,
    resolve_kernel,
)
from repro.kernels._native import DISABLE_ENV

NATIVE = native_available()

#: The .so exists on disk -- true even when this process runs with the
#: kill switch engaged (native_available() is then False regardless).
EXTENSION_BUILT = (
    importlib.util.find_spec("repro.kernels._native._softermax") is not None)

needs_native = pytest.mark.skipif(
    not NATIVE, reason="compiled _softermax extension not built/disabled")

SRC = str(Path(__file__).resolve().parents[2] / "src")


# --------------------------------------------------------------------------- #
# import/fallback surface
# --------------------------------------------------------------------------- #

def test_availability_and_registration_agree():
    assert ("softermax-native" in available_kernels()) == NATIVE
    assert ("softermax-native" in dispatch_candidates()) == NATIVE


def test_wrapper_importable_without_extension():
    # The wrapper layer must never require the .so: a kernel built while
    # the extension is unavailable delegates every call to the fused engine.
    kernel = NativeSoftermaxKernel()
    assert kernel.native_supported == NATIVE
    x = np.linspace(-4.0, 4.0, 24).reshape(2, 12)
    assert np.array_equal(kernel(x), get_fused_kernel(kernel.config)(x))


def test_ineligible_config_delegates_to_fused(rng):
    # No online normalization -> outside the integer C fast path: the
    # kernel must permanently delegate, bitwise-identically, even with
    # the extension built.
    config = SoftermaxConfig(use_online_normalization=False)
    kernel = NativeSoftermaxKernel(config)
    assert not kernel.native_supported
    x = rng.normal(0.0, 6.0, size=(3, 33))
    assert np.array_equal(kernel(x), get_fused_kernel(config)(x))


def _run_subprocess(extra_env, code):
    env = dict(os.environ)
    env.pop(DISABLE_ENV, None)
    env.update(extra_env)
    env["PYTHONPATH"] = SRC
    return subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, check=True)


_PROBE = (
    "from repro.kernels import available_kernels, native_available\n"
    "print(int(native_available()),"
    " int('softermax-native' in available_kernels()))\n"
)


def test_kill_switch_disables_backend_in_subprocess():
    out = _run_subprocess({DISABLE_ENV: "1"}, _PROBE).stdout.split()
    assert out == ["0", "0"]


def test_kill_switch_zero_and_empty_mean_enabled():
    # "" and "0" are documented as no-ops: availability then only depends
    # on whether the extension is actually built.
    expected = [str(int(EXTENSION_BUILT))] * 2
    assert _run_subprocess({DISABLE_ENV: "0"}, _PROBE).stdout.split() == expected
    assert _run_subprocess({DISABLE_ENV: ""}, _PROBE).stdout.split() == expected


# --------------------------------------------------------------------------- #
# adaptive selection, with and without the backend
# --------------------------------------------------------------------------- #

def test_auto_choice_prefers_native_when_registered(monkeypatch):
    if not NATIVE:  # make the registry look native-enabled
        spec = registry_module._KERNELS["softermax-fused"]
        monkeypatch.setitem(registry_module._KERNELS, "softermax-native",
                            replace(spec, name="softermax-native"))
    assert auto_kernel_choice(8, 64) == "softermax-native"
    assert auto_kernel_choice(1024, 2048, workers=1) == "softermax-native"


def test_auto_choice_degrades_when_backend_absent(monkeypatch):
    monkeypatch.delitem(registry_module._KERNELS, "softermax-native",
                        raising=False)
    assert auto_kernel_choice(8, 64) == "softermax-fused"
    assert auto_kernel_choice(1024, 2048, workers=1) == "softermax-blocked"


@needs_native
def test_adaptive_kernel_routes_to_native_instance():
    adaptive = AdaptiveSoftermaxKernel()
    kernel = adaptive._kernel_for(auto_kernel_choice(8, 64, workers=1))
    assert isinstance(kernel, NativeSoftermaxKernel)


# --------------------------------------------------------------------------- #
# compiled-path behavior (skipped without the extension)
# --------------------------------------------------------------------------- #

@needs_native
def test_resolved_kernel_matches_oracle(rng):
    fn = resolve_kernel("softermax-native")
    pipeline = SoftermaxPipeline()
    x = rng.normal(0.0, 6.0, size=(4, 96))
    assert np.array_equal(fn(x), pipeline(x))


@needs_native
def test_strided_and_non_last_axis_inputs(rng):
    kernel = get_native_kernel()
    fused = get_fused_kernel(kernel.config)
    dense = rng.normal(0.0, 6.0, size=(6, 8, 64))
    transposed = np.swapaxes(dense, 0, 2)      # non-contiguous view
    strided = dense[:, ::2, ::3]               # sliced strides
    for x in (transposed, strided):
        assert not x.flags.c_contiguous
        assert np.array_equal(kernel(x), fused(np.ascontiguousarray(x)))
    for axis in (0, 1, -2):
        assert np.array_equal(kernel(dense, axis=axis),
                              fused(dense, axis=axis))


@needs_native
def test_out_and_scratch_reuse(rng):
    kernel = get_native_kernel()
    ws = KernelWorkspace()
    x = rng.normal(0.0, 6.0, size=(5, 96))
    out = np.empty_like(x)
    first = kernel(x, out=out, scratch=ws)
    assert first is out
    expected = kernel(x)
    assert np.array_equal(out, expected)
    # Second call reuses the same workspace views; results stay identical.
    assert kernel(x, out=out, scratch=ws) is out
    assert np.array_equal(out, expected)
    with pytest.raises(ValueError):
        kernel(x, out=np.empty((3, 3)))


@needs_native
def test_saturated_maximum_falls_back_bitwise():
    # Saturated maxima make the renormalization shift non-integral; the C
    # loop must detect this and re-route to the fused kernel's float back
    # end rather than emit wrong integers.
    x = np.full((2, 40), 31.75)
    kernel = get_native_kernel()
    assert np.array_equal(kernel(x), SoftermaxPipeline()(x))


@needs_native
def test_convenience_wrapper_matches_engine(rng):
    x = rng.normal(0.0, 6.0, size=(3, 40))
    assert np.array_equal(native_softermax(x), get_native_kernel()(x))
