"""Equivalence and property tests for the softmax kernel engine.

The contract under test: **every** kernel the registry flags as
``bit_accurate`` is *bitwise* identical to the slice-loop
:class:`SoftermaxPipeline` oracle -- outputs and every exposed intermediate
-- across shapes, slice widths, axes and operating points.  The kernel
list is pulled from the registry at collection time, so a newly registered
bit-accurate kernel is pinned to the oracle automatically (via its spec's
``runner_factory``).  On top of that, every registered kernel must behave
like a softmax (probabilities in [0, 1], rows summing to ~1, permutation
equivariance along the reduction axis), and the blocked/parallel engines
get dedicated cases: block boundaries with no relationship to the slice
width, single-row blocks, and more workers than rows.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import SoftermaxConfig, SoftermaxPipeline
from repro.fixedpoint import QFormat
from repro.kernels import (
    BlockedSoftermaxKernel,
    FusedSoftermaxKernel,
    KernelWorkspace,
    available_kernels,
    fused_softermax,
    get_blocked_kernel,
    get_fused_kernel,
    get_kernel,
    get_parallel_kernel,
    output_allocation_count,
    resolve_kernel,
)

INTERMEDIATE_FIELDS = (
    "quantized_input",
    "slice_maxes",
    "unnormed",
    "global_max",
    "denominator",
    "reciprocal",
    "output",
)

CONFIGS = {
    "paper": SoftermaxConfig.paper_table1(),
    "high_precision": SoftermaxConfig.high_precision(),
    "explicit_max": SoftermaxConfig(use_online_normalization=False),
    "float_max": SoftermaxConfig(use_integer_max=False),
    "base_e": SoftermaxConfig(use_base2=False),
    "slice_8": SoftermaxConfig(slice_width=8),
    "slice_1": SoftermaxConfig(slice_width=1),
    "mixed_max_fmt": SoftermaxConfig(max_fmt=QFormat(7, 4, signed=True)),
    # Too wide to tabulate: exercises the fused float fallback path.
    "no_lut": SoftermaxConfig(input_fmt=QFormat(8, 16, signed=True),
                              max_fmt=QFormat(8, 16, signed=True)),
}

SHAPES = [(16,), (1, 16), (3, 33), (2, 2, 40), (2, 3, 4, 24), (5, 96), (4, 512)]

#: Every bit-accurate kernel in the registry with full-intermediate access.
#: Automatically includes kernels added by later PRs: registering a
#: bit-accurate kernel without a runner_factory fails the registry test
#: below, and registering one with it pins it to the oracle here.
BIT_ACCURATE = sorted(
    name for name in available_kernels()
    if get_kernel(name).bit_accurate and name != "softermax-bit-accurate"
)

#: Per-kernel options for the equivalence matrix: the parallel kernel must
#: exercise the real worker path even on a single-core box.
RUNNER_OPTIONS = {"softermax-parallel": {"workers": 2}}


def _runner(name: str, config):
    spec = get_kernel(name)
    assert spec.runner_factory is not None, (
        f"bit-accurate kernel {name!r} must expose a runner_factory so the "
        "equivalence suite can pin its intermediates to the oracle")
    return spec.runner_factory(config, **RUNNER_OPTIONS.get(name, {}))


def _assert_bitwise_equal(pipeline, kernel, x):
    ref = pipeline.run(x).intermediates
    got = kernel.run(x).intermediates
    for field in INTERMEDIATE_FIELDS:
        a, b = getattr(ref, field), getattr(got, field)
        assert np.array_equal(a, b), (
            f"{field} diverged: max abs diff "
            f"{np.max(np.abs(np.asarray(a) - np.asarray(b)))}"
        )
    assert np.array_equal(kernel(x), ref.output)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("shape", SHAPES, ids=str)
def test_bit_accurate_kernels_bitwise_identical(rng, config_name, shape):
    config = CONFIGS[config_name]
    pipeline = SoftermaxPipeline(config)
    kernels = {name: _runner(name, config) for name in BIT_ACCURATE}
    # Moderate scale exercises the LPW range; the large scale saturates the
    # input/max formats (non-integer shifts -> the fused float back end).
    for scale in (6.0, 40.0):
        x = rng.normal(0.0, scale, size=shape)
        ref = pipeline.run(x).intermediates
        for name, kernel in kernels.items():
            got = kernel.run(x).intermediates
            for field in INTERMEDIATE_FIELDS:
                a, b = getattr(ref, field), getattr(got, field)
                assert np.array_equal(a, b), (
                    f"{name}: {field} diverged on {config_name}/{shape}"
                )
            assert np.array_equal(kernel(x), ref.output), name


@pytest.mark.parametrize("name", BIT_ACCURATE)
@pytest.mark.parametrize("axis", [0, 1, 2, -1, -2])
def test_bit_accurate_axis_handling(rng, paper_config, name, axis):
    x = rng.normal(0.0, 5.0, size=(6, 7, 40))
    pipeline = SoftermaxPipeline(paper_config)
    kernel = _runner(name, paper_config)
    assert np.array_equal(pipeline(x, axis=axis), kernel(x, axis=axis))


@pytest.mark.parametrize("name", BIT_ACCURATE)
def test_bit_accurate_extreme_and_degenerate_inputs(paper_config, name):
    pipeline = SoftermaxPipeline(paper_config)
    kernel = _runner(name, paper_config)
    # The third case forces a renormalization shift of 63 (one slice maxes
    # at +31, another at -32): the shift count must saturate safely in the
    # int32 code domain, not over-shift.
    wide_shift = np.concatenate([np.full((2, 32), 31.0),
                                 np.full((2, 32), -32.0)], axis=-1)
    cases = [
        np.zeros((3, 37)),
        np.full((2, 40), -31.0),
        wide_shift,
        np.full((2, 40), 31.75),
        np.linspace(-64.0, 64.0, 96).reshape(2, 48),  # saturates both ends
        np.asarray([[1e30, -1e30, 0.0, 2.5]]),
    ]
    for x in cases:
        _assert_bitwise_equal(pipeline, kernel, x)


@pytest.mark.parametrize("name", BIT_ACCURATE)
def test_bit_accurate_empty_axis_raises(paper_config, name):
    with pytest.raises(ValueError):
        _runner(name, paper_config)(np.zeros((4, 0)))
    with pytest.raises(ValueError):
        SoftermaxPipeline(paper_config)(np.zeros((4, 0)))


@pytest.mark.parametrize("name", BIT_ACCURATE)
def test_bit_accurate_does_not_mutate_input(rng, paper_config, name):
    x = rng.normal(0.0, 6.0, size=(4, 64))
    before = x.copy()
    _runner(name, paper_config)(x)
    assert np.array_equal(x, before)


def test_fused_kernel_memoized_per_config():
    a = get_fused_kernel(SoftermaxConfig.paper_table1())
    b = get_fused_kernel(SoftermaxConfig.paper_table1())
    c = get_fused_kernel(SoftermaxConfig(slice_width=8))
    assert a is b
    assert a is not c
    assert isinstance(a, FusedSoftermaxKernel)
    assert isinstance(fused_softermax(np.zeros((2, 8))), np.ndarray)


# --------------------------------------------------------------------------- #
# blocked/parallel-specific cases
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("block_rows", [1, 3, 5, 7])
def test_blocked_boundaries_unaligned_to_slice_width(rng, block_rows):
    """Row-block cuts have no relationship to the hardware slice width.

    13 rows of length 77 with slice width 32: the row tail is a partial
    slice, the row count is prime relative to every block size, and the
    final block is partial for every block_rows tested -- including
    single-row blocks.
    """
    config = SoftermaxConfig.paper_table1()
    pipeline = SoftermaxPipeline(config)
    kernel = BlockedSoftermaxKernel(config, block_rows=block_rows)
    x = rng.normal(0.0, 6.0, size=(13, 77))
    _assert_bitwise_equal(pipeline, kernel, x)


def test_blocked_scratch_reused_across_calls(rng, paper_config):
    """Repeated same-shape calls must not grow the built-in workspace."""
    kernel = BlockedSoftermaxKernel(paper_config, block_rows=4)
    x = rng.normal(0.0, 5.0, size=(16, 96))
    kernel(x)
    reallocs = kernel._workspace.reallocs
    nbytes = kernel._workspace.nbytes
    out_a = kernel(x)
    assert kernel._workspace.reallocs == reallocs
    assert kernel._workspace.nbytes == nbytes
    # Growing shapes reallocate; shrinking ones reuse the larger scratch.
    kernel(rng.normal(size=(32, 128)))
    assert kernel._workspace.nbytes >= nbytes
    reallocs = kernel._workspace.reallocs
    out_b = kernel(x)
    assert kernel._workspace.reallocs == reallocs
    assert np.array_equal(out_a, out_b)


def test_blocked_kernel_memoized_per_signature():
    a = get_blocked_kernel(SoftermaxConfig.paper_table1())
    b = get_blocked_kernel(SoftermaxConfig.paper_table1())
    c = get_blocked_kernel(SoftermaxConfig.paper_table1(), 8)
    assert a is b
    assert a is not c
    assert c.block_rows == 8


def test_blocked_rejects_bad_block_rows(paper_config):
    with pytest.raises(ValueError):
        BlockedSoftermaxKernel(paper_config, block_rows=0)


def test_parallel_workers_exceed_rows(rng, paper_config):
    """More workers than rows: surplus workers idle, bits unchanged."""
    pipeline = SoftermaxPipeline(paper_config)
    kernel = get_parallel_kernel(paper_config, 4)
    x = rng.normal(0.0, 6.0, size=(2, 80))
    assert np.array_equal(kernel(x), pipeline(x))
    # A single row short-circuits to the in-process blocked engine.
    y = rng.normal(0.0, 6.0, size=(1, 80))
    assert np.array_equal(kernel(y), pipeline(y))
    z = rng.normal(0.0, 6.0, size=80)
    assert np.array_equal(kernel(z), pipeline(z))


def test_parallel_matches_oracle_through_worker_path(rng, paper_config):
    pipeline = SoftermaxPipeline(paper_config)
    kernel = get_parallel_kernel(paper_config, 2, 3)  # block_rows=3 too
    x = rng.normal(0.0, 6.0, size=(3, 5, 40))
    assert np.array_equal(kernel(x), pipeline(x))
    assert np.array_equal(kernel(x, axis=1), pipeline(x, axis=1))


@pytest.mark.parametrize("name", BIT_ACCURATE)
def test_bit_accurate_degenerate_shapes(rng, paper_config, name):
    """Zero-row batches, 1-D inputs and rows < workers all match the oracle.

    These are the shapes a serving layer actually produces between real
    batches (empty flushes, single requests, tiny coalesced batches on a
    wide pool), so every bit-accurate kernel must handle them.
    """
    pipeline = SoftermaxPipeline(paper_config)
    kernel = _runner(name, paper_config)
    cases = [
        np.zeros((0, 16)),                     # zero rows
        np.zeros((0, 3, 24)),                  # zero rows, extra lead dims
        rng.normal(0.0, 6.0, size=37),         # 1-D input
        rng.normal(0.0, 6.0, size=(3, 40)),    # rows < typical worker count
    ]
    for x in cases:
        got = kernel(x)
        expected = pipeline(x)
        assert got.shape == expected.shape, (name, x.shape)
        assert np.array_equal(got, expected), (name, x.shape)


# --------------------------------------------------------------------------- #
# parallel-engine lifecycle: memoization, crash recovery, fork safety
# --------------------------------------------------------------------------- #
def test_parallel_kernel_memoization_normalizes_defaults(paper_config):
    """Spelling a default explicitly must not create a second worker pool."""
    from repro.kernels.parallel import DEFAULT_WORKERS

    implicit = get_parallel_kernel(paper_config)
    explicit = get_parallel_kernel(paper_config, os.cpu_count() or 1)
    assert DEFAULT_WORKERS == (os.cpu_count() or 1)
    assert implicit is explicit
    # config=None normalizes to the default config.
    from repro.core.config import DEFAULT_CONFIG

    assert get_parallel_kernel(None, 2) is get_parallel_kernel(DEFAULT_CONFIG, 2)
    # Distinct effective configurations still get distinct kernels.
    assert get_parallel_kernel(paper_config, 2) \
        is not get_parallel_kernel(paper_config, 3)
    with pytest.raises(ValueError):
        get_parallel_kernel(paper_config, 0)


class _FailingPool:
    """A pool stand-in whose map always fails (a crashed/broken pool)."""

    def __init__(self):
        self.terminated = False

    def map(self, *args, **kwargs):
        raise RuntimeError("worker died")

    def terminate(self):
        self.terminated = True

    def join(self):
        pass


def test_parallel_recovers_after_pool_breaks(rng, paper_config):
    """A broken pool is torn down and rebuilt; the call still succeeds."""
    from repro.kernels.parallel import ParallelSoftermaxKernel, _LIVE_POOLS

    pipeline = SoftermaxPipeline(paper_config)
    kernel = ParallelSoftermaxKernel(paper_config, workers=2)
    x = rng.normal(0.0, 6.0, size=(6, 48))
    try:
        assert np.array_equal(kernel(x), pipeline(x))
        # Break the live pool behind the kernel's back.
        broken = _FailingPool()
        entry = (kernel._pool_pid, kernel._pool)
        if entry in _LIVE_POOLS:
            _LIVE_POOLS.remove(entry)
        kernel._pool.terminate()
        kernel._pool.join()
        kernel._pool = broken
        _LIVE_POOLS.append((os.getpid(), broken))
        # The next call must tear the broken pool down, rebuild once, and
        # still produce oracle bits.
        assert np.array_equal(kernel(x), pipeline(x))
        assert broken.terminated
        assert kernel._pool is not broken and kernel._pool is not None
        # The rebuilt pool is a real one: a second call works too.
        assert np.array_equal(kernel(x), pipeline(x))
    finally:
        kernel.close()


def test_parallel_falls_back_to_blocked_when_rebuild_fails(rng, paper_config,
                                                           monkeypatch):
    """If the rebuilt pool fails as well, the blocked engine answers."""
    from repro.kernels.parallel import ParallelSoftermaxKernel

    pipeline = SoftermaxPipeline(paper_config)
    kernel = ParallelSoftermaxKernel(paper_config, workers=2)
    monkeypatch.setattr(kernel, "_ensure_pool", lambda: _FailingPool())
    x = rng.normal(0.0, 6.0, size=(5, 64))
    try:
        assert np.array_equal(kernel(x), pipeline(x))
    finally:
        kernel.close()


def test_parallel_terminated_pool_is_rebuilt(rng, paper_config):
    """pool.terminate() from outside (a real crash mode) is recovered."""
    from repro.kernels.parallel import ParallelSoftermaxKernel

    pipeline = SoftermaxPipeline(paper_config)
    kernel = ParallelSoftermaxKernel(paper_config, workers=2)
    x = rng.normal(0.0, 6.0, size=(4, 40))
    try:
        assert np.array_equal(kernel(x), pipeline(x))
        kernel._pool.terminate()  # map() on a terminated pool raises
        assert np.array_equal(kernel(x), pipeline(x))
    finally:
        kernel.close()


@pytest.mark.skipif(not hasattr(os, "fork"), reason="requires os.fork")
def test_parallel_pool_handle_rebuilt_across_fork(rng, paper_config):
    """A pool handle inherited across fork is rebuilt, not reused.

    The child must (a) produce oracle bits through its own pool and (b)
    leave the parent's pool untouched -- the parent keeps computing
    through its original pool afterwards.
    """
    from repro.kernels.parallel import ParallelSoftermaxKernel

    pipeline = SoftermaxPipeline(paper_config)
    kernel = ParallelSoftermaxKernel(paper_config, workers=2)
    x = rng.normal(0.0, 6.0, size=(4, 48))
    expected = pipeline(x)
    try:
        assert np.array_equal(kernel(x), expected)
        parent_pool = kernel._pool
        pid = os.fork()
        if pid == 0:  # child
            status = 1
            try:
                if np.array_equal(kernel(x), expected) \
                        and kernel._pool is not parent_pool:
                    status = 0
                kernel.close()
            finally:
                os._exit(status)
        _, wait_status = os.waitpid(pid, 0)
        assert wait_status == 0, \
            "child failed to rebuild the inherited pool handle"
        # The parent's pool survived the child's lifecycle.
        assert kernel._pool is parent_pool
        assert np.array_equal(kernel(x), expected)
    finally:
        kernel.close()


# --------------------------------------------------------------------------- #
# the workspace-aware out=/scratch= contract
# --------------------------------------------------------------------------- #
# Parameterized over BIT_ACCURATE (i.e. over runner_factory), so a newly
# registered bit-accurate kernel gets the in-place contract pinned for free.
OUT_SHAPES = [(16,), (3, 33), (2, 2, 40), (5, 96), (0, 16)]


@pytest.mark.parametrize("name", BIT_ACCURATE)
def test_engine_kernels_declare_out_capability(name):
    spec = get_kernel(name)
    assert spec.supports_out, name
    assert spec.supports_scratch, name


@pytest.mark.parametrize("name", BIT_ACCURATE)
@pytest.mark.parametrize("shape", OUT_SHAPES, ids=str)
def test_out_mode_bitwise_identical_to_allocate_mode(rng, paper_config,
                                                     name, shape):
    """A fresh ``out=`` buffer receives the exact allocate-mode bits."""
    kernel = _runner(name, paper_config)
    x = rng.normal(0.0, 6.0, size=shape)
    expected = kernel(x)
    out = np.full(shape, np.nan)
    returned = kernel(x, out=out)
    assert returned is out
    assert np.array_equal(out, expected)


@pytest.mark.parametrize("name", BIT_ACCURATE)
def test_out_buffer_reused_across_calls(rng, paper_config, name):
    """Stale contents of a reused ``out=`` buffer never leak through."""
    kernel = _runner(name, paper_config)
    out = np.full((6, 48), np.inf)
    for seed in range(3):
        x = np.random.default_rng(seed).normal(0.0, 6.0, size=(6, 48))
        returned = kernel(x, out=out)
        assert returned is out
        assert np.array_equal(out, kernel(x))


@pytest.mark.parametrize("name", BIT_ACCURATE)
def test_out_mismatch_raises(rng, paper_config, name):
    kernel = _runner(name, paper_config)
    x = rng.normal(0.0, 6.0, size=(4, 40))
    for bad in (np.empty((4, 39)), np.empty((3, 40)), np.empty(40),
                np.empty((4, 40), dtype=np.float32),
                np.empty((4, 40), dtype=np.int64)):
        with pytest.raises(ValueError):
            kernel(x, out=bad)
    with pytest.raises(ValueError):
        kernel(x, out=[[0.0] * 40] * 4)  # not an ndarray


@pytest.mark.parametrize("name", BIT_ACCURATE)
@pytest.mark.parametrize("axis", [0, 1, -1, -2])
def test_out_mode_handles_every_axis(rng, paper_config, name, axis):
    kernel = _runner(name, paper_config)
    x = rng.normal(0.0, 5.0, size=(5, 6, 40))
    out = np.empty_like(x)
    assert np.array_equal(kernel(x, axis=axis, out=out),
                          kernel(x, axis=axis))


@pytest.mark.parametrize("name", BIT_ACCURATE)
def test_caller_scratch_workspace_bitwise_identical(rng, paper_config, name):
    """One caller-owned workspace serves every engine, across shapes."""
    kernel = _runner(name, paper_config)
    ws = KernelWorkspace()
    for shape in ((4, 64), (2, 17), (8, 96), (4, 64)):
        x = rng.normal(0.0, 6.0, size=shape)
        assert np.array_equal(kernel(x, scratch=ws), kernel(x)), shape
        out = np.empty(shape)
        assert np.array_equal(kernel(x, out=out, scratch=ws), kernel(x))


def test_out_mode_steady_state_performs_no_output_allocations(rng,
                                                              paper_config):
    """out= + scratch= means zero allocation traffic at the kernel boundary
    (the serving fast path's contract, also asserted by bench_encoder)."""
    for factory in (lambda: get_fused_kernel(paper_config),
                    lambda: get_blocked_kernel(paper_config, 4)):
        kernel = factory()
        ws = KernelWorkspace()
        x = rng.normal(0.0, 6.0, size=(8, 64))
        out = np.empty_like(x)
        kernel(x, out=out, scratch=ws)  # warm the workspace
        before = output_allocation_count()
        reallocs = ws.reallocs
        for _ in range(3):
            kernel(x, out=out, scratch=ws)
        assert output_allocation_count() == before
        assert ws.reallocs == reallocs
        # Allocate mode is counted.
        kernel(x)
        assert output_allocation_count() == before + 1


def test_input_never_mutated_by_out_mode(rng, paper_config):
    for name in BIT_ACCURATE:
        kernel = _runner(name, paper_config)
        x = rng.normal(0.0, 6.0, size=(4, 48))
        before = x.copy()
        kernel(x, out=np.empty_like(x), scratch=KernelWorkspace())
        assert np.array_equal(x, before), name


def test_resolved_kernels_all_accept_out(rng, paper_config):
    """The resolution-time wrapper gives every kernel the full surface --
    non-native kernels (oracle, float references) get copy-out semantics."""
    x = rng.normal(0.0, 4.0, size=(4, 40))
    for name in sorted(set(available_kernels()) | {"auto"}):
        fn = resolve_kernel(name, paper_config)
        expected = fn(x, axis=-1)
        out = np.full(x.shape, np.nan)
        returned = fn(x, axis=-1, out=out, scratch=KernelWorkspace())
        assert returned is out, name
        assert np.array_equal(out, expected), name
        with pytest.raises(ValueError):
            fn(x, out=np.empty((2, 2)))


# --------------------------------------------------------------------------- #
# softmax properties of every registered kernel
# --------------------------------------------------------------------------- #
def _kernel_tolerance(name: str) -> float:
    """Permutation/rounding tolerance per kernel family.

    Pure float softmaxes only see summation-order noise; kernels that
    quantize their output to Q(1,7) can legitimately flip a last bit when
    the reduction order changes; the multi-slice Softermax datapath rounds
    its denominator once per slice, so a permutation that regroups the
    slices can move the output by a couple of output LSBs.
    """
    if name in ("reference", "base2", "softermax-float"):
        return 1e-9
    if name.startswith("softermax"):
        return 4.0 / 128.0
    return 1.5 / 128.0


@pytest.mark.parametrize("name", sorted(
    set(available_kernels()) | {"auto"}))
def test_kernel_is_a_softmax(rng, name):
    kernel_fn = resolve_kernel(name, SoftermaxConfig.paper_table1())
    x = rng.normal(0.0, 4.0, size=(8, 96))
    probs = kernel_fn(x, axis=-1)
    assert probs.shape == x.shape
    assert np.all(probs >= 0.0) and np.all(probs <= 1.0)
    # Float kernels sum to one up to accumulation noise; the fixed-point
    # datapath quantizes each output to Q(1,7) with a floor renormalization,
    # so long rows legitimately sum a few percent short of one (paper
    # section IV; the attention matmul is insensitive to this).
    if name in ("reference", "base2", "softermax-float"):
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=1e-9)
    else:
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, atol=0.1)


@pytest.mark.parametrize("name", sorted(available_kernels()))
def test_kernel_permutation_equivariant(rng, name):
    x = rng.normal(0.0, 4.0, size=(5, 96))
    perm = rng.permutation(x.shape[-1])
    kernel_fn = resolve_kernel(name, SoftermaxConfig.paper_table1())
    direct = kernel_fn(x, axis=-1)[..., perm]
    permuted = kernel_fn(x[..., perm], axis=-1)
    np.testing.assert_allclose(permuted, direct, atol=_kernel_tolerance(name))


@pytest.mark.parametrize("name", ["softermax-bit-accurate", "softermax-fused",
                                  "softermax-blocked"])
def test_softermax_single_slice_permutation_exact(rng, name):
    """Within one hardware slice the datapath is order-independent.

    The slice maximum is a permutation-invariant reduction and the
    fixed-point slice sum is exact (order-independent), so permuting a
    single-slice row must permute the output bit-for-bit.
    """
    config = SoftermaxConfig(slice_width=128)
    kernel_fn = resolve_kernel(name, config)
    x = rng.normal(0.0, 4.0, size=(6, 128))
    perm = rng.permutation(128)
    assert np.array_equal(kernel_fn(x[..., perm], axis=-1),
                          kernel_fn(x, axis=-1)[..., perm])


def test_bit_accurate_kernels_agree_through_registry(rng):
    """The registry's bit-accurate family is interchangeable."""
    config = SoftermaxConfig.paper_table1()
    x = rng.normal(0.0, 6.0, size=(4, 4, 80))
    outputs = [resolve_kernel(name, config)(x, axis=-1)
               for name in available_kernels()
               if get_kernel(name).bit_accurate]
    assert len(outputs) >= 4
    for other in outputs[1:]:
        assert np.array_equal(outputs[0], other)
