"""The version-guarded shared-memory tracker helpers (repro.kernels.shm).

Both shm consumers (the parallel kernel and the serving snapshot bundle)
route their attach path through these helpers, so the CPython
``resource_tracker`` workaround lives -- and is tested -- in one place.
"""

from __future__ import annotations

import multiprocessing
import os
from multiprocessing import shared_memory

import pytest

from repro.kernels.shm import (
    attach_shared_memory,
    tracker_key,
    unregister_inherited_segment,
)


@pytest.fixture()
def segment():
    shm = shared_memory.SharedMemory(create=True, size=64)
    try:
        yield shm
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def test_tracker_key_prefers_private_raw_name(segment):
    key = tracker_key(segment)
    assert key == segment._name
    if os.name != "nt":
        assert key.startswith("/")
        assert key.lstrip("/") == segment.name.lstrip("/")


def test_tracker_key_falls_back_to_public_name():
    class FutureSharedMemory:
        """A stand-in for a CPython that renamed ``_name``."""

        name = "psm_fake_segment"

    key = tracker_key(FutureSharedMemory())
    if os.name != "nt":
        assert key == "/psm_fake_segment"
    else:  # pragma: no cover - windows
        assert key == "psm_fake_segment"


def test_tracker_key_fallback_ignores_non_string_private_attr():
    class WeirdSharedMemory:
        _name = 12345  # wrong type: the guard must not return this
        name = "psm_weird"

    key = tracker_key(WeirdSharedMemory())
    assert isinstance(key, str)
    assert key.lstrip("/") == "psm_weird"


def test_unregister_is_noop_under_fork(segment, monkeypatch):
    monkeypatch.setattr(multiprocessing, "get_start_method",
                        lambda allow_none=True: "fork")
    assert unregister_inherited_segment(segment) is False


def test_unregister_attempts_under_spawn(segment, monkeypatch):
    calls = []
    from multiprocessing import resource_tracker

    monkeypatch.setattr(multiprocessing, "get_start_method",
                        lambda allow_none=True: "spawn")
    monkeypatch.setattr(resource_tracker, "unregister",
                        lambda name, rtype: calls.append((name, rtype)))
    assert unregister_inherited_segment(segment) is True
    assert calls == [(tracker_key(segment), "shared_memory")]


def test_attach_shared_memory_round_trip(segment):
    segment.buf[:4] = b"abcd"
    attached = attach_shared_memory(segment.name)
    try:
        assert bytes(attached.buf[:4]) == b"abcd"
        assert attached.size >= 64
    finally:
        attached.close()
    # the attach never took ownership: the segment still exists
    probe = shared_memory.SharedMemory(name=segment.name)
    probe.close()
