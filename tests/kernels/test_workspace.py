"""KernelWorkspace: keyed growth, view cache, arena backing, counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.infer import WorkspaceArena
from repro.kernels import (
    KernelWorkspace,
    check_out_buffer,
    output_allocation_count,
    record_output_allocation,
)


def test_take_grows_monotonically_and_reuses():
    ws = KernelWorkspace()
    small = ws.take("k", 8)
    assert small.size == 8 and small.dtype == np.float64
    assert ws.reallocs == 1
    again = ws.take("k", 4)
    assert again.base is small.base or again.base is not None
    assert ws.reallocs == 1 and ws.reuses == 1
    big = ws.take("k", 16)
    assert ws.reallocs == 2
    assert big.size == 16


def test_take_zero_size():
    ws = KernelWorkspace()
    empty = ws.take("k", 0)
    assert empty.size == 0


def test_dtype_change_replaces_the_buffer():
    ws = KernelWorkspace()
    ws.take("k", 8, np.float64)
    narrow = ws.take("k", 8, np.int16)
    assert narrow.dtype == np.int16
    assert ws.reallocs == 2


def test_keys_are_independent():
    ws = KernelWorkspace()
    a = ws.take("a", 8)
    b = ws.take("b", 8)
    a_view = a.reshape(2, 4)
    a_view.fill(1.0)
    b.fill(2.0)
    assert np.all(a == 1.0)


def test_take_shaped_caches_views():
    ws = KernelWorkspace()
    first = ws.take_shaped("k", (2, 4))
    second = ws.take_shaped("k", (2, 4))
    assert second is first  # steady state: one dict hit, no reshape
    other = ws.take_shaped("k", (8,))
    assert other is not first
    # Growth invalidates the cached views for the key.
    ws.take_shaped("k", (4, 4))
    refreshed = ws.take_shaped("k", (2, 4))
    assert refreshed is not first
    assert refreshed.base is ws._buffers["k"]


def test_buffer_growth_drops_stale_cached_views():
    """Regression: replaced buffers must not stay pinned by cached views."""
    import weakref

    ws = KernelWorkspace()
    view = ws.take_shaped("k", (1000,))
    old_buffer = ws._buffers["k"]
    ref = weakref.ref(old_buffer)
    ws.take("k", 2000)  # outgrows and replaces the buffer
    assert all(ck[0] != "k" or v.base is ws._buffers["k"]
               for ck, v in ws._views.items())
    del view, old_buffer
    assert ref() is None, "outgrown buffer still pinned by a stale view"


def test_arena_backed_workspace_draws_from_and_returns_to_the_pool():
    arena = WorkspaceArena()
    ws = KernelWorkspace(arena=arena)
    ws.take("k", 8, np.int16)
    assert arena.misses == 1
    # Growth releases the outgrown buffer back to the arena pool.
    ws.take("k", 16, np.int16)
    assert arena.stats()["free_buffers"] == 1
    ws.clear()
    assert arena.stats()["free_buffers"] == 2
    assert ws.stats()["buffers"] == 0


def test_stats_and_nbytes():
    ws = KernelWorkspace()
    ws.take("a", 4, np.float64)
    ws.take("b", 4, np.int16)
    stats = ws.stats()
    assert stats["buffers"] == 2
    assert stats["nbytes"] == 4 * 8 + 4 * 2
    assert stats["keys"] == ["a", "b"]
    assert "KernelWorkspace" in repr(ws)


def test_check_out_buffer_contract():
    check_out_buffer(None, (2, 3))  # None is always fine
    check_out_buffer(np.empty((2, 3)), (2, 3))
    with pytest.raises(ValueError, match="numpy array"):
        check_out_buffer([[0.0] * 3] * 2, (2, 3))
    with pytest.raises(ValueError, match="float64"):
        check_out_buffer(np.empty((2, 3), dtype=np.float32), (2, 3))
    with pytest.raises(ValueError, match="shape"):
        check_out_buffer(np.empty((2, 4)), (2, 3))


def test_output_allocation_counter_monotonic():
    before = output_allocation_count()
    record_output_allocation()
    record_output_allocation(2)
    assert output_allocation_count() == before + 3
