"""Tests for the named softmax kernel registry and adaptive dispatch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SoftermaxConfig, softmax_reference
from repro.kernels import (
    AUTO_BLOCKED_MIN_ELEMENTS,
    AUTO_KERNEL,
    AUTO_PARALLEL_MIN_ELEMENTS,
    AdaptiveSoftermaxKernel,
    KernelSpec,
    auto_kernel_choice,
    available_kernels,
    dispatch_candidates,
    get_kernel,
    native_available,
    parse_kernel_name,
    register_kernel,
    resolve_kernel,
)
from repro.kernels import registry as registry_module

#: What auto picks below the parallel threshold on this box: the compiled
#: engine when the extension is importable, the legacy pair otherwise.
NATIVE = native_available()


class TestRegistryLookup:
    def test_builtin_kernels_registered(self):
        names = available_kernels()
        for expected in ("reference", "base2", "softermax-bit-accurate",
                         "softermax-fused", "softermax-blocked",
                         "softermax-parallel", "softermax-adaptive",
                         "ibert", "lut-exp", "split-exp"):
            assert expected in names

    def test_auto_alias_resolves_to_adaptive(self):
        assert AUTO_KERNEL == "softermax-adaptive"
        assert get_kernel("auto") is get_kernel("softermax-adaptive")
        assert "auto" not in available_kernels()

    def test_unknown_kernel_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="available"):
            get_kernel("definitely-not-a-kernel")

    def test_bit_accurate_flags(self):
        for name in ("softermax-fused", "softermax-bit-accurate",
                     "softermax-blocked", "softermax-parallel",
                     "softermax-adaptive"):
            assert get_kernel(name).bit_accurate, name
        assert not get_kernel("reference").bit_accurate
        assert not get_kernel("ibert").bit_accurate

    def test_bit_accurate_kernels_expose_runners(self):
        """Every bit-accurate kernel must be pinnable by the equivalence
        suite: a runner_factory returning an object with run()."""
        config = SoftermaxConfig.paper_table1()
        for name in available_kernels():
            spec = get_kernel(name)
            if not spec.bit_accurate:
                continue
            assert spec.runner_factory is not None, name
            runner = spec.runner_factory(config)
            assert callable(runner) and hasattr(runner, "run"), name

    def test_engine_kernels_document_selection(self):
        for name in ("softermax-fused", "softermax-blocked",
                     "softermax-parallel", "softermax-adaptive"):
            assert get_kernel(name).selection, name

    def test_dispatch_candidates_derived_from_registry(self):
        """The adaptive candidate list is the registry's engine family --
        bit-accurate, workspace-aware, not the dispatcher itself."""
        candidates = dispatch_candidates()
        assert "softermax-fused" in candidates
        assert "softermax-blocked" in candidates
        assert "softermax-parallel" in candidates
        assert AUTO_KERNEL not in candidates
        assert "softermax-bit-accurate" not in candidates
        assert ("softermax-native" in candidates) == NATIVE
        # A backend registered later appears without further wiring.
        register_kernel(KernelSpec(
            name="test-backend", factory=lambda config: None,
            description="test-only", bit_accurate=True,
            supports_out=True, supports_scratch=True))
        try:
            assert "test-backend" in dispatch_candidates()
        finally:
            registry_module._KERNELS.pop("test-backend", None)

    def test_adaptive_docs_generated_from_registry(self):
        """The adaptive docstring and spec description list exactly the
        registry's candidates -- no hand-enumerated engine names."""
        doc = AdaptiveSoftermaxKernel.__doc__
        spec = get_kernel(AUTO_KERNEL)
        for name in dispatch_candidates():
            assert name in doc, name
            assert name.removeprefix("softermax-") in spec.description, name
        assert ("native" in spec.description) == NATIVE

    def test_out_capability_flags(self):
        """The engine family writes in place natively; the oracle and the
        float/related-work kernels are copy-wrapped at resolution time."""
        for name in ("softermax-fused", "softermax-blocked",
                     "softermax-parallel", "softermax-adaptive"):
            spec = get_kernel(name)
            assert spec.supports_out and spec.supports_scratch, name
        for name in ("softermax-bit-accurate", "reference", "base2",
                     "softermax-float", "ibert", "lut-exp", "split-exp"):
            spec = get_kernel(name)
            assert not spec.supports_out and not spec.supports_scratch, name


class TestNameParsing:
    def test_bare_name(self):
        assert parse_kernel_name("softermax-fused") == ("softermax-fused", {})

    def test_options_suffix(self):
        base, options = parse_kernel_name(
            "softermax-parallel(workers=4, block_rows=8)")
        assert base == "softermax-parallel"
        assert options == {"workers": 4, "block_rows": 8}

    def test_get_kernel_ignores_options(self):
        assert get_kernel("softermax-parallel(workers=4)") \
            is get_kernel("softermax-parallel")

    def test_malformed_names_raise(self):
        for bad in ("softermax-parallel(workers)", "kernel(workers=2.5)",
                    "name(x=1", "kernel(x=a b)", "kernel(x=-lstsq)"):
            with pytest.raises(ValueError):
                parse_kernel_name(bad)

    def test_string_option_values_parse(self):
        """Identifier-shaped values reach the factory as strings."""
        base, options = parse_kernel_name(
            "softermax-blocked(lpw_method=lstsq, block_rows=8)")
        assert base == "softermax-blocked"
        assert options == {"lpw_method": "lstsq", "block_rows": 8}
        # Type errors in string-valued knobs surface at resolution, not
        # parse: "two" is identifier-shaped, so it parses...
        assert parse_kernel_name("k(workers=two)") == ("k", {"workers": "two"})
        # ...and then fails cleanly when the parallel factory coerces it.
        with pytest.raises((TypeError, ValueError)):
            resolve_kernel("softermax-parallel(workers=two)")


class TestResolve:
    def test_resolved_kernel_is_callable(self, rng):
        fn = resolve_kernel("reference", None)
        x = rng.normal(size=(3, 12))
        np.testing.assert_allclose(fn(x, axis=-1), softmax_reference(x, axis=-1))

    def test_softermax_kernels_bind_config(self, rng):
        config = SoftermaxConfig(slice_width=8)
        fused = resolve_kernel("softermax-fused", config)
        oracle = resolve_kernel("softermax-bit-accurate", config)
        x = rng.normal(0.0, 5.0, size=(2, 40))
        assert np.array_equal(fused(x), oracle(x))

    def test_default_config_is_paper_table1(self, rng, paper_config):
        x = rng.normal(0.0, 5.0, size=(2, 48))
        assert np.array_equal(
            resolve_kernel("softermax-fused", None)(x),
            resolve_kernel("softermax-fused", paper_config)(x),
        )

    def test_options_from_name_and_kwargs(self, rng, paper_config):
        x = rng.normal(0.0, 5.0, size=(4, 64))
        expected = resolve_kernel("softermax-bit-accurate", paper_config)(x)
        by_name = resolve_kernel("softermax-blocked(block_rows=2)", paper_config)
        by_kwarg = resolve_kernel("softermax-blocked", paper_config, block_rows=2)
        assert np.array_equal(by_name(x), expected)
        assert np.array_equal(by_kwarg(x), expected)

    def test_none_options_are_dropped(self, rng, paper_config):
        fn = resolve_kernel("softermax-fused", paper_config,
                            workers=None, block_rows=None)
        x = rng.normal(0.0, 5.0, size=(2, 32))
        assert fn(x).shape == x.shape

    def test_unsupported_options_raise_cleanly(self):
        with pytest.raises(TypeError, match="does not accept options"):
            resolve_kernel("reference", None, workers=2)

    def test_wrapped_kernels_get_copy_out_semantics(self, rng):
        """Kernels without native support still honor the full contract."""
        fn = resolve_kernel("reference", None)
        x = rng.normal(size=(3, 12))
        expected = softmax_reference(x, axis=-1)
        out = np.full(x.shape, np.nan)
        returned = fn(x, axis=-1, out=out)
        assert returned is out
        np.testing.assert_allclose(out, expected)
        with pytest.raises(ValueError):
            fn(x, out=np.empty((3, 11)))
        with pytest.raises(ValueError):
            fn(x, out=np.empty((3, 12), dtype=np.float32))

    def test_supported_options_reflect_factory_signatures(self):
        from repro.kernels import supported_options

        assert supported_options("reference") == set()
        assert supported_options("softermax-fused") == {"lpw_method"}
        assert supported_options("softermax-blocked") \
            == {"block_rows", "lpw_method"}
        assert supported_options("softermax-parallel") \
            == {"workers", "block_rows", "lpw_method"}
        assert supported_options("auto") \
            == {"workers", "block_rows", "lpw_method"}

    def test_lpw_method_reachable_via_parameterized_name(self, rng,
                                                         paper_config):
        """String knobs select genuinely different table fits."""
        x = rng.normal(0.0, 5.0, size=(4, 64))
        blocked = resolve_kernel("softermax-blocked(lpw_method=lstsq)",
                                 paper_config)
        fused = resolve_kernel("softermax-fused(lpw_method=lstsq)",
                               paper_config)
        assert np.array_equal(blocked(x), fused(x))
        endpoint = resolve_kernel("softermax-blocked", paper_config)
        assert not np.array_equal(blocked(x), endpoint(x))

    def test_adaptive_forwards_lpw_method_to_children(self, paper_config):
        kernel = resolve_kernel("auto", paper_config, lpw_method="lstsq")
        children = ["softermax-fused", "softermax-blocked",
                    "softermax-parallel"]
        if NATIVE:
            children.append("softermax-native")
        for child in children:
            assert kernel._kernel_for(child).lpw_method == "lstsq", child


class TestAdaptiveDispatch:
    def test_choice_thresholds(self, monkeypatch):
        # Pin a multicore host so the thresholds (not the single-core
        # gate) are what is under test here; native=False pins the legacy
        # fused/blocked split, native=True the compiled replacement.
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        assert auto_kernel_choice(8, 512, workers=1, native=False) \
            == "softermax-fused"
        assert auto_kernel_choice(8, 512, workers=1, native=True) \
            == "softermax-native"
        big_rows = AUTO_BLOCKED_MIN_ELEMENTS // 512
        assert auto_kernel_choice(big_rows, 512, workers=1, native=False) \
            == "softermax-blocked"
        assert auto_kernel_choice(big_rows, 512, workers=1, native=True) \
            == "softermax-native"
        huge_rows = AUTO_PARALLEL_MIN_ELEMENTS // 512
        assert auto_kernel_choice(huge_rows, 512, workers=1, native=False) \
            == "softermax-blocked"  # no extra workers -> stay in process
        # The pool keeps the top slot even when native is available (it
        # spreads the same compiled-or-blocked work over real cores).
        for native in (False, True):
            assert auto_kernel_choice(huge_rows, 512, workers=4,
                                      native=native) == "softermax-parallel"
        # One giant row cannot be split across workers.
        assert auto_kernel_choice(1, AUTO_PARALLEL_MIN_ELEMENTS, workers=4,
                                  native=False) == "softermax-blocked"

    def test_choice_defaults_to_registered_availability(self, monkeypatch):
        """native=None (the adaptive kernel's call) means "if registered"."""
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        expected = "softermax-native" if NATIVE else "softermax-fused"
        assert auto_kernel_choice(8, 512, workers=1) == expected

    def test_single_core_host_never_picks_the_pool(self, monkeypatch):
        """On a 1-core box the pool is pure overhead (the ROADMAP-noted
        0.8x regression): auto skips parallel even with an explicit
        multi-worker budget and falls to the in-process engines."""
        huge_rows = AUTO_PARALLEL_MIN_ELEMENTS // 512
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert auto_kernel_choice(huge_rows, 512, workers=4, native=False) \
            == "softermax-blocked"
        assert auto_kernel_choice(huge_rows, 512, native=False) \
            == "softermax-blocked"
        # cpu_count() may report None (unknown): treated as single core.
        monkeypatch.setattr("os.cpu_count", lambda: None)
        assert auto_kernel_choice(huge_rows, 512, workers=4, native=False) \
            == "softermax-blocked"
        # Back on a multicore host the same call fans out again.
        monkeypatch.setattr("os.cpu_count", lambda: 2)
        assert auto_kernel_choice(huge_rows, 512, workers=4, native=False) \
            == "softermax-parallel"

    def test_single_core_gate_applies_to_the_adaptive_kernel(
            self, monkeypatch, paper_config):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        kernel = AdaptiveSoftermaxKernel(paper_config, workers=4)
        rows = AUTO_PARALLEL_MIN_ELEMENTS // 256
        huge = np.zeros((rows, 256))
        assert kernel._choose(huge, -1) != "softermax-parallel"
        assert kernel._choose(huge, -1) == (
            "softermax-native" if NATIVE else "softermax-blocked")

    def test_adaptive_kernel_dispatches_and_matches(self, rng, paper_config):
        kernel = AdaptiveSoftermaxKernel(paper_config, workers=1)
        small = rng.normal(0.0, 5.0, size=(4, 64))
        assert kernel._choose(small, -1) == (
            "softermax-native" if NATIVE else "softermax-fused")
        rows = AUTO_BLOCKED_MIN_ELEMENTS // 256
        big = rng.normal(0.0, 5.0, size=(rows, 256))
        assert kernel._choose(big, -1) == (
            "softermax-native" if NATIVE else "softermax-blocked")
        oracle = resolve_kernel("softermax-bit-accurate", paper_config)
        assert np.array_equal(kernel(small), oracle(small))
        probs = kernel(big)
        assert probs.shape == big.shape
        # Spot-check a band of the big tensor against the oracle.
        assert np.array_equal(probs[:8], oracle(big[:8]))

    def test_adaptive_empty_axis_raises(self, paper_config):
        with pytest.raises(ValueError):
            AdaptiveSoftermaxKernel(paper_config)(np.zeros((4, 0)))


class TestRegistration:
    def test_register_and_replace(self):
        spec = KernelSpec(name="test-identity",
                          factory=lambda config: lambda x, axis=-1: np.asarray(x),
                          description="test-only kernel")
        register_kernel(spec)
        try:
            assert get_kernel("test-identity") is spec
            replacement = KernelSpec(name="test-identity",
                                     factory=spec.factory,
                                     description="replaced")
            register_kernel(replacement)
            assert get_kernel("test-identity").description == "replaced"
        finally:
            registry_module._KERNELS.pop("test-identity", None)

    def test_auto_name_is_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            register_kernel(KernelSpec(name="auto",
                                       factory=lambda config: None,
                                       description="nope"))
