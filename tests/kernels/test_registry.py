"""Tests for the named softmax kernel registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SoftermaxConfig, softmax_reference
from repro.kernels import (
    AUTO_KERNEL,
    KernelSpec,
    available_kernels,
    get_kernel,
    register_kernel,
    resolve_kernel,
)
from repro.kernels import registry as registry_module


class TestRegistryLookup:
    def test_builtin_kernels_registered(self):
        names = available_kernels()
        for expected in ("reference", "base2", "softermax-bit-accurate",
                         "softermax-fused", "ibert", "lut-exp", "split-exp"):
            assert expected in names

    def test_auto_alias_resolves_to_fused(self):
        assert AUTO_KERNEL == "softermax-fused"
        assert get_kernel("auto") is get_kernel("softermax-fused")
        assert "auto" not in available_kernels()

    def test_unknown_kernel_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="available"):
            get_kernel("definitely-not-a-kernel")

    def test_bit_accurate_flags(self):
        assert get_kernel("softermax-fused").bit_accurate
        assert get_kernel("softermax-bit-accurate").bit_accurate
        assert not get_kernel("reference").bit_accurate
        assert not get_kernel("ibert").bit_accurate


class TestResolve:
    def test_resolved_kernel_is_callable(self, rng):
        fn = resolve_kernel("reference", None)
        x = rng.normal(size=(3, 12))
        np.testing.assert_allclose(fn(x, axis=-1), softmax_reference(x, axis=-1))

    def test_softermax_kernels_bind_config(self, rng):
        config = SoftermaxConfig(slice_width=8)
        fused = resolve_kernel("softermax-fused", config)
        oracle = resolve_kernel("softermax-bit-accurate", config)
        x = rng.normal(0.0, 5.0, size=(2, 40))
        assert np.array_equal(fused(x), oracle(x))

    def test_default_config_is_paper_table1(self, rng, paper_config):
        x = rng.normal(0.0, 5.0, size=(2, 48))
        assert np.array_equal(
            resolve_kernel("softermax-fused", None)(x),
            resolve_kernel("softermax-fused", paper_config)(x),
        )


class TestRegistration:
    def test_register_and_replace(self):
        spec = KernelSpec(name="test-identity",
                          factory=lambda config: lambda x, axis=-1: np.asarray(x),
                          description="test-only kernel")
        register_kernel(spec)
        try:
            assert get_kernel("test-identity") is spec
            replacement = KernelSpec(name="test-identity",
                                     factory=spec.factory,
                                     description="replaced")
            register_kernel(replacement)
            assert get_kernel("test-identity").description == "replaced"
        finally:
            registry_module._KERNELS.pop("test-identity", None)

    def test_auto_name_is_reserved(self):
        with pytest.raises(ValueError, match="reserved"):
            register_kernel(KernelSpec(name="auto",
                                       factory=lambda config: None,
                                       description="nope"))
