"""Dynamic lock-order watcher: wrapper semantics and cycle detection."""

import threading

import pytest

from repro.analysis import LockOrderWatcher, WatchedLock
from repro.analysis import lockwatch

pytestmark = pytest.mark.analysis


def make_lock(name, watcher):
    return WatchedLock(threading.Lock(), name, watcher)


# --------------------------------------------------------------------------- #
# wrapper semantics
# --------------------------------------------------------------------------- #

def test_watched_lock_acquire_release_and_context_manager():
    watcher = LockOrderWatcher()
    lock = make_lock("L", watcher)
    assert lock.acquire()
    assert lock.locked()
    lock.release()
    assert not lock.locked()
    with lock:
        assert lock.locked()
    assert watcher.acquisitions == 2


def test_failed_try_acquire_is_not_recorded():
    watcher = LockOrderWatcher()
    lock = make_lock("L", watcher)
    with lock:
        assert lock.acquire(blocking=False) is False
    assert watcher.acquisitions == 1


def test_condition_and_event_work_over_watched_locks():
    watcher = LockOrderWatcher()
    cond = threading.Condition(make_lock("C", watcher))
    hits = []

    def waiter():
        with cond:
            while not hits:
                cond.wait(timeout=5)

    t = threading.Thread(target=waiter)
    t.start()
    with cond:
        hits.append(1)
        cond.notify()
    t.join(timeout=5)
    assert not t.is_alive()
    assert watcher.cycles() == []


# --------------------------------------------------------------------------- #
# order recording and cycles
# --------------------------------------------------------------------------- #

def test_consistent_order_has_edges_but_no_cycle():
    watcher = LockOrderWatcher()
    a, b = make_lock("A", watcher), make_lock("B", watcher)
    for _ in range(3):
        with a:
            with b:
                pass
    assert watcher.edges() == {"A": {"B"}}
    assert watcher.cycles() == []
    assert "no lock-order cycles" in watcher.report()


def test_inverted_order_is_a_cycle():
    watcher = LockOrderWatcher()
    a, b = make_lock("A", watcher), make_lock("B", watcher)
    with a:
        with b:
            pass
    with b:
        with a:
            pass
    (cycle,) = watcher.cycles()
    assert sorted(cycle) == ["A", "B"]
    assert "LOCK-ORDER CYCLE" in watcher.report()


def test_inverted_order_across_threads_is_a_cycle():
    watcher = LockOrderWatcher()
    a, b = make_lock("A", watcher), make_lock("B", watcher)
    # Serialized interleaving: no deadlock ever happens in this run, but
    # the order graph still proves one is possible.
    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    for target in (forward, backward):
        t = threading.Thread(target=target)
        t.start()
        t.join(timeout=5)
    assert len(watcher.cycles()) == 1


def test_three_lock_cycle_detected():
    watcher = LockOrderWatcher()
    locks = {n: make_lock(n, watcher) for n in "ABC"}
    for first, second in (("A", "B"), ("B", "C"), ("C", "A")):
        with locks[first]:
            with locks[second]:
                pass
    (cycle,) = watcher.cycles()
    assert sorted(cycle) == ["A", "B", "C"]


def test_rlock_reentrance_is_not_a_cycle():
    watcher = LockOrderWatcher()
    r = WatchedLock(threading.RLock(), "R", watcher)
    with r:
        with r:
            pass
    assert watcher.edges() == {}
    assert watcher.cycles() == []


# --------------------------------------------------------------------------- #
# install / uninstall
# --------------------------------------------------------------------------- #

def test_install_patches_and_uninstall_restores():
    watcher = LockOrderWatcher()
    real_lock = threading.Lock
    uninstall = lockwatch.install(watcher)
    try:
        lock = threading.Lock()
        assert isinstance(lock, WatchedLock)
        assert lock.name.startswith("Lock@test_lockwatch.py:")
        rlock = threading.RLock()
        assert isinstance(rlock, WatchedLock)
        with lock:
            pass
        assert watcher.acquisitions >= 1
    finally:
        uninstall()
    assert threading.Lock is real_lock
    assert not isinstance(threading.Lock(), WatchedLock)


def test_double_install_refused():
    uninstall = lockwatch.install(LockOrderWatcher())
    try:
        with pytest.raises(RuntimeError, match="already installed"):
            lockwatch.install(LockOrderWatcher())
    finally:
        uninstall()


def test_installed_locks_drive_real_serving_primitives():
    """A watched-lock world runs actual serving machinery unchanged."""
    watcher = LockOrderWatcher()
    uninstall = lockwatch.install(watcher)
    try:
        from repro.serving.batcher import PendingRequest

        pending = PendingRequest(key=(1, 2, 3))
        pending.set_result("y")
        assert pending.result(timeout=5) == "y"
    finally:
        uninstall()
    assert watcher.cycles() == []
