"""`repro lint` end to end: seeded violations, baseline workflow, real tree."""

import json
import textwrap

import pytest

from repro.cli import main

pytestmark = pytest.mark.analysis

#: One seeded violation per rule, in the layout each rule scopes to.
SEEDED = {
    "R1": ("kernels/hot.py", """\
        import numpy as np

        def forward(x):
            return np.empty(x.shape)
        """),
    "R2": ("kernels/contract.py", """\
        class Kernel:
            def __call__(self, x, axis=-1):
                return x
        """),
    "R3": ("nn/fusion.py", """\
        def export(builder, fuse_qkv=False):
            '''Emit ops.'''
            if fuse_qkv:
                return builder.fused()
            return builder.plain()
        """),
    "R4": ("core/rand.py", """\
        import numpy as np

        def draw():
            return np.random.rand(3)
        """),
    "R5": ("serving/svc.py", """\
        import time

        class Service:
            def submit(self, job):
                with self._lock:
                    self._jobs.append(job)
                    time.sleep(0.1)
        """),
}


def seed_tree(tmp_path, rules):
    root = tmp_path / "pkg"
    for rule in rules:
        relpath, source = SEEDED[rule]
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def run_lint(tmp_path, *extra, rules=("R1",)):
    root = seed_tree(tmp_path, rules)
    baseline = tmp_path / "baseline.json"
    return main(["lint", "--root", str(root),
                 "--baseline", str(baseline), *extra])


@pytest.mark.parametrize("rule", sorted(SEEDED))
def test_each_rule_fails_on_its_seeded_violation(tmp_path, capsys, rule):
    assert run_lint(tmp_path, rules=(rule,)) == 1
    out = capsys.readouterr().out
    assert f" {rule} error: " in out


def test_all_rules_together(tmp_path, capsys):
    assert run_lint(tmp_path, rules=tuple(sorted(SEEDED))) == 1
    out = capsys.readouterr().out
    for rule in SEEDED:
        assert f" {rule} error: " in out


def test_rule_filter_skips_other_rules(tmp_path):
    # Tree seeds only an R1 violation; linting only R4 is clean.
    assert run_lint(tmp_path, "--rule", "R4", rules=("R1",)) == 0


def test_unknown_rule_is_usage_error(tmp_path, capsys):
    assert run_lint(tmp_path, "--rule", "R99") == 2
    assert "unknown rule" in capsys.readouterr().out


def test_update_baseline_then_clean_run(tmp_path, capsys):
    assert run_lint(tmp_path, "--update-baseline") == 0
    assert run_lint(tmp_path) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out
    # The violation is accepted, not gone: without the baseline it fails.
    assert main(["lint", "--root", str(tmp_path / "pkg"),
                 "--baseline", str(tmp_path / "fresh.json")]) == 1


def test_fixing_a_baselined_finding_turns_it_stale(tmp_path, capsys):
    assert run_lint(tmp_path, "--update-baseline") == 0
    relpath, _ = SEEDED["R1"]
    (tmp_path / "pkg" / relpath).write_text(
        "def forward(x):\n    return x\n", encoding="utf-8")
    # Re-run without re-seeding: the fixed file leaves the entry stale.
    assert main(["lint", "--root", str(tmp_path / "pkg"),
                 "--baseline", str(tmp_path / "baseline.json")]) == 0
    assert "stale baseline" in capsys.readouterr().out


def test_json_report_shape(tmp_path, capsys):
    assert run_lint(tmp_path, "--json") == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["modules_scanned"] == 1
    assert [f["rule"] for f in payload["new"]] == ["R1"]
    assert payload["accepted"] == []
    assert payload["stale_baseline"] == []


def test_list_rules(tmp_path, capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("R1", "R2", "R3", "R4", "R5"):
        assert rule in out


def test_suppression_comment_round_trip(tmp_path, capsys):
    root = seed_tree(tmp_path, ("R1",))
    relpath, source = SEEDED["R1"]
    annotated = textwrap.dedent(source).replace(
        "return np.empty(x.shape)",
        "return np.empty(x.shape)  # repro: allow(R1)")
    (root / relpath).write_text(annotated, encoding="utf-8")
    assert main(["lint", "--root", str(root),
                 "--baseline", str(tmp_path / "b.json")]) == 0
    assert "1 suppressed inline" in capsys.readouterr().out


def test_real_tree_is_clean_against_committed_baseline():
    """The acceptance gate CI enforces: `repro lint` on the real package."""
    assert main(["lint"]) == 0
