"""Good/bad fixture pairs for each contract rule, R1 through R7."""

import textwrap

import pytest

from repro.analysis import (
    DeterminismRule, HotPathAllocationRule, KernelContractRule, LintEngine,
    LockDisciplineRule, NativeBackendGuardRule, SharedMemoryLifecycleRule,
    ToleranceContractRule,
)

pytestmark = pytest.mark.analysis


def lint(tmp_path, rule, files):
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return LintEngine(tmp_path, [rule]).run().findings


# --------------------------------------------------------------------------- #
# R1 -- hot-path allocation discipline
# --------------------------------------------------------------------------- #

def test_r1_flags_bare_allocation_in_kernels(tmp_path):
    findings = lint(tmp_path, HotPathAllocationRule(), {"kernels/bad.py": """\
        import numpy as np

        def forward(x):
            buf = np.empty(x.shape)
            codes = x.astype(np.int64)
            return buf, codes
        """})
    assert [f.rule for f in findings] == ["R1", "R1"]
    assert "np.empty()" in findings[0].message
    assert ".astype()" in findings[1].message


def test_r1_exempts_is_none_guarded_fallback(tmp_path):
    assert lint(tmp_path, HotPathAllocationRule(), {"kernels/good.py": """\
        import numpy as np

        def forward(x, out=None):
            if out is None:
                out = np.empty(x.shape)
            return out
        """}) == []


def test_r1_exempts_setup_scopes(tmp_path):
    assert lint(tmp_path, HotPathAllocationRule(), {"kernels/good.py": """\
        import numpy as np

        TABLE = np.zeros(16)

        class K:
            def __init__(self):
                self.lut = np.empty(256)

            def _build_table(self):
                return np.zeros(8)
        """}) == []


def test_r1_exempts_workspace_module_and_allocator_classes(tmp_path):
    assert lint(tmp_path, HotPathAllocationRule(), {
        "kernels/workspace.py": """\
            import numpy as np

            def take(shape):
                return np.empty(shape)
            """,
        "kernels/other.py": """\
            import numpy as np

            class WorkspaceArena:
                def grow(self, n):
                    return np.empty(n)
            """,
    }) == []


def test_r1_scopes_nn_files_to_attention_functions(tmp_path):
    findings = lint(tmp_path, HotPathAllocationRule(), {"nn/functional.py": """\
        import numpy as np

        def gelu(x):
            return np.empty(x.shape)

        def chunked_masked_attention(q):
            return np.empty(q.shape)
        """})
    assert [f.line for f in findings] == [7]


def test_r1_out_of_scope_files_ignored(tmp_path):
    assert lint(tmp_path, HotPathAllocationRule(), {"serving/service.py": """\
        import numpy as np

        def handle(x):
            return x.copy()
        """}) == []


# --------------------------------------------------------------------------- #
# R2 -- kernel-contract conformance
# --------------------------------------------------------------------------- #

def test_r2_flags_missing_contract_params(tmp_path):
    findings = lint(tmp_path, KernelContractRule(), {"kernels/k.py": """\
        class BadKernel:
            def __call__(self, x, axis=-1):
                return x
        """})
    messages = " ".join(f.message for f in findings)
    assert len(findings) == 2
    assert "out=None" in messages and "scratch=None" in messages


def test_r2_flags_wrong_default(tmp_path):
    findings = lint(tmp_path, KernelContractRule(), {"kernels/k.py": """\
        class BadKernel:
            def __call__(self, x, axis=0, out=None, scratch=None):
                return x
        """})
    assert len(findings) == 1
    assert "'axis' must default to -1" in findings[0].message


def test_r2_accepts_conforming_kernel(tmp_path):
    assert lint(tmp_path, KernelContractRule(), {"kernels/k.py": """\
        class GoodKernel:
            def __call__(self, x, axis=-1, out=None, scratch=None):
                return x
        """}) == []


def test_r2_ignores_non_kernel_callables(tmp_path):
    assert lint(tmp_path, KernelContractRule(), {"kernels/helpers.py": """\
        class Memo:
            def __call__(self, key):
                return key
        """}) == []


def test_r2_bit_accurate_spec_requires_runner_factory(tmp_path):
    findings = lint(tmp_path, KernelContractRule(), {"kernels/reg.py": """\
        register(KernelSpec(name="softermax-x", factory=make,
                            bit_accurate=True))
        register(KernelSpec(name="softermax-y", factory=make,
                            bit_accurate=True, runner_factory=make_runner))
        register(KernelSpec(name="softmax-float", factory=make,
                            bit_accurate=False))
        """})
    assert len(findings) == 1
    assert "'softermax-x'" in findings[0].message


# --------------------------------------------------------------------------- #
# R3 -- tolerance-contract documentation
# --------------------------------------------------------------------------- #

def test_r3_flags_implementing_site_without_tag(tmp_path):
    findings = lint(tmp_path, ToleranceContractRule(), {"nn/mod.py": """\
        def export(builder, fuse_qkv=False):
            '''Emit ops.'''
            if fuse_qkv:
                return builder.fused()
            return builder.plain()
        """})
    assert len(findings) == 1
    assert "fuse_qkv" in findings[0].message
    assert "Tolerance" in findings[0].message


def test_r3_tag_satisfies_the_rule(tmp_path):
    assert lint(tmp_path, ToleranceContractRule(), {"nn/mod.py": """\
        def export(builder, fuse_qkv=False):
            '''Emit ops.

            Tolerance: fuse_qkv trades bitwise equality for one GEMM.
            '''
            if fuse_qkv:
                return builder.fused()
            return builder.plain()
        """}) == []


def test_r3_pure_forwarding_is_exempt(tmp_path):
    assert lint(tmp_path, ToleranceContractRule(), {"models/mod.py": """\
        def plan(model, fuse_qkv=False, block_kv=None):
            kwargs = {"fuse_qkv": fuse_qkv}
            if block_kv is not None:
                kwargs["block_kv"] = block_kv
            return model.export_plan(**kwargs)

        class Holder:
            def __init__(self, fuse_qkv=False):
                self.fuse_qkv = fuse_qkv
        """}) == []


def test_r3_conversion_counts_as_implementing(tmp_path):
    findings = lint(tmp_path, ToleranceContractRule(), {"models/mod.py": """\
        def plan(model, fuse_qkv=False, block_kv=None):
            '''Compile.'''
            key = (bool(fuse_qkv), block_kv)
            return model.cache[key]
        """})
    assert len(findings) == 1
    assert "block_kv, fuse_qkv" in findings[0].message


# --------------------------------------------------------------------------- #
# R4 -- seeded determinism
# --------------------------------------------------------------------------- #

def test_r4_flags_global_and_unseeded_draws(tmp_path):
    findings = lint(tmp_path, DeterminismRule(), {"core/rand.py": """\
        import numpy as np
        import random

        def draw():
            a = np.random.rand(3)
            rng = np.random.default_rng()
            np.random.seed(0)
            b = random.random()
            r = random.Random()
            return a, rng, b, r
        """})
    assert [f.line for f in findings] == [5, 6, 7, 8, 9]
    assert all(f.rule == "R4" for f in findings)


def test_r4_seeded_generators_pass(tmp_path):
    assert lint(tmp_path, DeterminismRule(), {"serving/faults.py": """\
        import numpy as np
        import random

        def make(seed):
            return np.random.default_rng(seed), random.Random(seed)
        """}) == []


def test_r4_wall_clock_seed_flagged(tmp_path):
    findings = lint(tmp_path, DeterminismRule(), {"infer/x.py": """\
        import time
        import numpy as np

        def make():
            return np.random.default_rng(int(time.time()))
        """})
    assert len(findings) == 1
    assert "wall clock" in findings[0].message


def test_r4_out_of_scope_files_ignored(tmp_path):
    assert lint(tmp_path, DeterminismRule(), {"bench/x.py": """\
        import numpy as np
        x = np.random.rand(3)
        """}) == []


# --------------------------------------------------------------------------- #
# R5 -- serving lock discipline
# --------------------------------------------------------------------------- #

_R5_BAD = """\
    import time

    class Service:
        def __init__(self):
            self._jobs = []

        def submit(self, job):
            with self._lock:
                self._jobs.append(job)
                time.sleep(0.1)

        def steal(self, job):
            self._jobs.append(job)
    """


def test_r5_flags_sleep_under_lock_and_bare_mutation(tmp_path):
    findings = lint(tmp_path, LockDisciplineRule(),
                    {"serving/svc.py": _R5_BAD})
    messages = [f.message for f in findings]
    assert len(findings) == 2
    assert any("sleep" in m and "_lock" in m for m in messages)
    assert any("self._jobs" in m and "no lock held" in m for m in messages)
    assert findings[-1].line == 13


def test_r5_blocking_call_catalog(tmp_path):
    findings = lint(tmp_path, LockDisciplineRule(), {"serving/svc.py": """\
        class Service:
            def drain(self):
                with self._lock:
                    item = self.queue.get(timeout=1.0)
                    batch = self.model(item)
                    self.sock.recv(1024)
                return item, batch
        """})
    reasons = " ".join(f.message for f in findings)
    assert len(findings) == 3
    assert "can block" in reasons
    assert "model forward" in reasons
    assert "socket/file IO" in reasons


def test_r5_locked_suffix_and_init_are_exempt(tmp_path):
    assert lint(tmp_path, LockDisciplineRule(), {"serving/svc.py": """\
        class Service:
            def __init__(self):
                self._jobs = []

            def submit(self, job):
                with self._lock:
                    self._jobs.append(job)

            def _drain_locked(self):
                self._jobs.clear()
        """}) == []


def test_r5_protected_set_spans_modules(tmp_path):
    findings = lint(tmp_path, LockDisciplineRule(), {
        "serving/a.py": """\
            class A:
                def set(self, value):
                    with self._lock:
                        self._shared = value
            """,
        "serving/b.py": """\
            class B:
                def poke(self, value):
                    self._shared = value
            """,
    })
    assert [f.path for f in findings] == ["serving/b.py"]


def test_r5_dict_get_not_flagged(tmp_path):
    assert lint(tmp_path, LockDisciplineRule(), {"serving/svc.py": """\
        class Service:
            def lookup(self, key):
                with self._lock:
                    return self.cache.get(key)
        """}) == []


def test_r5_real_serving_layer_is_clean():
    import repro

    from pathlib import Path

    root = Path(repro.__file__).parent
    rule = LockDisciplineRule()
    report = LintEngine(root, [rule]).run()
    r5 = [f for f in report.findings if f.rule == "R5"]
    assert r5 == []
    # The seeding really fired: serving/ does guard state under locks.
    assert rule.protected_attrs


# --------------------------------------------------------------------------- #
# R6 -- shared-memory lifecycle discipline
# --------------------------------------------------------------------------- #

def test_r6_flags_unguarded_create(tmp_path):
    findings = lint(tmp_path, SharedMemoryLifecycleRule(),
                    {"serving/bad.py": """\
        from multiprocessing import shared_memory

        def publish(nbytes):
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            shm.buf[:4] = b"data"  # an exception here leaks /dev/shm
            return shm
        """})
    assert [f.rule for f in findings] == ["R6"]
    assert "unlink" in findings[0].message


def test_r6_flags_close_without_unlink(tmp_path):
    findings = lint(tmp_path, SharedMemoryLifecycleRule(),
                    {"serving/bad.py": """\
        from multiprocessing import shared_memory

        def publish(nbytes):
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            try:
                shm.buf[:4] = b"data"
            finally:
                shm.close()  # detaches but never destroys the segment
            return shm
        """})
    assert [f.rule for f in findings] == ["R6"]


def test_r6_accepts_try_finally_unlink(tmp_path):
    assert lint(tmp_path, SharedMemoryLifecycleRule(),
                {"kernels/good.py": """\
        from multiprocessing import shared_memory

        def dispatch(nbytes):
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            try:
                return bytes(shm.buf[:4])
            finally:
                shm.close()
                shm.unlink()
        """}) == []


def test_r6_accepts_except_unlink_reraise(tmp_path):
    assert lint(tmp_path, SharedMemoryLifecycleRule(),
                {"serving/good.py": """\
        from multiprocessing import shared_memory

        def publish(nbytes):
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            try:
                shm.buf[:4] = b"data"
            except BaseException:
                shm.close()
                shm.unlink()
                raise
            return shm
        """}) == []


def test_r6_accepts_owner_class_with_unlinking_close(tmp_path):
    assert lint(tmp_path, SharedMemoryLifecycleRule(),
                {"serving/good.py": """\
        from multiprocessing import shared_memory

        class Bundle:
            @classmethod
            def publish(cls, nbytes):
                self = cls()
                self.shm = shared_memory.SharedMemory(create=True,
                                                      size=nbytes)
                return self

            def close(self):
                self.shm.close()
                self.shm.unlink()
        """}) == []


def test_r6_ignores_attach_side_handles(tmp_path):
    # non-owners must NOT unlink; plain attaches are out of scope
    assert lint(tmp_path, SharedMemoryLifecycleRule(),
                {"kernels/good.py": """\
        from multiprocessing import shared_memory

        def attach(name):
            shm = shared_memory.SharedMemory(name=name)
            return shm
        """}) == []


def test_r6_real_shm_consumers_are_clean():
    import repro

    from pathlib import Path

    root = Path(repro.__file__).parent
    report = LintEngine(root, [SharedMemoryLifecycleRule()]).run()
    assert [f for f in report.findings if f.rule == "R6"] == []


# --------------------------------------------------------------------------- #
# R7 -- native-backend degradation discipline
# --------------------------------------------------------------------------- #

def test_r7_flags_unguarded_native_import(tmp_path):
    findings = lint(tmp_path, NativeBackendGuardRule(), {"kernels/bad.py": """\
        from repro.kernels._native import _softermax as lib
        import numpy as np
        """})
    assert [f.rule for f in findings] == ["R7"]
    assert "unguarded" in findings[0].message
    assert "_native" in findings[0].message


def test_r7_flags_guard_without_fallback_binding(tmp_path):
    findings = lint(tmp_path, NativeBackendGuardRule(), {"kernels/bad.py": """\
        try:
            from repro.kernels._native import lib
        except ImportError:
            pass
        """})
    assert [f.rule for f in findings] == ["R7"]
    assert "fallback" in findings[0].message
    assert "lib" in findings[0].message


def test_r7_wrong_exception_type_does_not_guard(tmp_path):
    findings = lint(tmp_path, NativeBackendGuardRule(), {"kernels/bad.py": """\
        try:
            from numpy._core.umath import clip as _clip
        except ValueError:
            _clip = None
        """})
    assert [f.rule for f in findings] == ["R7"]


def test_r7_accepts_guarded_import_with_fallback(tmp_path):
    assert lint(tmp_path, NativeBackendGuardRule(), {"kernels/good.py": """\
        import numpy as np

        try:
            from repro.kernels._native import _softermax as lib
        except ImportError:
            lib = None

        try:
            from numpy._core.umath import clip as _clip
        except (AttributeError, ImportError):
            _clip = np.clip
        """}) == []


def test_r7_relative_private_submodule_import_needs_guard(tmp_path):
    findings = lint(tmp_path, NativeBackendGuardRule(),
                    {"kernels/pkg/__init__.py": """\
        from . import _softermax
        """})
    assert [f.rule for f in findings] == ["R7"]
    assert lint(tmp_path / "ok", NativeBackendGuardRule(),
                {"kernels/pkg/__init__.py": """\
        try:
            from . import _softermax
        except ImportError:
            _softermax = None
        """}) == []


def test_r7_public_imports_and_dunders_are_exempt(tmp_path):
    assert lint(tmp_path, NativeBackendGuardRule(), {"kernels/good.py": """\
        from __future__ import annotations

        import numpy as np
        from repro.kernels.fused import get_fused_kernel
        """}) == []


def test_r7_out_of_scope_files_ignored(tmp_path):
    assert lint(tmp_path, NativeBackendGuardRule(), {"serving/svc.py": """\
        from repro.kernels._native import lib
        """}) == []


def test_r7_native_spec_requires_runner_factory(tmp_path):
    findings = lint(tmp_path, NativeBackendGuardRule(), {"kernels/reg.py": """\
        register(KernelSpec(name="softermax-native", factory=make))
        register(KernelSpec(name="softermax-native", factory=make,
                            runner_factory=make_runner))
        register(KernelSpec(name="softermax-fused", factory=make))
        """})
    assert len(findings) == 1
    assert findings[0].line == 1
    assert "runner_factory" in findings[0].message


def test_r7_real_kernel_tree_is_clean():
    import repro

    from pathlib import Path

    root = Path(repro.__file__).parent
    report = LintEngine(root, [NativeBackendGuardRule()]).run()
    assert [f for f in report.findings if f.rule == "R7"] == []
