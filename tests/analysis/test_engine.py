"""Engine mechanics: suppressions, fingerprints, baseline round-trip."""

import ast
import textwrap

import pytest

from repro.analysis import (
    Finding, LintEngine, Rule, finding_fingerprints, load_baseline,
    partition_findings, save_baseline,
)

pytestmark = pytest.mark.analysis


class EmptyCallRule(Rule):
    """Toy rule: flag every ``np.empty`` call."""

    rule_id = "T1"
    title = "toy"

    def check(self, module):
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "empty"):
                yield self.finding(module, node, "np.empty call")


def write_tree(root, files):
    for relpath, source in files.items():
        path = root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def run(root, rules=None):
    return LintEngine(root, rules or [EmptyCallRule()]).run()


# --------------------------------------------------------------------------- #
# findings and suppressions
# --------------------------------------------------------------------------- #

def test_finding_carries_location_and_source(tmp_path):
    write_tree(tmp_path, {"mod.py": """\
        import numpy as np

        def f():
            return np.empty(3)
        """})
    report = run(tmp_path)
    assert report.modules_scanned == 1
    (finding,) = report.findings
    assert finding.rule == "T1"
    assert finding.path == "mod.py"
    assert finding.line == 4
    assert finding.severity == "error"
    assert finding.source == "return np.empty(3)"
    assert finding.format() == "mod.py:4: T1 error: np.empty call"
    assert finding.to_dict()["line"] == 4


def test_same_line_suppression(tmp_path):
    write_tree(tmp_path, {"mod.py": """\
        import numpy as np

        def f():
            return np.empty(3)  # repro: allow(T1)
        """})
    report = run(tmp_path)
    assert report.findings == []
    assert report.suppressed == 1


def test_line_above_suppression(tmp_path):
    write_tree(tmp_path, {"mod.py": """\
        import numpy as np

        def f():
            # repro: allow(T1)
            return np.empty(3)
        """})
    assert run(tmp_path).findings == []


def test_def_level_suppression_covers_whole_function(tmp_path):
    write_tree(tmp_path, {"mod.py": """\
        import numpy as np

        # repro: allow(T1)
        def f():
            a = np.empty(3)
            b = np.empty(4)
            return a, b

        def g():
            return np.empty(5)
        """})
    report = run(tmp_path)
    assert [f.line for f in report.findings] == [10]
    assert report.suppressed == 2


def test_star_allows_every_rule(tmp_path):
    write_tree(tmp_path, {"mod.py": """\
        import numpy as np

        def f():
            return np.empty(3)  # repro: allow(*)
        """})
    assert run(tmp_path).findings == []


def test_suppression_for_other_rule_does_not_apply(tmp_path):
    write_tree(tmp_path, {"mod.py": """\
        import numpy as np

        def f():
            return np.empty(3)  # repro: allow(R9)
        """})
    assert len(run(tmp_path).findings) == 1


def test_parse_error_becomes_finding(tmp_path):
    write_tree(tmp_path, {"broken.py": "def f(:\n"})
    report = run(tmp_path)
    (finding,) = report.findings
    assert finding.rule == "parse"
    assert finding.path == "broken.py"


def test_applies_to_scopes_rules(tmp_path):
    class KernelsOnly(EmptyCallRule):
        def applies_to(self, relpath):
            return relpath.startswith("kernels/")

    write_tree(tmp_path, {
        "kernels/a.py": "import numpy as np\nx = np.empty(1)\n",
        "serving/b.py": "import numpy as np\nx = np.empty(1)\n",
    })
    report = run(tmp_path, [KernelsOnly()])
    assert [f.path for f in report.findings] == ["kernels/a.py"]


def test_findings_sorted_by_path_then_line(tmp_path):
    write_tree(tmp_path, {
        "b.py": "import numpy as np\nx = np.empty(1)\n",
        "a.py": "import numpy as np\nx = np.empty(1)\ny = np.empty(2)\n",
    })
    report = run(tmp_path)
    assert [(f.path, f.line) for f in report.findings] == [
        ("a.py", 2), ("a.py", 3), ("b.py", 2)]


# --------------------------------------------------------------------------- #
# fingerprints and baseline
# --------------------------------------------------------------------------- #

def _finding(path="m.py", line=1, source="x = np.empty(1)", rule="T1"):
    return Finding(rule=rule, path=path, line=line, message="m",
                   source=source)


def test_fingerprints_anchor_to_source_not_line():
    before = _finding(line=10)
    after = _finding(line=42)  # same offending text, drifted line number
    assert finding_fingerprints([before]) == finding_fingerprints([after])


def test_fingerprints_disambiguate_identical_lines():
    a, b = _finding(line=3), _finding(line=9)
    fps = finding_fingerprints([a, b])
    assert len(set(fps)) == 2
    assert fps[0].endswith("|0") and fps[1].endswith("|1")


def test_baseline_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    findings = [_finding(line=3), _finding(line=9, source="y = np.empty(2)")]
    assert save_baseline(path, findings) == 2
    baseline = load_baseline(path)
    new, accepted, stale = partition_findings(findings, baseline)
    assert new == [] and len(accepted) == 2 and stale == []


def test_baseline_partition_reports_new_and_stale(tmp_path):
    path = tmp_path / "baseline.json"
    old = _finding(source="old_line()")
    save_baseline(path, [old])
    current = [_finding(source="new_line()")]
    new, accepted, stale = partition_findings(current, load_baseline(path))
    assert [f.source for f in new] == ["new_line()"]
    assert accepted == []
    assert len(stale) == 1 and "old_line()" in stale[0]


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "nope.json") == set()


def test_baseline_version_mismatch_raises(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text('{"version": 99, "fingerprints": []}')
    with pytest.raises(ValueError, match="version"):
        load_baseline(path)
