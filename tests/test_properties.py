"""Cross-cutting property-based tests.

These encode the mathematical invariants that hold across module boundaries
and that the paper's correctness argument rests on:

* the online-normalizer recurrence is exactly equivalent to the two-pass
  softmax in exact arithmetic, for any slicing of the input;
* Softermax is invariant to adding an integer constant to every score
  (because the base is 2 and the running max is an integer, the shift
  cancels exactly -- the fixed-point analogue of softmax shift invariance);
* Softermax is equivariant under permutations of the score vector;
* quantization is idempotent and projection-like;
* the straight-through fake-quantizer never changes values that are already
  representable.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    SoftermaxConfig,
    base2_softmax,
    online_softmax,
    softermax,
    softmax_reference,
)
from repro.fixedpoint import QFormat, quantize
from repro.quant import FakeQuantizer, compute_scale, fake_quantize_array

score_rows = st.lists(
    st.floats(min_value=-15.0, max_value=15.0, allow_nan=False, allow_infinity=False),
    min_size=2, max_size=40,
)


class TestSoftmaxEquivalences:
    @given(score_rows)
    @settings(max_examples=50, deadline=None)
    def test_online_equals_two_pass_for_any_row(self, row):
        x = np.array([row])
        assert np.allclose(online_softmax(x, base=np.e), softmax_reference(x), atol=1e-12)

    @given(score_rows, st.floats(min_value=-50.0, max_value=50.0, allow_nan=False))
    @settings(max_examples=50, deadline=None)
    def test_reference_softmax_shift_invariance(self, row, shift):
        x = np.array([row])
        assert np.allclose(softmax_reference(x), softmax_reference(x + shift), atol=1e-9)

    @given(score_rows)
    @settings(max_examples=50, deadline=None)
    def test_base2_preserves_ranking(self, row):
        x = np.array([row])
        assert np.array_equal(np.argsort(base2_softmax(x)), np.argsort(softmax_reference(x)))


class TestSoftermaxInvariances:
    @given(score_rows, st.integers(min_value=-8, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_integer_shift_invariance(self, row, shift):
        """Adding an integer to every score leaves Softermax unchanged.

        The integer max shifts by exactly the same integer, so every
        ``x - max`` difference -- and hence every power of two, the running
        sum and the outputs -- is bit-identical (as long as nothing
        saturates at the input quantizer).
        """
        x = np.array([row])
        config = SoftermaxConfig.paper_table1()
        # Keep both versions inside the representable input range.
        if np.max(np.abs(x)) + abs(shift) >= config.input_fmt.max_value - 1:
            return
        assert np.array_equal(softermax(x, config=config),
                              softermax(x + shift, config=config))

    @given(score_rows, st.randoms(use_true_random=False))
    @settings(max_examples=50, deadline=None)
    def test_permutation_equivariance(self, row, rnd):
        x = np.array(row)
        permutation = list(range(len(row)))
        rnd.shuffle(permutation)
        permutation = np.array(permutation)
        config = SoftermaxConfig.paper_table1()
        direct = softermax(x[None, permutation], config=config)[0]
        permuted = softermax(x[None, :], config=config)[0][permutation]
        assert np.array_equal(direct, permuted)

    @given(score_rows)
    @settings(max_examples=50, deadline=None)
    def test_monotonicity_of_outputs_in_scores(self, row):
        """Larger scores never receive smaller probabilities."""
        x = np.array([row])
        probs = softermax(x)[0]
        order = np.argsort(np.array(row))
        sorted_probs = probs[order]
        assert np.all(np.diff(sorted_probs) >= -1e-12)


class TestQuantizationProperties:
    @given(st.lists(st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
                    min_size=1, max_size=64),
           st.integers(min_value=0, max_value=12),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_quantize_is_idempotent(self, values, frac_bits, int_bits):
        fmt = QFormat(int_bits, frac_bits, signed=True)
        arr = np.asarray(values)
        once = quantize(arr, fmt)
        twice = quantize(once, fmt)
        assert np.array_equal(once, twice)

    @given(st.lists(st.floats(min_value=-10.0, max_value=10.0, allow_nan=False),
                    min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_fake_quantize_is_a_projection(self, values):
        arr = np.asarray(values)
        params = compute_scale(10.0, num_bits=8)
        once = fake_quantize_array(arr, params)
        twice = fake_quantize_array(once, params)
        assert np.allclose(once, twice)

    @given(st.integers(min_value=-127, max_value=127))
    @settings(max_examples=60, deadline=None)
    def test_fake_quantizer_fixes_representable_points(self, code):
        quantizer = FakeQuantizer(num_bits=8)
        params = quantizer.set_amax(127.0)
        value = np.array([code * params.scale])
        assert np.allclose(quantizer(value), value)

    @given(st.lists(st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
                    min_size=2, max_size=32))
    @settings(max_examples=60, deadline=None)
    def test_quantization_preserves_ordering_up_to_ties(self, values):
        fmt = QFormat(7, 2, signed=True)
        arr = np.asarray(values)
        q = quantize(arr, fmt)
        # Quantization is monotone: if a < b then q(a) <= q(b).
        order = np.argsort(arr, kind="stable")
        assert np.all(np.diff(q[order]) >= -1e-12)
