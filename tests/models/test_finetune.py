"""Tests for the Softermax-aware fine-tuning loop (small, fast settings)."""

import numpy as np
import pytest

from repro.data import make_sst2, make_squad
from repro.models import BertConfig, FinetuneConfig, finetune, pretrain_task_model
from repro.models.finetune import FinetuneResult
from repro.nn.layers import Linear


FAST = FinetuneConfig(pretrain_epochs=4, finetune_epochs=2, batch_size=16,
                      pretrain_lr=5e-3, calibration_batches=2, seed=0)


@pytest.fixture(scope="module")
def small_task():
    return make_sst2(num_train=96, num_dev=48, seed=0)


@pytest.fixture(scope="module")
def small_config(small_task):
    return BertConfig.tiny_base(vocab_size=small_task.vocab_size,
                                max_seq_len=small_task.seq_len)


@pytest.fixture(scope="module")
def pretrained_state(small_task, small_config):
    model = pretrain_task_model(small_task, small_config, FAST)
    return model.state_dict()


class TestPretraining:
    def test_pretraining_learns_the_easy_task(self, small_task, small_config, pretrained_state):
        from repro.eval import evaluate_model
        from repro.models import TaskModel

        model = TaskModel(small_config, small_task, seed=0)
        model.load_state_dict(pretrained_state)
        model.eval()
        assert evaluate_model(model, small_task, split="train") > 80.0


class TestFinetune:
    def test_baseline_and_softermax_results(self, small_task, small_config, pretrained_state):
        baseline = finetune(small_task, small_config, "reference", FAST,
                            pretrained_state=pretrained_state)
        softermax_run = finetune(small_task, small_config, "softermax", FAST,
                                 pretrained_state=pretrained_state)
        assert isinstance(baseline, FinetuneResult)
        assert baseline.metric_name == "accuracy"
        assert baseline.softmax_variant == "reference"
        assert softermax_run.softmax_variant == "softermax"
        # Both learn the task; Softermax stays within a few points of baseline.
        assert baseline.score > 75.0
        assert softermax_run.score > 75.0
        assert abs(baseline.score - softermax_run.score) < 15.0

    def test_loss_history_recorded_and_decreasing(self, small_task, small_config, pretrained_state):
        result = finetune(small_task, small_config, "softermax", FAST,
                          pretrained_state=pretrained_state)
        assert len(result.loss_history) > 0
        first = np.mean(result.loss_history[:3])
        last = np.mean(result.loss_history[-3:])
        assert last <= first + 0.1

    def test_quantizers_attached_during_finetune(self, small_task, small_config,
                                                 pretrained_state, monkeypatch):
        attached = {}

        import importlib

        # repro.models re-exports the finetune *function* under the same name
        # as the submodule, so resolve the module object explicitly.
        finetune_module = importlib.import_module("repro.models.finetune")
        original = finetune_module.attach_quantizers

        def spy(model, **kwargs):
            result = original(model, **kwargs)
            attached["count"] = len(result)
            attached["bits"] = kwargs.get("num_bits")
            return result

        monkeypatch.setattr(finetune_module, "attach_quantizers", spy)
        finetune(small_task, small_config, "reference", FAST,
                 pretrained_state=pretrained_state)
        assert attached["count"] > 0
        assert attached["bits"] == 8

    def test_quantization_can_be_disabled(self, small_task, small_config, pretrained_state):
        config = FinetuneConfig(pretrain_epochs=0, finetune_epochs=1, batch_size=16,
                                quantize_model=False, seed=0)
        result = finetune(small_task, small_config, "reference", config,
                          pretrained_state=pretrained_state)
        assert result.score > 0.0

    def test_span_task_finetunes(self):
        task = make_squad(num_train=64, num_dev=24)
        config = BertConfig.tiny_base(vocab_size=task.vocab_size, max_seq_len=task.seq_len)
        result = finetune(task, config, "softermax",
                          FinetuneConfig(pretrain_epochs=3, finetune_epochs=1,
                                         batch_size=16, seed=0))
        assert result.metric_name == "squad_f1"
        assert 0.0 <= result.score <= 100.0


class TestDeterminism:
    def test_same_seed_same_result(self, small_task, small_config, pretrained_state):
        a = finetune(small_task, small_config, "reference", FAST,
                     pretrained_state=pretrained_state)
        b = finetune(small_task, small_config, "reference", FAST,
                     pretrained_state=pretrained_state)
        assert a.score == pytest.approx(b.score)
