"""Tests for the BERT-style models and task heads."""

import numpy as np
import pytest

from repro.data import make_sst2, make_squad, make_stsb
from repro.models import (
    BertConfig,
    BertEncoderModel,
    ClassificationHead,
    RegressionHead,
    SpanHead,
    TaskModel,
)
from repro.nn import Tensor


class TestBertConfig:
    def test_published_geometries(self):
        base = BertConfig.bert_base()
        large = BertConfig.bert_large()
        assert (base.hidden_dim, base.num_layers, base.num_heads) == (768, 12, 12)
        assert (large.hidden_dim, large.num_layers, large.num_heads) == (1024, 24, 16)
        assert base.head_dim == 64
        assert large.head_dim == 64

    def test_parameter_count_estimates_published_sizes(self):
        # BERT-Base ~110M, BERT-Large ~340M (encoder + embeddings).
        assert 90e6 < BertConfig.bert_base().parameter_count_estimate() < 130e6
        assert 280e6 < BertConfig.bert_large().parameter_count_estimate() < 400e6

    def test_tiny_surrogates_are_trainable_sizes(self):
        tiny = BertConfig.tiny_base()
        assert tiny.parameter_count_estimate() < 100_000
        assert BertConfig.tiny_large().parameter_count_estimate() > tiny.parameter_count_estimate()

    def test_head_divisibility_enforced(self):
        with pytest.raises(ValueError):
            BertConfig(30, 30, 2, 4, 60, 32)


class TestBertEncoderModel:
    def test_forward_shape(self, rng):
        config = BertConfig.tiny_base(vocab_size=20, max_seq_len=16)
        model = BertEncoderModel(config, seed=0)
        ids = rng.integers(0, 20, size=(3, 12))
        out = model(ids)
        assert out.shape == (3, 12, config.hidden_dim)

    def test_sequence_length_guard(self):
        config = BertConfig.tiny_base(vocab_size=20, max_seq_len=8)
        model = BertEncoderModel(config, seed=0)
        with pytest.raises(ValueError):
            model(np.zeros((1, 16), dtype=np.int64))

    def test_parameter_count_matches_estimate_roughly(self):
        config = BertConfig.tiny_base(vocab_size=20, max_seq_len=16)
        model = BertEncoderModel(config, seed=0)
        estimate = config.parameter_count_estimate()
        actual = model.num_parameters()
        assert abs(actual - estimate) / estimate < 0.1

    def test_set_softmax_variant_changes_inference(self, rng):
        config = BertConfig.tiny_base(vocab_size=20, max_seq_len=16)
        model = BertEncoderModel(config, seed=0)
        model.eval()
        ids = rng.integers(0, 20, size=(2, 10))
        ref = model(ids).data.copy()
        model.set_softmax_variant("softermax")
        soft = model(ids).data
        assert not np.allclose(ref, soft)
        assert np.max(np.abs(ref - soft)) < 1.0


class TestHeads:
    def test_classification_head_shape(self, rng):
        head = ClassificationHead(16, 3, seed=0)
        out = head(Tensor(rng.normal(size=(4, 7, 16))))
        assert out.shape == (4, 3)

    def test_regression_head_shape(self, rng):
        head = RegressionHead(16, seed=0)
        out = head(Tensor(rng.normal(size=(5, 7, 16))))
        assert out.shape == (5,)

    def test_span_head_shapes_and_masking(self, rng):
        head = SpanHead(16, seed=0)
        hidden = Tensor(rng.normal(size=(2, 6, 16)))
        mask = np.array([[1, 1, 1, 0, 0, 0], [1, 1, 1, 1, 1, 1]])
        start, end = head(hidden, mask)
        assert start.shape == (2, 6)
        assert end.shape == (2, 6)
        assert np.all(start.data[0, 3:] < -10)
        assert np.all(end.data[0, 3:] < -10)


class TestTaskModel:
    def test_classification_task_model(self):
        task = make_sst2(num_train=8, num_dev=4)
        model = TaskModel(BertConfig.tiny_base(vocab_size=task.vocab_size,
                                               max_seq_len=task.seq_len), task, seed=0)
        batch = next(task.dev.batches(4))
        logits = model(batch.input_ids, batch.attention_mask)
        assert logits.shape == (4, 2)

    def test_regression_task_model(self):
        task = make_stsb(num_train=8, num_dev=4)
        model = TaskModel(BertConfig.tiny_base(vocab_size=task.vocab_size,
                                               max_seq_len=task.seq_len), task, seed=0)
        batch = next(task.dev.batches(4))
        out = model(batch.input_ids, batch.attention_mask)
        assert out.shape == (4,)

    def test_span_task_model(self):
        task = make_squad(num_train=8, num_dev=4)
        model = TaskModel(BertConfig.tiny_base(vocab_size=task.vocab_size,
                                               max_seq_len=task.seq_len), task, seed=0)
        batch = next(task.dev.batches(4))
        start, end = model(batch.input_ids, batch.attention_mask)
        assert start.shape == (4, task.seq_len)
        assert end.shape == (4, task.seq_len)

    def test_unknown_task_type_rejected(self):
        task = make_sst2(num_train=8, num_dev=4)
        task.task_type = "generation"
        with pytest.raises(ValueError):
            TaskModel(BertConfig.tiny_base(), task, seed=0)

    def test_set_softmax_variant_propagates(self):
        task = make_sst2(num_train=8, num_dev=4)
        model = TaskModel(BertConfig.tiny_base(vocab_size=task.vocab_size,
                                               max_seq_len=task.seq_len), task, seed=0)
        model.set_softmax_variant("base2")
        for layer in model.encoder_model.encoder.layers:
            assert layer.attention.softmax_variant.name == "base2"


class TestEncodeRagged:
    """The ragged-batch serving entry point and its bit-transparency."""

    def _model(self, variant="softermax"):
        return BertEncoderModel(BertConfig.tiny_base(), softmax_variant=variant,
                                kernel="auto", seed=0).eval()

    def test_batched_bitwise_identical_to_solo(self):
        model = self._model()
        rng = np.random.default_rng(11)
        seqs = [list(rng.integers(1, 32, size=length))
                for length in (1, 2, 5, 9, 9, 17, 32)]
        batched = model.encode_ragged(seqs)
        for seq, got in zip(seqs, batched):
            alone = model.encode_ragged([seq])[0]
            assert got.shape == (len(seq), model.config.hidden_dim)
            assert np.array_equal(got, alone)

    def test_batch_order_does_not_change_bits(self):
        model = self._model()
        rng = np.random.default_rng(12)
        seqs = [list(rng.integers(1, 32, size=length))
                for length in (4, 12, 7, 12, 30)]
        forward = model.encode_ragged(seqs)
        backward = model.encode_ragged(seqs[::-1])[::-1]
        for a, b in zip(forward, backward):
            assert np.array_equal(a, b)

    def test_reference_variant_also_transparent(self):
        model = self._model(variant="reference")
        rng = np.random.default_rng(13)
        seqs = [list(rng.integers(1, 32, size=length)) for length in (3, 11, 24)]
        batched = model.encode_ragged(seqs)
        for seq, got in zip(seqs, batched):
            assert np.array_equal(got, model.encode_ragged([seq])[0])

    def test_empty_batch_and_validation(self):
        model = self._model()
        assert model.encode_ragged([]) == []
        with pytest.raises(ValueError, match="at least one token"):
            model.encode_ragged([[1, 2], []])
        with pytest.raises(ValueError, match="max_seq_len"):
            model.encode_ragged([[1] * (model.config.max_seq_len + 1)])

    def test_requires_eval_mode(self):
        model = self._model().train()
        with pytest.raises(RuntimeError, match="eval"):
            model.encode_ragged([[1, 2, 3]])
