"""Tests for the evaluation metrics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval import (
    METRIC_FUNCTIONS,
    accuracy,
    compute_metric,
    f1_binary,
    matthews_corrcoef,
    metric_summary,
    pearson_corr,
    pearson_spearman,
    spearman_corr,
    squad_em_f1,
    squad_f1,
)


class TestAccuracy:
    def test_perfect_and_zero(self):
        assert accuracy(np.array([1, 0, 1]), np.array([1, 0, 1])) == 100.0
        assert accuracy(np.array([1, 1, 1]), np.array([0, 0, 0])) == 0.0

    def test_partial(self):
        assert accuracy(np.array([1, 0, 1, 0]), np.array([1, 0, 0, 1])) == 50.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.array([1]), np.array([1, 0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            accuracy(np.array([]), np.array([]))


class TestF1:
    def test_perfect(self):
        assert f1_binary(np.array([1, 0, 1]), np.array([1, 0, 1])) == 100.0

    def test_no_true_positives(self):
        assert f1_binary(np.array([0, 0]), np.array([1, 1])) == 0.0

    def test_known_value(self):
        # tp=1, fp=1, fn=1 -> precision=recall=0.5 -> f1=0.5
        preds = np.array([1, 1, 0])
        targets = np.array([1, 0, 1])
        assert f1_binary(preds, targets) == pytest.approx(50.0)


class TestMatthews:
    def test_perfect_correlation(self):
        labels = np.array([0, 1, 0, 1, 1])
        assert matthews_corrcoef(labels, labels) == pytest.approx(100.0)

    def test_inverse_correlation(self):
        preds = np.array([0, 1, 0, 1])
        assert matthews_corrcoef(preds, 1 - preds) == pytest.approx(-100.0)

    def test_constant_prediction_is_zero(self):
        assert matthews_corrcoef(np.ones(6, dtype=int), np.array([0, 1, 0, 1, 0, 1])) == 0.0


class TestCorrelations:
    def test_pearson_linear_relationship(self, rng):
        x = rng.normal(size=200)
        assert pearson_corr(2 * x + 3, x) == pytest.approx(100.0)

    def test_spearman_monotonic_relationship(self, rng):
        x = rng.normal(size=200)
        assert spearman_corr(np.exp(x), x) == pytest.approx(100.0)

    def test_constant_inputs_return_zero(self):
        assert pearson_corr(np.ones(10), np.arange(10)) == 0.0
        assert spearman_corr(np.ones(10), np.arange(10)) == 0.0

    def test_pearson_spearman_average(self, rng):
        x = rng.normal(size=50)
        y = 0.8 * x + rng.normal(size=50) * 0.1
        combined = pearson_spearman(y, x)
        assert combined == pytest.approx((pearson_corr(y, x) + spearman_corr(y, x)) / 2)

    @given(st.integers(min_value=5, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_correlation_bounded(self, n):
        rng = np.random.default_rng(n)
        a, b = rng.normal(size=n), rng.normal(size=n)
        assert -100.0 <= pearson_corr(a, b) <= 100.0
        assert -100.0 <= spearman_corr(a, b) <= 100.0


class TestSquadMetrics:
    def test_exact_match(self):
        spans = np.array([[3, 5], [7, 7]])
        em, f1 = squad_em_f1(spans, spans)
        assert em == 100.0
        assert f1 == 100.0

    def test_partial_overlap(self):
        pred = np.array([[3, 6]])
        gold = np.array([[4, 6]])
        em, f1 = squad_em_f1(pred, gold)
        assert em == 0.0
        # overlap 3 tokens, pred length 4, gold length 3 -> f1 = 2*0.75*1/(1.75)
        assert f1 == pytest.approx(2 * 0.75 * 1.0 / 1.75 * 100)

    def test_no_overlap(self):
        em, f1 = squad_em_f1(np.array([[0, 1]]), np.array([[5, 6]]))
        assert em == 0.0
        assert f1 == 0.0

    def test_squad_f1_returns_f1_only(self):
        pred = np.array([[1, 2]])
        gold = np.array([[1, 2]])
        assert squad_f1(pred, gold) == 100.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            squad_em_f1(np.array([[1, 2]]), np.array([[1, 2], [3, 4]]))
        with pytest.raises(ValueError):
            squad_em_f1(np.array([1, 2]), np.array([1, 2]))


class TestRegistry:
    def test_all_metrics_registered(self):
        assert set(METRIC_FUNCTIONS) == {"accuracy", "f1", "matthews",
                                         "pearson_spearman", "squad_f1"}

    def test_compute_metric_dispatch(self):
        assert compute_metric("accuracy", np.array([1, 1]), np.array([1, 0])) == 50.0

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            compute_metric("bleu", np.array([1]), np.array([1]))

    def test_metric_summary(self):
        summary = metric_summary({"a": 1.0, "b": -2.0, "c": 4.0})
        assert summary["mean"] == pytest.approx(1.0)
        assert summary["min"] == -2.0
        assert summary["max"] == 4.0
