"""Tests for the accuracy pipeline and the sweep drivers."""

import numpy as np
import pytest

from repro.data import make_sst2, make_squad
from repro.eval import (
    AccuracyComparison,
    energy_sweep_series,
    evaluate_model,
    evaluate_squad_detailed,
    predict,
    results_to_rows,
    run_accuracy_comparison,
    runtime_fraction_series,
    softermax_error_sweep,
)
from repro.models import BertConfig, FinetuneConfig, TaskModel


class TestPredictAndEvaluate:
    def test_classification_predictions_are_class_ids(self):
        task = make_sst2(num_train=16, num_dev=8)
        model = TaskModel(BertConfig.tiny_base(vocab_size=task.vocab_size,
                                               max_seq_len=task.seq_len), task, seed=0)
        preds = predict(model, task)
        assert preds.shape == (8,)
        assert set(np.unique(preds)) <= {0, 1}

    def test_span_predictions_are_valid_spans(self):
        task = make_squad(num_train=16, num_dev=8)
        model = TaskModel(BertConfig.tiny_base(vocab_size=task.vocab_size,
                                               max_seq_len=task.seq_len), task, seed=0)
        preds = predict(model, task)
        assert preds.shape == (8, 2)
        assert np.all(preds[:, 1] >= preds[:, 0])

    def test_evaluate_model_returns_percentage(self):
        task = make_sst2(num_train=16, num_dev=8)
        model = TaskModel(BertConfig.tiny_base(vocab_size=task.vocab_size,
                                               max_seq_len=task.seq_len), task, seed=0)
        score = evaluate_model(model, task)
        assert 0.0 <= score <= 100.0

    def test_evaluate_squad_detailed(self):
        task = make_squad(num_train=16, num_dev=8)
        model = TaskModel(BertConfig.tiny_base(vocab_size=task.vocab_size,
                                               max_seq_len=task.seq_len), task, seed=0)
        detail = evaluate_squad_detailed(model, task)
        assert set(detail) == {"exact_match", "f1"}

    def test_evaluate_squad_detailed_requires_span_task(self):
        task = make_sst2(num_train=16, num_dev=8)
        model = TaskModel(BertConfig.tiny_base(vocab_size=task.vocab_size,
                                               max_seq_len=task.seq_len), task, seed=0)
        with pytest.raises(ValueError):
            evaluate_squad_detailed(model, task)


class TestAccuracyComparison:
    def test_delta_and_summaries(self):
        comparison = AccuracyComparison(
            model_name="tiny",
            baseline={"sst2": 90.0, "rte": 70.0},
            softermax={"sst2": 91.0, "rte": 69.0},
        )
        assert comparison.delta() == {"sst2": 1.0, "rte": -1.0}
        assert comparison.average_delta() == pytest.approx(0.0)
        assert comparison.worst_drop() == pytest.approx(-1.0)
        assert comparison.tasks == ["sst2", "rte"]

    def test_results_to_rows(self):
        comparison = AccuracyComparison(model_name="tiny",
                                        baseline={"sst2": 90.0},
                                        softermax={"sst2": 91.0})
        rows = results_to_rows(comparison)
        assert rows[0]["variant"] == "Baseline"
        assert rows[1]["sst2"] == 91.0

    def test_run_accuracy_comparison_single_small_task(self):
        task = make_sst2(num_train=64, num_dev=32)
        config = BertConfig.tiny_base(vocab_size=task.vocab_size, max_seq_len=task.seq_len)
        fast = FinetuneConfig(pretrain_epochs=3, finetune_epochs=1, batch_size=16,
                              calibration_batches=1, seed=0)
        comparison = run_accuracy_comparison([task], config, fast)
        assert set(comparison.baseline) == {"sst2"}
        assert set(comparison.softermax) == {"sst2"}
        assert comparison.baseline["sst2"] > 60.0


class TestSweepDrivers:
    def test_runtime_fraction_series_shape(self):
        series = runtime_fraction_series(seq_lens=(128, 512))
        assert series.seq_lens == [128, 512]
        assert set(series.fractions) == {"matmul", "softmax", "dropout", "norm_act_other"}
        assert len(series.series("softmax")) == 2

    def test_energy_sweep_series(self):
        series = energy_sweep_series(seq_lens=(128, 384), vector_sizes=(16, 32))
        assert len(series) == 2
        for s in series:
            assert len(s.seq_lens) == 2
            assert all(r < 1.0 for r in s.ratios())

    def test_softermax_error_sweep(self):
        points = softermax_error_sweep(seq_lens=(32, 64), batch=4)
        assert len(points) == 2
        for point in points:
            assert point.max_abs_error < 0.05
            assert 0.0 <= point.argmax_agreement <= 1.0

    def test_softermax_error_sweep_accepts_kernel_options(self):
        base = softermax_error_sweep(seq_lens=(32,), batch=4)
        blocked = softermax_error_sweep(seq_lens=(32,), batch=4,
                                        kernel="softermax-blocked",
                                        kernel_options={"block_rows": 2})
        # Bit-accurate family: identical numbers regardless of engine knobs.
        assert blocked[0] == base[0]

    def test_kernel_timing_sweep_records_memory_and_options(self):
        from repro.eval import kernel_timing_sweep

        points = kernel_timing_sweep(
            kernels=("softermax-fused", "softermax-blocked(block_rows=4)"),
            seq_lens=(64,), batches=(4,), repeats=1, min_calls=1)
        assert len(points) == 2
        for point in points:
            assert point.best_seconds > 0
            assert point.peak_mem_bytes is None or point.peak_mem_bytes > 0
            assert "peak_mem_bytes" in vars(point)
