"""Tests for the Softermax and DesignWare-baseline hardware unit models."""

import pytest

from repro.core import SoftermaxConfig
from repro.hardware import (
    BaselineNormalizationUnit,
    BaselineUnnormedUnit,
    SoftermaxNormalizationUnit,
    SoftermaxUnnormedUnit,
)


class TestSoftermaxUnnormedUnit:
    def test_area_breakdown_has_the_papers_subunits(self):
        unit = SoftermaxUnnormedUnit(vector_size=32)
        items = unit.area().as_dict()
        assert any("intmax" in name for name in items)
        assert any("pow2" in name for name in items)
        assert any("reduction" in name or "running_sum" in name for name in items)

    def test_area_scales_with_vector_size(self):
        small = SoftermaxUnnormedUnit(vector_size=16).total_area()
        large = SoftermaxUnnormedUnit(vector_size=32).total_area()
        assert 1.5 < large / small < 2.5

    def test_energy_per_element_roughly_independent_of_width(self):
        small = SoftermaxUnnormedUnit(vector_size=16).energy_per_element()
        large = SoftermaxUnnormedUnit(vector_size=32).energy_per_element()
        assert small == pytest.approx(large, rel=0.2)

    def test_row_energy_scales_with_slices(self):
        unit = SoftermaxUnnormedUnit(vector_size=32)
        assert unit.row_energy(128).total == pytest.approx(4 * unit.slice_energy().total)
        assert unit.row_energy(64).total == pytest.approx(2 * unit.slice_energy().total)

    def test_row_energy_validates_seq_len(self):
        with pytest.raises(ValueError):
            SoftermaxUnnormedUnit().row_energy(0)

    def test_invalid_vector_size(self):
        with pytest.raises(ValueError):
            SoftermaxUnnormedUnit(vector_size=0)

    def test_wider_formats_cost_more(self):
        table1 = SoftermaxUnnormedUnit(config=SoftermaxConfig.paper_table1())
        wide = SoftermaxUnnormedUnit(config=SoftermaxConfig.high_precision())
        assert wide.total_area() > table1.total_area()
        assert wide.slice_energy().total > table1.slice_energy().total


class TestSoftermaxNormalizationUnit:
    def test_reciprocal_energy_amortized_per_row(self):
        unit = SoftermaxNormalizationUnit(vector_size=32)
        short = unit.row_energy(8).total
        long = unit.row_energy(512).total
        # Per-element cost dominates for long rows.
        assert long > 32 * short / 10

    def test_area_has_shifter_and_multiplier(self):
        items = SoftermaxNormalizationUnit().area().as_dict()
        assert any("shifter" in name for name in items)
        assert any("multiplier" in name for name in items)

    def test_row_energy_validates_seq_len(self):
        with pytest.raises(ValueError):
            SoftermaxNormalizationUnit().row_energy(-1)


class TestBaselineUnits:
    def test_exp_units_dominate_baseline_area(self):
        unit = BaselineUnnormedUnit(vector_size=32)
        items = unit.area().as_dict()
        assert items["exp_units"] > 0.4 * unit.total_area()

    def test_baseline_charges_a_second_pass(self):
        energy = BaselineUnnormedUnit(vector_size=32).slice_energy().as_dict()
        assert "second_pass_restage" in energy

    def test_divider_dominates_baseline_normalization(self):
        unit = BaselineNormalizationUnit(vector_size=32)
        items = unit.area().as_dict()
        assert items["dividers"] > 0.5 * unit.total_area()

    def test_invalid_vector_sizes(self):
        with pytest.raises(ValueError):
            BaselineUnnormedUnit(vector_size=0)
        with pytest.raises(ValueError):
            BaselineNormalizationUnit(vector_size=0)


class TestSoftermaxVsBaseline:
    """The headline unit-level claims of the paper (section VI.B)."""

    def test_unnormed_unit_is_much_smaller(self):
        softermax = SoftermaxUnnormedUnit(vector_size=32).total_area()
        baseline = BaselineUnnormedUnit(vector_size=32).total_area()
        assert softermax < 0.4 * baseline  # paper: 0.25x

    def test_unnormed_unit_is_much_more_energy_efficient(self):
        softermax = SoftermaxUnnormedUnit(vector_size=32).row_energy(384).total
        baseline = BaselineUnnormedUnit(vector_size=32).row_energy(384).total
        assert softermax < 0.2 * baseline  # paper: 0.10x

    def test_normalization_unit_is_smaller_but_less_dramatically(self):
        softermax = SoftermaxNormalizationUnit(vector_size=32).total_area()
        baseline = BaselineNormalizationUnit(vector_size=32).total_area()
        assert 0.4 * baseline < softermax < 0.9 * baseline  # paper: 0.65x

    def test_normalization_unit_energy_ratio(self):
        softermax = SoftermaxNormalizationUnit(vector_size=32).row_energy(384).total
        baseline = BaselineNormalizationUnit(vector_size=32).row_energy(384).total
        assert softermax < 0.6 * baseline  # paper: 0.39x

    def test_ratios_hold_for_16_wide_units_too(self):
        softermax = SoftermaxUnnormedUnit(vector_size=16).total_area()
        baseline = BaselineUnnormedUnit(vector_size=16).total_area()
        assert softermax < 0.4 * baseline
