"""Tests for the GPU operator runtime model (Figure 1)."""

import pytest

from repro.hardware import (
    GPUModel,
    model_runtime_breakdown,
    runtime_breakdown_sweep,
    transformer_layer_counts,
)
from repro.models import BertConfig


class TestOperatorCounts:
    def test_matmul_flops_match_closed_form(self):
        config = BertConfig.bert_base(max_seq_len=512)
        seq = 128
        counts = transformer_layer_counts(config, seq)
        h, inter, heads = config.hidden_dim, config.intermediate_dim, config.num_heads
        expected = 2 * (
            3 * seq * h * h
            + heads * seq * seq * (h / heads)
            + heads * seq * (h / heads) * seq
            + seq * h * h
            + seq * inter * h
            + seq * h * inter
        )
        assert counts.matmul_flops == pytest.approx(expected)

    def test_softmax_elements_are_quadratic_in_seq(self):
        config = BertConfig.bert_large(max_seq_len=4096)
        small = transformer_layer_counts(config, 128).softmax_elements
        large = transformer_layer_counts(config, 512).softmax_elements
        assert large == pytest.approx(16 * small)

    def test_batch_scales_everything(self):
        config = BertConfig.bert_base()
        single = transformer_layer_counts(config, 128, batch=1)
        double = transformer_layer_counts(config, 128, batch=2)
        assert double.matmul_flops == pytest.approx(2 * single.matmul_flops)
        assert double.softmax_elements == pytest.approx(2 * single.softmax_elements)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            transformer_layer_counts(BertConfig.bert_base(), 0)


class TestRuntimeBreakdown:
    def test_fractions_sum_to_one(self):
        breakdown = model_runtime_breakdown(BertConfig.bert_large(max_seq_len=4096), 384)
        assert sum(breakdown.fractions().values()) == pytest.approx(1.0)

    def test_contains_all_operator_classes(self):
        breakdown = model_runtime_breakdown(BertConfig.bert_large(max_seq_len=4096), 384)
        assert set(breakdown.times) == {"matmul", "softmax", "dropout", "norm_act_other"}

    def test_softmax_fraction_grows_with_sequence_length(self):
        """The central claim of Figure 1."""
        sweep = runtime_breakdown_sweep(seq_lens=(128, 384, 1024, 2048))
        fractions = [b.softmax_fraction for b in sweep]
        assert fractions == sorted(fractions)
        assert fractions[0] < 0.35
        assert fractions[-1] > 0.45

    def test_matmul_dominates_at_short_sequences(self):
        breakdown = model_runtime_breakdown(BertConfig.bert_large(max_seq_len=4096), 128)
        fractions = breakdown.fractions()
        assert fractions["matmul"] > fractions["softmax"]

    def test_softmax_overtakes_matmul_at_long_sequences(self):
        breakdown = model_runtime_breakdown(BertConfig.bert_large(max_seq_len=4096), 2048)
        fractions = breakdown.fractions()
        assert fractions["softmax"] > fractions["matmul"]

    def test_faster_softmax_unit_shrinks_the_softmax_share(self):
        slow = GPUModel()
        fast = GPUModel(softmax_elements_per_second=slow.softmax_elements_per_second * 10)
        config = BertConfig.bert_large(max_seq_len=4096)
        share_slow = model_runtime_breakdown(config, 1024, gpu=slow).softmax_fraction
        share_fast = model_runtime_breakdown(config, 1024, gpu=fast).softmax_fraction
        assert share_fast < share_slow

    def test_bert_base_has_smaller_softmax_share_than_bert_large(self):
        # Fewer heads and layers but same per-layer ratio; shares are close,
        # so just check both are sane probabilities.
        base = model_runtime_breakdown(BertConfig.bert_base(max_seq_len=2048), 512).softmax_fraction
        large = model_runtime_breakdown(BertConfig.bert_large(max_seq_len=2048), 512).softmax_fraction
        assert 0.0 < base < 1.0
        assert 0.0 < large < 1.0
