"""Tests for the technology model and the unit composition framework."""

import pytest

from repro.hardware import AreaBreakdown, EnergyBreakdown, Technology, ratio
from repro.hardware.technology import DEFAULT_TECHNOLOGY


class TestTechnologyScaling:
    def test_adder_scales_linearly_with_bits(self):
        tech = Technology()
        assert tech.int_adder_area(16) == pytest.approx(2 * tech.int_adder_area(8))
        assert tech.int_adder_energy(16) == pytest.approx(2 * tech.int_adder_energy(8))

    def test_multiplier_scales_with_product_of_widths(self):
        tech = Technology()
        assert tech.int_multiplier_area(16, 16) == pytest.approx(4 * tech.int_multiplier_area(8, 8))

    def test_mac_is_multiplier_plus_accumulator(self):
        tech = Technology()
        assert tech.int_mac_energy(8, 8, 24) == pytest.approx(
            tech.int_multiplier_energy(8, 8) + tech.int_adder_energy(24))

    def test_shifter_scales_with_log_of_shift_range(self):
        tech = Technology()
        assert tech.shifter_area(16, 16) == pytest.approx(4 / 5 * tech.shifter_area(16, 32))

    def test_fp16_exp_is_much_bigger_than_int_adder(self):
        tech = Technology()
        assert tech.fp16_exp_area > 50 * tech.int_adder_area(16)
        assert tech.fp16_exp_energy > 50 * tech.int_adder_energy(16)

    def test_lut_energy_grows_weakly_with_depth(self):
        tech = Technology()
        small = tech.lut_read_energy(4, 16)
        large = tech.lut_read_energy(128, 16)
        assert large > small
        assert large < 3 * small

    def test_sram_area_proportional_to_size(self):
        tech = Technology()
        assert tech.sram_area(128 * 1024) == pytest.approx(4 * tech.sram_area(32 * 1024))

    def test_invalid_bit_widths_rejected(self):
        tech = Technology()
        with pytest.raises(ValueError):
            tech.int_adder_area(0)
        with pytest.raises(ValueError):
            tech.lut_area(0, 8)
        with pytest.raises(ValueError):
            tech.sram_area(-1)

    def test_default_instance_exists(self):
        assert DEFAULT_TECHNOLOGY.name.startswith("tsmc7nm")


class TestBreakdowns:
    def test_area_breakdown_totals_and_merge(self):
        a = AreaBreakdown()
        a.add("x", 10.0)
        a.add("x", 5.0)
        b = AreaBreakdown()
        b.add("y", 1.0)
        a.merge(b, prefix="sub.")
        assert a.total == pytest.approx(16.0)
        assert a.as_dict() == {"x": 15.0, "sub.y": 1.0}

    def test_negative_area_rejected(self):
        with pytest.raises(ValueError):
            AreaBreakdown().add("x", -1.0)

    def test_energy_breakdown_scaling(self):
        e = EnergyBreakdown({"op": 2.0, "mem": 3.0})
        doubled = e.scaled(2.0)
        assert doubled.total == pytest.approx(10.0)
        assert e.total == pytest.approx(5.0)  # original unchanged
        assert doubled.total_uj == pytest.approx(10.0e-6)

    def test_energy_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            EnergyBreakdown({"op": 1.0}).scaled(-1.0)

    def test_ratio_checks_denominator(self):
        assert ratio(1.0, 2.0) == pytest.approx(0.5)
        with pytest.raises(ZeroDivisionError):
            ratio(1.0, 0.0)
