"""Tests for the PE model, the workload energy model and the paper's ratios."""

import pytest

from repro.hardware import (
    AttentionWorkload,
    PEConfig,
    ProcessingElement,
    attention_energy,
    compute_table4,
    sequence_length_sweep,
)


class TestPEConfig:
    def test_paper_table2_configurations(self):
        wide32 = PEConfig.wide32()
        wide16 = PEConfig.wide16()
        assert wide32.vector_size == 32 and wide32.num_lanes == 32
        assert wide32.weight_buffer_bytes == 128 * 1024
        assert wide16.vector_size == 16
        assert wide16.weight_buffer_bytes == 32 * 1024
        assert wide32.weight_bits == 8 and wide32.accumulation_bits == 24

    def test_num_macs(self):
        assert PEConfig.wide32().num_macs == 1024
        assert PEConfig.wide16().num_macs == 256

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            PEConfig(vector_size=0)


class TestProcessingElement:
    def test_softmax_impl_validation(self):
        with pytest.raises(ValueError):
            ProcessingElement(softmax_impl="lookup-table")

    def test_area_includes_macs_buffers_and_softmax(self):
        pe = ProcessingElement(softmax_impl="softermax")
        items = pe.area().as_dict()
        assert "mac_array" in items
        assert "weight_buffer" in items
        assert any(name.startswith("softmax_unnormed") for name in items)
        assert any(name.startswith("softmax_norm") for name in items)

    def test_area_without_normalization_unit_is_smaller(self):
        pe = ProcessingElement(softmax_impl="softermax")
        with_norm = pe.area(include_normalization_unit=True).total
        without_norm = pe.area(include_normalization_unit=False).total
        assert without_norm < with_norm

    def test_buffers_dominate_pe_area(self):
        pe = ProcessingElement(softmax_impl="softermax")
        items = pe.area().as_dict()
        buffers = items["input_buffer"] + items["weight_buffer"] + items["accumulation_collector"]
        assert buffers > 0.5 * pe.area().total

    def test_softmax_output_bits(self):
        assert ProcessingElement(softmax_impl="softermax").softmax_output_bits() == 8
        assert ProcessingElement(softmax_impl="designware").softmax_output_bits() == 16

    def test_mac_energy_positive_and_small(self):
        pe = ProcessingElement()
        assert 0.001 < pe.mac_energy() < 1.0


class TestAttentionWorkload:
    def test_squad_workload_dimensions(self):
        w = AttentionWorkload.squad()
        assert w.seq_len == 384
        assert w.num_rows == 384
        assert w.num_score_elements == 384 * 384
        assert w.num_macs == 384 * 384 * 64

    def test_multi_head_scaling(self):
        single = AttentionWorkload(seq_len=128, num_heads=1)
        multi = AttentionWorkload(seq_len=128, num_heads=16)
        assert multi.num_macs == 16 * single.num_macs

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            AttentionWorkload(seq_len=0)


class TestEnergyModel:
    def test_energy_grows_quadratically_with_seq_len(self):
        pe = ProcessingElement(softmax_impl="softermax")
        small = attention_energy(pe, AttentionWorkload(seq_len=128)).total
        large = attention_energy(pe, AttentionWorkload(seq_len=512)).total
        assert large == pytest.approx(16 * small, rel=0.25)

    def test_baseline_softmax_share_is_large(self):
        pe = ProcessingElement(softmax_impl="designware")
        breakdown = attention_energy(pe, AttentionWorkload.squad())
        softmax = sum(v for k, v in breakdown.items.items() if k.startswith("softmax."))
        assert softmax > 0.3 * breakdown.total

    def test_softermax_softmax_share_is_small(self):
        pe = ProcessingElement(softmax_impl="softermax")
        breakdown = attention_energy(pe, AttentionWorkload.squad())
        softmax = sum(v for k, v in breakdown.items.items() if k.startswith("softmax."))
        assert softmax < 0.2 * breakdown.total


class TestTable4:
    """The headline Table IV ratios (area and energy, unit and PE level)."""

    @pytest.fixture(scope="class")
    def table4(self):
        return compute_table4()

    def test_all_rows_present(self, table4):
        labels = {row.label for row in table4.area_rows}
        assert labels == {"Unnormed Softmax Unit", "Normalization Unit", "Full PE"}

    def test_softermax_wins_everywhere(self, table4):
        for row in table4.area_rows + table4.energy_rows:
            assert row.ratio < 1.0, row.label

    def test_unnormed_unit_ratios_match_paper_shape(self, table4):
        # Paper: 0.25x area, 0.10x energy.
        assert 0.1 < table4.area_ratio("Unnormed Softmax Unit") < 0.4
        assert 0.04 < table4.energy_ratio("Unnormed Softmax Unit") < 0.2

    def test_normalization_unit_ratios_match_paper_shape(self, table4):
        # Paper: 0.65x area, 0.39x energy.
        assert 0.45 < table4.area_ratio("Normalization Unit") < 0.9
        assert 0.15 < table4.energy_ratio("Normalization Unit") < 0.6

    def test_full_pe_ratios_match_paper_shape(self, table4):
        # Paper: 0.90x area, 0.43x energy.
        assert 0.8 < table4.area_ratio("Full PE") < 1.0
        assert 0.3 < table4.energy_ratio("Full PE") < 0.6

    def test_improvement_is_inverse_of_ratio(self, table4):
        row = table4.area_rows[0]
        assert row.improvement == pytest.approx(1.0 / row.ratio)

    def test_as_dict_structure(self, table4):
        d = table4.as_dict()
        assert set(d) == {"area", "energy"}
        assert set(d["area"]) == {"Unnormed Softmax Unit", "Normalization Unit", "Full PE"}


class TestFigure5Sweep:
    def test_sweep_covers_requested_points(self):
        points = sequence_length_sweep(seq_lens=(128, 384), vector_sizes=(16, 32))
        assert len(points) == 4
        assert {p.vector_size for p in points} == {16, 32}

    def test_softermax_always_lower_energy(self):
        for point in sequence_length_sweep(seq_lens=(128, 512, 2048)):
            assert point.softermax_energy_uj < point.baseline_energy_uj

    def test_baseline_slope_is_steeper(self):
        points = sequence_length_sweep(seq_lens=(256, 4096), vector_sizes=(32,))
        base_slope = points[1].baseline_energy_uj - points[0].baseline_energy_uj
        soft_slope = points[1].softermax_energy_uj - points[0].softermax_energy_uj
        assert base_slope > 1.5 * soft_slope

    def test_energy_increases_with_seq_len(self):
        points = sequence_length_sweep(seq_lens=(128, 256, 512, 1024), vector_sizes=(32,))
        energies = [p.softermax_energy_uj for p in points]
        assert energies == sorted(energies)
