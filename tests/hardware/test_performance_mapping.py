"""Tests for the latency model and the full-model attention mapping."""

import pytest

from repro.hardware import (
    AcceleratorConfig,
    BASELINE_LATENCY,
    PEConfig,
    SOFTERMAX_LATENCY,
    SoftmaxLatencyModel,
    attention_latency,
    compare_model_attention,
    latency_sweep,
    model_attention_cost,
    model_sweep,
    row_latency,
    throughput_sweep,
)
from repro.models import BertConfig


class TestLatencyModels:
    def test_builtin_models(self):
        assert SOFTERMAX_LATENCY.passes_over_scores == 1
        assert BASELINE_LATENCY.passes_over_scores == 2
        assert BASELINE_LATENCY.exp_pipeline_depth > SOFTERMAX_LATENCY.exp_pipeline_depth

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SoftmaxLatencyModel("bad", 0, 1, 1)
        with pytest.raises(ValueError):
            SoftmaxLatencyModel("bad", 1, 1, 0)


class TestRowLatency:
    def test_breakdown_components(self):
        breakdown = row_latency(384, SOFTERMAX_LATENCY)
        assert breakdown.max_pass_cycles == 0  # single pass
        assert breakdown.score_generation_cycles > 0
        assert breakdown.total_cycles == (breakdown.score_generation_cycles
                                          + breakdown.softmax_cycles)
        assert 0.0 < breakdown.softmax_overhead_fraction < 1.0

    def test_baseline_pays_the_extra_pass(self):
        soft = row_latency(384, SOFTERMAX_LATENCY)
        base = row_latency(384, BASELINE_LATENCY)
        assert base.max_pass_cycles > 0
        assert base.total_cycles > soft.total_cycles

    def test_latency_scales_with_seq_len(self):
        short = row_latency(128, SOFTERMAX_LATENCY)
        long = row_latency(1024, SOFTERMAX_LATENCY)
        assert long.total_cycles > 6 * short.total_cycles

    def test_wider_pe_is_faster(self):
        narrow = row_latency(512, SOFTERMAX_LATENCY, PEConfig.wide16())
        wide = row_latency(512, SOFTERMAX_LATENCY, PEConfig.wide32())
        assert wide.total_cycles < narrow.total_cycles

    def test_invalid_seq_len(self):
        with pytest.raises(ValueError):
            row_latency(0, SOFTERMAX_LATENCY)

    def test_as_dict_keys(self):
        d = row_latency(64, BASELINE_LATENCY).as_dict()
        assert set(d) == {"score_generation", "max_pass", "exponential", "normalization"}


class TestSweeps:
    def test_latency_sweep_speedup_above_one(self):
        for comparison in latency_sweep(seq_lens=(128, 512, 2048)):
            assert comparison.speedup > 1.0

    def test_speedup_shrinks_as_macs_dominate(self):
        # At longer sequences the MAC work grows as fast as the softmax work,
        # so the relative speedup saturates; it must never increase wildly.
        comparisons = latency_sweep(seq_lens=(128, 2048))
        assert comparisons[1].speedup <= comparisons[0].speedup + 0.01

    def test_throughput_sweep(self):
        reports = throughput_sweep(seq_lens=(128, 1024))
        for report in reports:
            assert report.softermax_rows_per_kcycle > report.baseline_rows_per_kcycle
            assert report.improvement > 1.0

    def test_attention_latency_scales_with_heads(self):
        one = attention_latency(256, SOFTERMAX_LATENCY, num_heads=1)
        four = attention_latency(256, SOFTERMAX_LATENCY, num_heads=4)
        assert four == 4 * one

    def test_attention_latency_validates_heads(self):
        with pytest.raises(ValueError):
            attention_latency(256, SOFTERMAX_LATENCY, num_heads=0)


class TestModelAttentionMapping:
    def test_accelerator_config_validation(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(pe_config=PEConfig.wide32(), num_pes=0)

    def test_energy_scales_with_layers(self):
        base = BertConfig.bert_base(max_seq_len=2048)
        large = BertConfig.bert_large(max_seq_len=2048)
        cost_base = model_attention_cost(base, 512)
        cost_large = model_attention_cost(large, 512)
        assert cost_large.energy_uj > cost_base.energy_uj
        assert cost_base.per_layer_energy_uj * base.num_layers == pytest.approx(
            cost_base.energy_uj)

    def test_softermax_saves_energy_at_model_level(self):
        comparison = compare_model_attention(BertConfig.bert_large(max_seq_len=2048), 512)
        assert comparison.energy_ratio < 0.7
        assert comparison.cycle_ratio < 1.0
        assert comparison.energy_saved_uj > 0

    def test_model_level_ratio_matches_pe_level_ratio(self):
        """Scaling to a full model must not change the per-workload ratio."""
        from repro.hardware import compute_table4

        comparison = compare_model_attention(BertConfig.bert_base(max_seq_len=512), 384)
        pe_ratio = compute_table4().energy_ratio("Full PE")
        assert comparison.energy_ratio == pytest.approx(pe_ratio, rel=0.05)

    def test_model_sweep_covers_grid(self):
        comparisons = model_sweep([BertConfig.bert_base(max_seq_len=2048)],
                                  seq_lens=(128, 512))
        assert len(comparisons) == 2
        assert all(c.energy_ratio < 1.0 for c in comparisons)

    def test_invalid_seq_len(self):
        with pytest.raises(ValueError):
            model_attention_cost(BertConfig.bert_base(), 0)

    def test_as_dict(self):
        cost = model_attention_cost(BertConfig.bert_base(max_seq_len=512), 384)
        d = cost.as_dict()
        assert d["model"] == "bert-base"
        assert d["seq_len"] == 384
